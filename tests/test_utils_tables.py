"""Table formatting (repro.utils.tables)."""

import pytest

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")
        assert "30" in lines[3]
        # all rows have equal rendered width
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.23" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["only", "header"], [])
        assert "only" in text


class TestFormatSeries:
    def test_merges_x_axes(self):
        text = format_series(
            "t", {"s1": {1: 10.0, 3: 30.0}, "s2": {2: 20.0}}, xlabel="n"
        )
        lines = text.splitlines()
        # title + header + rule + 3 x values
        assert len(lines) == 6
        assert "-" in lines[4]  # missing point rendered as dash

    def test_title_included(self):
        assert format_series("My Title", {"s": {1: 1.0}}).startswith("My Title")
