"""Sharded broker fabric: routing, metrics merge, failure semantics."""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    BatchExecutor,
    HashRing,
    ServeMetrics,
    ServePolicy,
    ShardDown,
    ShardedBroker,
    ShardRouter,
    SolveBroker,
    TraceRecorder,
    make_broker,
    replay_trace,
    stable_hash,
    synthetic_trace,
)
from repro.serve.policy import PLACEMENT_ENV, SHARDS_ENV
from repro.utils.spd import random_spd_batch


def _spd(n: int, seed: int = 0) -> np.ndarray:
    return random_spd_batch(1, n, seed=seed)[0]


def _policy(**overrides) -> ServePolicy:
    defaults = dict(target_batch=16, max_delay_s=0.002, request_timeout_s=None)
    defaults.update(overrides)
    return ServePolicy(**defaults)


def _size_owned_by(router: ShardRouter, shard_id: int, start: int = 4) -> int:
    """A matrix dimension the given shard owns under size placement."""
    for n in range(start, start + 200):
        if router.place(n, 0) == shard_id:
            return n
    raise AssertionError(f"no size maps to shard {shard_id}")


# ----------------------------------------------------------------------
# The hash ring
# ----------------------------------------------------------------------


class TestStableHash:
    def test_known_value_pins_the_hash_function(self):
        # blake2b-based and unsalted: the same key must map to the same
        # ring position in every process, or placement (and the recorded
        # shard fields in traces) would change between runs.
        assert stable_hash("n=8") == 15982987139450184736

    def test_distinct_keys_disperse(self):
        values = {stable_hash(f"key-{i}") for i in range(256)}
        assert len(values) == 256


class TestHashRing:
    def test_empty_ring_raises_shard_down(self):
        with pytest.raises(ShardDown):
            HashRing().lookup("n=8")

    def test_lookup_is_deterministic_and_in_members(self):
        ring = HashRing(shard_ids=(0, 1, 2))
        for i in range(64):
            owner = ring.lookup(f"key-{i}")
            assert owner == ring.lookup(f"key-{i}")
            assert owner in (0, 1, 2)

    def test_add_remove_idempotent(self):
        ring = HashRing(shard_ids=(0,))
        ring.add(0)
        ring.remove(1)  # absent: no-op
        assert ring.shards == (0,)

    @settings(max_examples=25, deadline=None)
    @given(
        shard_count=st.integers(min_value=2, max_value=6),
        new_id=st.integers(min_value=100, max_value=200),
    )
    def test_adding_a_shard_moves_keys_only_to_it_and_few_of_them(
        self, shard_count, new_id
    ):
        keys = [f"key-{i}" for i in range(300)]
        before = HashRing(shard_ids=range(shard_count))
        owners = {k: before.lookup(k) for k in keys}
        before.add(new_id)
        moved = [k for k in keys if before.lookup(k) != owners[k]]
        # Consistency: a key either stays put or lands on the new shard.
        assert all(before.lookup(k) == new_id for k in moved)
        # Bounded movement: no more than ~2/N of the keyspace relocates.
        assert len(moved) <= 2 * len(keys) / (shard_count + 1)

    @settings(max_examples=25, deadline=None)
    @given(shard_count=st.integers(min_value=2, max_value=6))
    def test_removing_a_shard_moves_only_its_own_keys(self, shard_count):
        keys = [f"key-{i}" for i in range(300)]
        ring = HashRing(shard_ids=range(shard_count))
        owners = {k: ring.lookup(k) for k in keys}
        victim = shard_count - 1
        ring.remove(victim)
        for k in keys:
            if owners[k] != victim:
                assert ring.lookup(k) == owners[k]
            else:
                assert ring.lookup(k) != victim
        orphaned = [k for k in keys if owners[k] == victim]
        assert len(orphaned) <= 2 * len(keys) / shard_count


class TestShardRouter:
    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            ShardRouter(range(2), placement="roundrobin")

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardRouter(())

    def test_size_placement_ignores_the_sequence_number(self):
        router = ShardRouter(range(4), placement="size")
        owners = {router.place(8, seq) for seq in range(100)}
        assert len(owners) == 1

    def test_hash_placement_spreads_one_size(self):
        router = ShardRouter(range(4), placement="hash")
        owners = {router.place(8, seq) for seq in range(100)}
        assert len(owners) > 1

    def test_mark_down_removes_from_placement(self):
        router = ShardRouter(range(3), placement="size")
        victim = router.place(8, 0)
        router.mark_down(victim)
        assert victim not in router.alive
        assert router.place(8, 0) != victim

    def test_all_down_raises_shard_down(self):
        router = ShardRouter(range(2))
        router.mark_down(0)
        router.mark_down(1)
        with pytest.raises(ShardDown):
            router.place(8, 0)


# ----------------------------------------------------------------------
# ServeMetrics merge
# ----------------------------------------------------------------------


class TestServeMetricsMerge:
    def _loaded(self, completions=3, shard=None):
        m = ServeMetrics()
        for _ in range(completions):
            m.record_submit(1)
            m.record_completion()
        m.record_flush(size=completions, threshold=8, reason="full", gflops=2.0,
                       wait_times_s=[0.001] * completions, service_s=0.0005)
        m.record_submit(1)
        m.record_shed(shard=shard)
        return m

    def test_counters_add_exactly(self):
        a, b = self._loaded(3), self._loaded(5)
        merged = ServeMetrics.merged([a, b])
        for name in merged.counters:
            assert merged.counters[name] == a.counters[name] + b.counters[name]
        assert merged.unaccounted == 0

    def test_histograms_merge_exactly(self):
        a, b = self._loaded(3), self._loaded(5)
        merged = ServeMetrics.merged([a, b])
        for name, h in merged.histograms.items():
            assert h.count == a.histograms[name].count + b.histograms[name].count
            assert h.total == pytest.approx(
                a.histograms[name].total + b.histograms[name].total
            )

    def test_shed_by_shard_adds(self):
        a, b = self._loaded(shard=0), self._loaded(shard=0)
        b.record_shed(shard=1)
        merged = ServeMetrics.merged([a, b])
        assert merged.shed_by_shard == {0: 2, 1: 1}
        assert "shed_by_shard" in merged.as_dict()

    def test_merge_rejects_non_metrics(self):
        with pytest.raises(TypeError):
            ServeMetrics().merge(object())


# ----------------------------------------------------------------------
# The fabric
# ----------------------------------------------------------------------


class TestShardedBroker:
    def test_results_match_a_plain_broker(self):
        mats = [_spd(n, seed=i) for i, n in enumerate([6, 8, 12] * 6)]

        async def through(broker_factory):
            async with broker_factory() as broker:
                return await asyncio.gather(*[broker.factor(a) for a in mats])

        sharded = asyncio.run(
            through(lambda: ShardedBroker(_policy(), shards=3, placement="size"))
        )
        plain = asyncio.run(through(lambda: SolveBroker(_policy())))
        for ls, lp in zip(sharded, plain):
            assert np.array_equal(ls, lp)

    def test_solve_round_trips(self):
        a = _spd(8, seed=3)
        b = np.ones(8)

        async def scenario():
            async with ShardedBroker(_policy(), shards=2) as broker:
                return await broker.solve(a, b)

        x = asyncio.run(scenario())
        assert np.allclose(a @ x, b, atol=1e-4)

    def test_size_placement_keeps_a_size_on_one_shard(self):
        async def scenario():
            async with ShardedBroker(
                _policy(target_batch=4), shards=3, placement="size"
            ) as broker:
                for i in range(12):
                    await broker.factor(_spd(8, seed=i))
                return broker.router.place(8, 0), broker.per_shard_metrics()

        owner, per_shard = asyncio.run(scenario())
        for shard_id, m in per_shard.items():
            expected = 12 if shard_id == owner else 0
            assert m.counters["submitted"] == expected

    def test_merged_metrics_equal_elementwise_merge_of_shards(self):
        async def scenario():
            async with ShardedBroker(
                _policy(target_batch=4), shards=3, placement="hash"
            ) as broker:
                await asyncio.gather(
                    *[broker.factor(_spd(8, seed=i)) for i in range(24)]
                )
                return broker.metrics, broker.per_shard_metrics()

        merged, per_shard = asyncio.run(scenario())
        parts = [per_shard[k] for k in sorted(per_shard)]
        # Counters: exact element-wise sums, recomputed independently.
        for name, value in merged.counters.items():
            assert value == sum(p.counters[name] for p in parts), name
        assert merged.counters["submitted"] == 24
        assert merged.counters["completed"] == 24
        assert merged.unaccounted == 0
        # Histograms: Histogram.merge moments match the per-shard totals.
        for name, h in merged.histograms.items():
            assert h.count == sum(p.histograms[name].count for p in parts)
            assert h.total == pytest.approx(
                sum(p.histograms[name].total for p in parts)
            )
        # And the whole structure equals ServeMetrics.merged of the parts.
        assert merged.as_dict() == ServeMetrics.merged(parts).as_dict()

    def test_input_validation_is_synchronous(self):
        async def scenario():
            async with ShardedBroker(_policy(), shards=2) as broker:
                with pytest.raises(ValueError, match="square"):
                    await broker.factor(np.ones((3, 4)))
                with pytest.raises(ValueError, match="right-hand side"):
                    await broker.submit("solve", _spd(4))
                with pytest.raises(ValueError, match="kind"):
                    await broker.submit("invert", _spd(4))

        asyncio.run(scenario())

    def test_graceful_drain_completes_queued_work(self):
        async def scenario():
            broker = ShardedBroker(
                _policy(target_batch=4096, max_delay_s=30.0), shards=2
            )
            await broker.start()
            futures = [
                asyncio.ensure_future(broker.factor(_spd(8, seed=i)))
                for i in range(6)
            ]
            await asyncio.sleep(0.05)  # land the handoffs in the buckets
            await broker.close(drain=True)
            return await asyncio.gather(*futures), broker.metrics

        results, metrics = asyncio.run(scenario())
        assert len(results) == 6 and all(r.shape == (8, 8) for r in results)
        assert metrics.counters["flushes_drain"] >= 1
        assert metrics.unaccounted == 0

    def test_submit_after_close_raises_service_closed(self):
        from repro.serve import ServiceClosed

        async def scenario():
            broker = ShardedBroker(_policy(), shards=2)
            await broker.start()
            await broker.close()
            with pytest.raises(ServiceClosed):
                await broker.factor(_spd(4))

        asyncio.run(scenario())


class TestShardFailure:
    def test_kill_fails_only_that_shards_requests_and_routes_around(self):
        async def scenario():
            policy = _policy(target_batch=4096, max_delay_s=30.0)
            async with ShardedBroker(policy, shards=2, placement="size") as broker:
                victim = broker.router.place(8, 0)
                survivor_n = _size_owned_by(broker.router, 1 - victim)
                doomed = [
                    asyncio.ensure_future(broker.factor(_spd(8, seed=i)))
                    for i in range(5)
                ]
                safe = asyncio.ensure_future(broker.factor(_spd(survivor_n)))
                await asyncio.sleep(0.05)
                broker.kill_shard(victim)
                outcomes = await asyncio.gather(*doomed, return_exceptions=True)
                # The other shard is untouched: drain-close completes it.
                await broker.close(drain=True)
                return victim, outcomes, await safe, broker

        victim, outcomes, safe_result, broker = asyncio.run(scenario())
        assert all(isinstance(o, ShardDown) for o in outcomes)
        assert safe_result.shape[0] == safe_result.shape[1]
        assert victim not in broker.router.alive
        m = broker.metrics
        assert m.counters["failed"] >= 5
        assert m.unaccounted == 0  # conservation survives the kill

    def test_requests_after_kill_reroute_to_survivors(self):
        async def scenario():
            async with ShardedBroker(
                _policy(target_batch=1), shards=2, placement="size"
            ) as broker:
                victim = broker.router.place(8, 0)
                broker.kill_shard(victim)
                # The dead shard owned n=8; the router must re-place it.
                result = await broker.factor(_spd(8))
                return victim, broker.router.place(8, 0), result

        victim, new_owner, result = asyncio.run(scenario())
        assert new_owner != victim
        assert result.shape == (8, 8)

    def test_kill_mid_replay_conserves_accounting(self):
        # The fault-injection drill the replay harness relies on: kill a
        # shard while traffic is in flight and the fabric must neither
        # hang nor lose a request from the books.
        async def scenario():
            policy = _policy(target_batch=8, max_delay_s=0.01)
            async with ShardedBroker(policy, shards=3, placement="hash") as broker:
                futures = [
                    asyncio.ensure_future(broker.factor(_spd(8, seed=i)))
                    for i in range(30)
                ]
                await asyncio.sleep(0.005)
                broker.kill_shard(1)
                outcomes = await asyncio.gather(*futures, return_exceptions=True)
                await broker.close(drain=True)
                return outcomes, broker.metrics

        outcomes, m = asyncio.run(scenario())
        completed = sum(1 for o in outcomes if isinstance(o, np.ndarray))
        downed = sum(1 for o in outcomes if isinstance(o, ShardDown))
        assert completed + downed == 30
        assert m.counters["completed"] >= completed
        assert m.unaccounted == 0

    def test_all_shards_dead_raises_shard_down(self):
        async def scenario():
            async with ShardedBroker(_policy(), shards=2) as broker:
                broker.kill_shard(0)
                broker.kill_shard(1)
                with pytest.raises(ShardDown):
                    await broker.factor(_spd(8))

        asyncio.run(scenario())

    def test_kill_unknown_shard_rejected(self):
        from repro.serve import ServeError

        async def scenario():
            async with ShardedBroker(_policy(), shards=2) as broker:
                with pytest.raises(ServeError, match="no shard"):
                    broker.kill_shard(7)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Trace recording through the fabric
# ----------------------------------------------------------------------


class TestFabricRecording:
    def test_recorded_events_carry_the_routed_shard(self):
        trace = synthetic_trace(requests=20, ns=(6, 8, 12), rate_hz=50000.0, seed=4)
        recorder = TraceRecorder(seed=4)
        summary = replay_trace(
            trace,
            policy=_policy(shards=3, placement="size"),
            recorder=recorder,
        )
        assert summary.shards == 3
        assert len(recorder) == 20
        shards = {e.n: e.shard for e in recorder.events}
        assert all(s is not None and 0 <= s < 3 for s in shards.values())
        # Size placement: every event of one dimension names one shard.
        for e in recorder.events:
            assert e.shard == shards[e.n]

    def test_single_broker_records_no_shard_field(self):
        trace = synthetic_trace(requests=6, ns=(8,), rate_hz=50000.0, seed=4)
        recorder = TraceRecorder(seed=4)
        replay_trace(trace, policy=_policy(shards=1), recorder=recorder)
        assert all(e.shard is None for e in recorder.events)


# ----------------------------------------------------------------------
# make_broker and the replay front door
# ----------------------------------------------------------------------


class TestMakeBroker:
    def test_single_shard_builds_a_plain_broker(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        assert isinstance(make_broker(_policy()), SolveBroker)
        assert isinstance(make_broker(_policy(shards=1)), SolveBroker)

    def test_multi_shard_builds_the_fabric(self):
        broker = make_broker(_policy(shards=4, placement="hash"))
        assert isinstance(broker, ShardedBroker)
        assert broker.shard_count == 4
        assert broker.placement == "hash"

    def test_injected_executor_or_metrics_pins_single_broker(self):
        policy = _policy(shards=4)
        assert isinstance(
            make_broker(policy, executor=BatchExecutor()), SolveBroker
        )
        assert isinstance(
            make_broker(policy, metrics=ServeMetrics()), SolveBroker
        )

    def test_environment_variables_shape_the_broker(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "2")
        monkeypatch.setenv(PLACEMENT_ENV, "hash")
        broker = make_broker(_policy())
        assert isinstance(broker, ShardedBroker)
        assert broker.shard_count == 2 and broker.placement == "hash"
        monkeypatch.setenv(SHARDS_ENV, "not-a-number")
        with pytest.raises(ValueError):
            make_broker(_policy())

    def test_replay_summary_reports_fabric_shape(self):
        trace = synthetic_trace(requests=12, ns=(6, 8), rate_hz=50000.0, seed=2)
        summary = replay_trace(trace, policy=_policy(shards=2, placement="size"))
        assert summary.completed == 12
        assert summary.shards == 2 and summary.placement == "size"
        assert sorted(summary.per_shard) == [0, 1]
        merged = ServeMetrics.merged(
            summary.per_shard[k] for k in sorted(summary.per_shard)
        )
        assert summary.metrics.as_dict() == merged.as_dict()

    def test_replay_summary_single_broker_shape(self):
        trace = synthetic_trace(requests=6, ns=(8,), rate_hz=50000.0, seed=2)
        summary = replay_trace(trace, policy=_policy(shards=1))
        assert summary.shards == 1
        assert summary.placement is None and summary.per_shard is None


class TestShardIsolation:
    def test_each_shard_owns_its_executor_and_backend(self):
        broker = ShardedBroker(_policy(), shards=3)
        executors = [s.broker.executor for s in broker.shards.values()]
        backends = [e.backend for e in executors]
        assert len({id(e) for e in executors}) == 3
        assert len({id(b) for b in backends}) == 3

    def test_warmup_fans_out_without_starting_traffic(self):
        async def scenario():
            async with ShardedBroker(_policy(), shards=2) as broker:
                broker.warmup([8, 16])
                return await broker.factor(_spd(8))

        assert asyncio.run(scenario()).shape == (8, 8)
