"""Event-driven simulator (repro.gpusim.eventsim)."""

import pytest

from repro.core.config import KernelConfig
from repro.gpusim.eventsim import EventSimResult, simulate_launch
from repro.gpusim.model import estimate_performance


class TestSimulate:
    def test_result_fields(self):
        r = simulate_launch(KernelConfig(n=8, nb=4), batch=1024)
        assert isinstance(r, EventSimResult)
        assert r.seconds > 0 and r.gflops > 0
        assert r.mem_bytes > 0
        assert r.cycles > 0

    def test_memory_bytes_scale_with_batch(self):
        # The simulator models one SM's ceil-rounded fair share, so the
        # scaling carries up to that quantisation (128 blocks over 56 SMs
        # simulate as 3 blocks/SM).
        small = simulate_launch(KernelConfig(n=8, nb=4), batch=1024)
        big = simulate_launch(KernelConfig(n=8, nb=4), batch=4096)
        assert big.mem_bytes == pytest.approx(4 * small.mem_bytes, rel=0.45)

    def test_full_unroll_moves_less_memory(self):
        part = simulate_launch(KernelConfig(n=16, nb=4, unroll="partial"), batch=2048)
        full = simulate_launch(KernelConfig(n=16, nb=4, unroll="full"), batch=2048)
        assert full.mem_bytes < part.mem_bytes

    def test_fast_math_not_slower(self):
        cfg = KernelConfig(n=16, nb=4, unroll="full")
        ieee = simulate_launch(cfg, batch=2048)
        fast = simulate_launch(cfg.with_(fast_math=True), batch=2048)
        assert fast.seconds <= ieee.seconds * 1.001

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            simulate_launch(KernelConfig(n=8), batch=0)


class TestAgreementWithAnalyticModel:
    @pytest.mark.parametrize(
        "cfg",
        [
            KernelConfig(n=16, nb=8, unroll="full", chunked=True, chunk_size=32),
            KernelConfig(n=32, nb=8, unroll="partial", chunked=True, chunk_size=32),
            KernelConfig(n=48, nb=8, unroll="partial", chunked=True, chunk_size=32),
        ],
        ids=lambda c: c.describe(),
    )
    def test_within_fifty_percent(self, cfg):
        """Two independent bookkeepings of the same launch must agree."""
        analytic = estimate_performance(cfg, batch=16384).gflops
        simulated = simulate_launch(cfg, batch=16384).gflops
        ratio = analytic / simulated
        assert 1 / 1.5 <= ratio <= 1.5
