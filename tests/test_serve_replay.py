"""Trace-replay harness: recorded traces, policy grids, regression gate."""

import json
import os
import pathlib
import signal

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.serve import (
    BatchExecutor,
    GateTolerances,
    RecordedEvent,
    RecordedTrace,
    ServePolicy,
    TraceRecorder,
    compare_reports,
    derive_seed,
    event_inputs,
    load_report,
    load_trace_file,
    normalize_events,
    policy_grid,
    replay_trace,
    run_replay_grid,
    save_report,
    save_trace,
    synthetic_trace,
    trace_sha256,
)
from repro.serve.backends import BackendError, ProcessPoolBackend
from repro.serve.replay import (
    REPORT_SCHEMA,
    SUPPORTED_SCHEMAS,
    render_comparison,
    render_report,
    run_record,
    run_replay_cell,
)
from repro.serve.trace import SEED_STRIDE, as_recorded

REPO = pathlib.Path(__file__).resolve().parents[1]
TRACES_DIR = REPO / "benchmarks" / "traces"
BASELINE = REPO / "benchmarks" / "baselines" / "serve_replay_baseline.json"


def _events(n_events=6, n=8, base_seed=5):
    out = []
    for i in range(n_events):
        solve = i % 3 == 2
        out.append(
            RecordedEvent(
                at=round(i * 1e-4, 6),
                op="solve" if solve else "factor",
                n=n,
                nrhs=1 if solve else 0,
                seed=derive_seed(base_seed, i),
            )
        )
    return out


def _fast_policy(**overrides):
    defaults = dict(target_batch=16, max_delay_s=0.002, request_timeout_s=None)
    defaults.update(overrides)
    return ServePolicy(**defaults)


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------


class TestRecordedEvent:
    def test_dict_round_trip(self):
        e = RecordedEvent(at=0.5, op="solve", n=16, nrhs=4, seed=9, nonspd=True)
        assert RecordedEvent.from_dict(e.to_dict()) == e

    def test_defaults_omitted_from_dict(self):
        d = RecordedEvent(at=0.0, op="factor", n=8, seed=3).to_dict()
        assert d == {"at": 0.0, "op": "factor", "n": 8, "seed": 3}
        assert "nrhs" not in d and "nonspd" not in d

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"at": -0.1, "op": "factor", "n": 8},
            {"at": 0.0, "op": "invert", "n": 8},
            {"at": 0.0, "op": "factor", "n": 0},
            {"at": 0.0, "op": "solve", "n": 8, "nrhs": 0},
            {"at": 0.0, "op": "factor", "n": 8, "nrhs": 2},
        ],
    )
    def test_invalid_events_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RecordedEvent(**kwargs)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown event field"):
            RecordedEvent.from_dict(
                {"at": 0.0, "op": "factor", "n": 8, "seed": 0, "flavor": "?"}
            )

    def test_shard_field_round_trips(self):
        e = RecordedEvent(at=0.0, op="factor", n=8, seed=3, shard=2)
        d = e.to_dict()
        assert d["shard"] == 2
        assert RecordedEvent.from_dict(d) == e

    def test_shard_default_absent_from_dict(self):
        # Unsharded recordings stay byte-identical to the v1 trace format.
        d = RecordedEvent(at=0.0, op="factor", n=8, seed=3).to_dict()
        assert "shard" not in d

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError):
            RecordedEvent(at=0.0, op="factor", n=8, seed=3, shard=-1)

    def test_derive_seed_matches_synthetic_universe(self):
        trace = synthetic_trace(requests=3, seed=5)
        assert [e.seed for e in trace] == [derive_seed(5, i) for i in range(3)]
        assert derive_seed(5, 0) == 5 * SEED_STRIDE

    def test_as_recorded_normalizes_synthetic_events(self):
        synth = synthetic_trace(requests=4, solve_fraction=1.0, seed=2)
        recorded = [as_recorded(e) for e in synth]
        assert all(e.op == "solve" and e.nrhs == 1 for e in recorded)
        assert [e.seed for e in recorded] == [e.seed for e in synth]

    def test_normalize_events_accepts_recorded_trace(self):
        events = _events()
        trace = RecordedTrace(events=events, meta={"name": "x"})
        assert normalize_events(trace) == events


class TestEventInputs:
    def test_payload_is_deterministic(self):
        e = RecordedEvent(at=0.0, op="solve", n=8, nrhs=1, seed=77)
        a1, b1 = event_inputs(e)
        a2, b2 = event_inputs(e)
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)

    def test_factor_event_has_no_rhs_and_is_spd(self):
        a, b = event_inputs(RecordedEvent(at=0.0, op="factor", n=8, seed=1))
        assert b is None
        np.linalg.cholesky(a)  # SPD by construction

    def test_rhs_shapes_follow_nrhs(self):
        single = RecordedEvent(at=0.0, op="solve", n=8, nrhs=1, seed=1)
        multi = RecordedEvent(at=0.0, op="solve", n=8, nrhs=4, seed=1)
        assert event_inputs(single)[1].shape == (8,)
        assert event_inputs(multi)[1].shape == (8, 4)

    def test_nonspd_payload_fails_cholesky(self):
        a, _ = event_inputs(
            RecordedEvent(at=0.0, op="factor", n=8, seed=1, nonspd=True)
        )
        with pytest.raises(np.linalg.LinAlgError):
            np.linalg.cholesky(a)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


class TestTraceFiles:
    def test_save_load_round_trip(self, tmp_path):
        events = _events()
        path = tmp_path / "t.jsonl"
        assert save_trace(path, events, meta={"name": "t"}) == len(events)
        loaded = load_trace_file(path)
        assert loaded.events == events
        assert loaded.meta == {"name": "t"}
        assert loaded.version == 1
        assert len(loaded) == len(events)

    def test_save_load_save_is_byte_fixed_point(self, tmp_path):
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_trace(p1, _events(), meta={"b": 2, "a": 1})
        save_trace(p2, load_trace_file(p1).events, meta=load_trace_file(p1).meta)
        assert p1.read_bytes() == p2.read_bytes()
        assert trace_sha256(p1) == trace_sha256(p2)

    def test_duration_and_mix(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(path, _events(n_events=6))
        t = load_trace_file(path)
        assert t.duration_s == pytest.approx(5e-4)
        assert t.mix() == {("factor", 8, 0): 4, ("solve", 8, 1): 2}

    def test_unsorted_events_rejected_on_save(self, tmp_path):
        events = [
            RecordedEvent(at=0.1, op="factor", n=8),
            RecordedEvent(at=0.0, op="factor", n=8),
        ]
        with pytest.raises(ValueError, match="non-decreasing"):
            save_trace(tmp_path / "t.jsonl", events)

    @pytest.mark.parametrize(
        "content, match",
        [
            ("", "empty trace"),
            ("not json\n", "not JSON"),
            ('{"format":"other","version":1}\n', "not a repro-trace"),
            ('{"format":"repro-trace","version":99}\n', "unsupported trace version"),
            ('{"format":"repro-trace","version":0}\n', "unsupported trace version"),
            (
                '{"format":"repro-trace","version":1}\n{"at":0.0}\n',
                "bad event",
            ),
            (
                '{"format":"repro-trace","version":1}\n'
                '{"at":0.1,"op":"factor","n":8,"seed":0}\n'
                '{"at":0.0,"op":"factor","n":8,"seed":1}\n',
                "non-decreasing",
            ),
        ],
    )
    def test_malformed_files_rejected(self, tmp_path, content, match):
        path = tmp_path / "bad.jsonl"
        path.write_text(content)
        with pytest.raises(ValueError, match=match):
            load_trace_file(path)


class TestTraceRecorder:
    def test_live_offsets_are_relative_to_first_arrival(self):
        clock = iter([100.0, 100.0015, 100.01])
        rec = TraceRecorder(seed=3, clock=lambda: next(clock))
        rec.record("factor", 8)
        rec.record("solve", 8, nrhs=1)
        rec.record("factor", 16)
        assert [e.at for e in rec.events] == [0.0, 0.0015, 0.01]
        assert [e.seed for e in rec.events] == [derive_seed(3, i) for i in range(3)]

    def test_decreasing_explicit_offsets_rejected(self):
        rec = TraceRecorder()
        rec.record("factor", 8, at=0.5)
        with pytest.raises(ValueError, match="non-decreasing"):
            rec.record("factor", 8, at=0.4)

    def test_re_recording_a_loaded_trace_is_a_fixed_point(self, tmp_path):
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        rec = TraceRecorder(seed=1, meta={"name": "orig"})
        rec.record("factor", 8, nonspd=True)
        rec.record("solve", 16, nrhs=4)
        rec.save(p1)
        loaded = load_trace_file(p1)
        rec2 = TraceRecorder(meta=loaded.meta)
        for event in loaded.events:
            rec2.record_event(event)
        rec2.save(p2)
        assert p1.read_bytes() == p2.read_bytes()


# ----------------------------------------------------------------------
# Recording through the broker, replaying recordings
# ----------------------------------------------------------------------


class TestBrokerRecording:
    def test_replay_records_the_exact_request_mix(self):
        trace = synthetic_trace(
            requests=24, ns=(8, 16), solve_fraction=0.5, rate_hz=50000.0, seed=4
        )
        rec = TraceRecorder(seed=4)
        replay_trace(trace, policy=_fast_policy(), recorder=rec)
        recorded = RecordedTrace(events=rec.events)
        expected = RecordedTrace(events=normalize_events(trace))
        assert len(rec) == len(trace)
        assert recorded.mix() == expected.mix()

    def test_shed_arrivals_are_still_recorded(self):
        events = _events(n_events=8)
        rec = TraceRecorder()
        summary = replay_trace(
            events, policy=_fast_policy(max_queue_depth=2), recorder=rec
        )
        assert summary.shed > 0
        assert len(rec) == len(events)  # a trace records offered load

    def test_recorded_trace_replays_like_any_other(self):
        events = _events(n_events=10)
        summary = replay_trace(events, policy=_fast_policy())
        assert summary.requests == 10
        assert summary.completed == 10
        assert summary.metrics.unaccounted == 0
        assert len(summary.outcomes) == 10

    def test_replay_twice_is_bitwise_deterministic(self):
        events = _events(n_events=9)
        s1 = replay_trace(events, policy=_fast_policy())
        s2 = replay_trace(events, policy=_fast_policy())
        assert s1.completed == s2.completed == 9
        for r1, r2 in zip(s1.outcomes, s2.outcomes):
            assert np.array_equal(r1, r2)

    def test_nonspd_failures_replay_deterministically(self):
        events = _events(n_events=6)
        events[2] = RecordedEvent(
            at=events[2].at, op="factor", n=8, seed=events[2].seed, nonspd=True
        )
        s1 = replay_trace(events, policy=_fast_policy())
        s2 = replay_trace(events, policy=_fast_policy())
        assert s1.failed == s2.failed == 1
        assert type(s1.outcomes[2]) is type(s2.outcomes[2])
        assert not isinstance(s1.outcomes[2], np.ndarray)


# ----------------------------------------------------------------------
# The committed canonical traces
# ----------------------------------------------------------------------


class TestCanonicalTraces:
    @pytest.mark.parametrize(
        "name",
        ["uniform_small", "bursty_mixed", "als_solves", "als_graph",
         "multi_tenant"],
    )
    def test_committed_trace_loads(self, name):
        trace = load_trace_file(TRACES_DIR / f"{name}.jsonl")
        assert len(trace) > 100
        assert trace.meta["name"] == name
        if name == "multi_tenant":
            assert trace.version == 3
        elif name == "als_graph":
            assert trace.version == 2
        else:
            # The pre-graph canonical traces must stay v1 byte-for-byte.
            assert trace.version == 1

    def test_regeneration_is_byte_identical(self, tmp_path):
        import sys

        sys.path.insert(0, str(TRACES_DIR))
        try:
            import make_traces
        finally:
            sys.path.pop(0)
        make_traces.write_traces(tmp_path)
        for name in make_traces.TRACES:
            committed = (TRACES_DIR / f"{name}.jsonl").read_bytes()
            regenerated = (tmp_path / f"{name}.jsonl").read_bytes()
            assert regenerated == committed, f"{name} drifted from make_traces.py"

    def test_als_trace_comes_from_solve_trace(self):
        from repro.apps.als import ALSRecommender, generate_ratings

        committed = load_trace_file(TRACES_DIR / "als_solves.jsonl")
        data = generate_ratings(
            n_users=48, n_items=24, rank=8, density=0.2, noise=0.1, seed=31
        )
        model = ALSRecommender(rank=8, regularization=0.05, iterations=2, seed=31)
        events = model.solve_trace(
            data, burst_rate_hz=50000.0, assembly_gap_s=0.005, seed=31
        )
        assert events == committed.events
        assert all(e.op == "solve" and e.n == 8 for e in events)

    def test_uniform_small_replays_clean(self):
        trace = load_trace_file(TRACES_DIR / "uniform_small.jsonl")
        summary = replay_trace(trace, policy=_fast_policy(target_batch=64))
        assert summary.completed == len(trace)
        assert summary.failed == 0
        assert summary.metrics.unaccounted == 0


# ----------------------------------------------------------------------
# Grid runner and report
# ----------------------------------------------------------------------


class TestReplayGrid:
    def test_grid_labels_are_stable(self):
        cells = policy_grid(
            backends=("inline", "eventsim"),
            target_batches=(32, 64),
            max_delays_ms=(2.0,),
        )
        assert [c.label for c in cells] == [
            "inline/tb32/d2ms",
            "inline/tb64/d2ms",
            "eventsim/tb32/d2ms",
            "eventsim/tb64/d2ms",
        ]
        assert cells[0].policy.target_batch == 32
        assert cells[2].policy.backend == "eventsim"

    def test_report_schema_and_contents(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(path, _events(n_events=8), meta={"name": "tiny"})
        report = run_replay_grid(
            load_trace_file(path), policy_grid(), trace_path=path
        )
        assert report["schema"] == REPORT_SCHEMA
        assert report["trace"]["name"] == "tiny"
        assert report["trace"]["events"] == 8
        assert report["trace"]["sha256"] == trace_sha256(path)
        assert "numpy" in report["environment"]
        (run,) = report["runs"]
        assert run["ok"] and run["conservation_ok"]
        assert run["completed"] == 8
        assert run["stages"], "obs stage latencies missing from report"

    def test_report_round_trips_through_disk(self, tmp_path):
        report = run_replay_grid(_events(), policy_grid(), trace_name="mem")
        out = tmp_path / "report.json"
        save_report(out, report)
        assert load_report(out) == json.loads(out.read_text())

    def test_load_report_rejects_wrong_schema(self, tmp_path):
        out = tmp_path / "bad.json"
        out.write_text('{"schema": "something/else"}')
        with pytest.raises(ValueError, match="expected one of"):
            load_report(out)

    def test_load_report_accepts_v1_schema(self, tmp_path):
        # Pre-shard (v1) baselines must stay readable for comparisons.
        assert "repro.bench_serve_replay/v1" in SUPPORTED_SCHEMAS
        report = run_replay_grid(_events(), policy_grid(), trace_name="mem")
        report["schema"] = "repro.bench_serve_replay/v1"
        out = tmp_path / "v1.json"
        save_report(out, report)
        assert load_report(out)["schema"] == "repro.bench_serve_replay/v1"

    def test_sharded_grid_labels(self):
        cells = policy_grid(
            backends=("inline",),
            target_batches=(64,),
            max_delays_ms=(2.0,),
            shards=(1, 2),
            placements=("size", "hash"),
        )
        # sh1 labels stay byte-stable; sharded cells get a suffix per placement.
        assert [c.label for c in cells] == [
            "inline/tb64/d2ms",
            "inline/tb64/d2ms/sh2-size",
            "inline/tb64/d2ms/sh2-hash",
        ]
        assert cells[0].policy.shard_count() == 1
        assert cells[1].policy.shards == 2
        assert cells[2].policy.placement == "hash"

    def test_sharded_cell_records_fabric_fields(self):
        cells = policy_grid(
            backends=("inline",),
            target_batches=(16,),
            max_delays_ms=(2.0,),
            shards=(2,),
            placements=("size",),
            base=_fast_policy(),
        )
        report = run_replay_grid(_events(n_events=10), cells)
        (run,) = report["runs"]
        assert run["ok"] and run["conservation_ok"]
        assert run["shards"] == 2
        assert run["placement"] == "size"
        assert set(run["per_shard"]) == {"0", "1"}
        assert run["policy"]["shards"] == 2
        assert run["policy"]["placement"] == "size"

    def test_unsharded_cell_records_no_per_shard(self):
        cells = policy_grid(base=_fast_policy(shards=1))
        report = run_replay_grid(_events(), cells)
        (run,) = report["runs"]
        assert run["shards"] == 1
        assert run["placement"] is None
        assert run["per_shard"] is None

    def test_sick_cell_reports_failure_instead_of_raising(self):
        cells = policy_grid(backends=("no-such-backend",))
        report = run_replay_grid(_events(), cells)
        (run,) = report["runs"]
        assert run["ok"] is False
        assert "error" in run

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty trace"):
            run_replay_grid([], policy_grid())

    def test_render_report_lists_every_run(self):
        report = run_replay_grid(_events(), policy_grid())
        text = render_report(report)
        assert "inline/tb64/d2ms" in text
        assert "req/s" in text


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------


def _report_with(runs):
    return {"schema": REPORT_SCHEMA, "trace": {}, "environment": {}, "runs": runs}


def _ok_run(label="inline/tb64/d2ms", **overrides):
    run = {
        "label": label,
        "ok": True,
        "conservation_ok": True,
        "throughput_rps": 1000.0,
        "coalesce_p95_ms": 2.0,
        "shed_rate": 0.0,
        "failure_rate": 0.0,
        "metrics": {"unaccounted": 0},
    }
    run.update(overrides)
    return run


class TestRegressionGate:
    def test_identical_reports_pass(self):
        r = _report_with([_ok_run()])
        assert compare_reports(r, r) == []

    def test_doctored_20pct_throughput_baseline_trips(self):
        baseline = _report_with([_ok_run(throughput_rps=1200.0)])
        current = _report_with([_ok_run(throughput_rps=1000.0)])
        findings = compare_reports(baseline, current)
        assert len(findings) == 1
        assert "throughput regressed" in findings[0]

    def test_loss_within_tolerance_passes(self):
        baseline = _report_with([_ok_run(throughput_rps=1100.0)])
        current = _report_with([_ok_run(throughput_rps=1000.0)])
        assert compare_reports(baseline, current) == []

    def test_missing_run_flagged(self):
        baseline = _report_with([_ok_run(), _ok_run(label="eventsim/tb64/d2ms")])
        current = _report_with([_ok_run()])
        findings = compare_reports(baseline, current)
        assert any("missing from current report" in f for f in findings)

    def test_failed_run_flagged(self):
        current = _report_with(
            [{"label": "inline/tb64/d2ms", "ok": False, "error": "boom"}]
        )
        findings = compare_reports(_report_with([_ok_run()]), current)
        assert any("failed run" in f and "boom" in f for f in findings)

    def test_conservation_violation_flagged(self):
        current = _report_with(
            [_ok_run(conservation_ok=False, metrics={"unaccounted": 3})]
        )
        findings = compare_reports(_report_with([_ok_run()]), current)
        assert any("conservation violated" in f for f in findings)

    def test_p95_regression_flagged_beyond_floor_and_fraction(self):
        baseline = _report_with([_ok_run(coalesce_p95_ms=2.0)])
        current = _report_with([_ok_run(coalesce_p95_ms=3.5)])
        findings = compare_reports(baseline, current)
        assert any("p95 coalesce latency regressed" in f for f in findings)

    def test_p95_noise_below_absolute_floor_ignored(self):
        baseline = _report_with([_ok_run(coalesce_p95_ms=0.01)])
        current = _report_with([_ok_run(coalesce_p95_ms=0.2)])
        assert compare_reports(baseline, current) == []

    def test_shed_and_failure_rate_regressions_flagged(self):
        baseline = _report_with([_ok_run()])
        current = _report_with([_ok_run(shed_rate=0.1, failure_rate=0.1)])
        findings = compare_reports(baseline, current)
        assert any("shed rate regressed" in f for f in findings)
        assert any("failure rate regressed" in f for f in findings)

    def test_trace_sha_mismatch_flagged(self):
        baseline = _report_with([_ok_run()])
        baseline["trace"] = {"sha256": "a" * 64}
        current = _report_with([_ok_run()])
        current["trace"] = {"sha256": "b" * 64}
        findings = compare_reports(baseline, current)
        assert any("trace mismatch" in f for f in findings)

    @pytest.mark.parametrize(
        "kwargs",
        [{"throughput_frac": -0.1}, {"throughput_frac": 1.0}, {"shed_abs": -1.0}],
    )
    def test_invalid_tolerances_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GateTolerances(**kwargs)

    def test_render_comparison_reads_both_ways(self):
        report = _report_with([_ok_run()])
        assert "ok: 1 run(s)" in render_comparison([], report, report)
        text = render_comparison(["x: throughput regressed"], report, report)
        assert text.startswith("REGRESSION: 1 finding(s)")


# ----------------------------------------------------------------------
# Committed baseline + CLI acceptance
# ----------------------------------------------------------------------


class TestCommittedBaseline:
    def test_baseline_matches_schema_and_trace_fingerprint(self):
        report = load_report(BASELINE)
        assert report["trace"]["sha256"] == trace_sha256(
            TRACES_DIR / "bursty_mixed.jsonl"
        )
        labels = [r["label"] for r in report["runs"]]
        assert labels == [
            "inline/tb64/d2ms",
            "inline/tb64/d2ms/sh2-size",
            "eventsim/tb64/d2ms",
            "eventsim/tb64/d2ms/sh2-size",
        ]
        assert all(r["ok"] and r["conservation_ok"] for r in report["runs"])
        sharded = [r for r in report["runs"] if r["shards"] == 2]
        assert len(sharded) == 2
        assert all(r["placement"] == "size" for r in sharded)

    def test_graph_baseline_matches_schema_and_trace_fingerprint(self):
        baseline = BASELINE.parent / "serve_replay_graph_baseline.json"
        report = load_report(baseline)
        assert report["trace"]["sha256"] == trace_sha256(
            TRACES_DIR / "als_graph.jsonl"
        )
        labels = [r["label"] for r in report["runs"]]
        assert labels == ["inline/tb64/d2ms", "inline/tb64/d2ms/graph"]
        assert all(r["ok"] and r["conservation_ok"] for r in report["runs"])
        graph_run = report["runs"][-1]
        assert graph_run["graph"]["conservation_ok"]
        assert graph_run["graph"]["nodes"] == 216
        assert graph_run["offered"] == 216

    def test_replay_check_passes_on_committed_graph_baseline(self, capsys):
        baseline = BASELINE.parent / "serve_replay_graph_baseline.json"
        rc = cli_main(
            ["replay-check", "--baseline", str(baseline), "--report", str(baseline)]
        )
        assert rc == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_replay_check_passes_on_committed_baseline(self, capsys):
        rc = cli_main(
            ["replay-check", "--baseline", str(BASELINE), "--report", str(BASELINE)]
        )
        assert rc == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_replay_check_fails_on_doctored_baseline(self, tmp_path, capsys):
        doctored = json.loads(BASELINE.read_text())
        for run in doctored["runs"]:
            run["throughput_rps"] *= 1.2  # 20% rosier than reality
        path = tmp_path / "doctored.json"
        path.write_text(json.dumps(doctored))
        rc = cli_main(
            ["replay-check", "--baseline", str(path), "--report", str(BASELINE)]
        )
        assert rc == 1
        assert "throughput regressed" in capsys.readouterr().out

    def test_replay_check_requires_exactly_one_input(self, capsys, tmp_path):
        assert cli_main(["replay-check", "--baseline", str(BASELINE)]) == 2
        trace = tmp_path / "t.jsonl"
        save_trace(trace, _events())
        rc = cli_main(
            [
                "replay-check",
                "--baseline", str(BASELINE),
                "--trace", str(trace),
                "--report", str(BASELINE),
            ]
        )
        assert rc == 2

    def test_replay_check_runs_a_fresh_grid_from_a_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        save_trace(trace, _events(n_events=8), meta={"name": "tiny"})
        out = tmp_path / "report.json"
        baseline = run_replay_grid(
            load_trace_file(trace), policy_grid(), trace_path=trace
        )
        baseline_path = tmp_path / "baseline.json"
        save_report(baseline_path, baseline)
        rc = cli_main(
            [
                "replay-check",
                "--baseline", str(baseline_path),
                "--trace", str(trace),
                "--out", str(out),
                "--throughput-tolerance", "0.9",
                "--p95-tolerance", "50",
            ]
        )
        assert rc == 0
        fresh = load_report(out)
        assert fresh["trace"]["sha256"] == baseline["trace"]["sha256"]

    def test_serve_demo_recording_reproduces_the_request_mix(
        self, tmp_path, capsys
    ):
        path = tmp_path / "demo.jsonl"
        rc = cli_main(
            [
                "serve-demo",
                "--requests", "30",
                "--rate", "50000",
                "--record-trace", str(path),
            ]
        )
        assert rc == 0
        recorded = load_trace_file(path)
        assert recorded.meta["source"] == "serve-demo"
        reference = RecordedTrace(
            events=normalize_events(
                synthetic_trace(
                    requests=30,
                    ns=(8, 16, 32),
                    rate_hz=50000.0,
                    solve_fraction=0.4,
                    nonspd_fraction=0.01,
                    seed=0,
                )
            )
        )
        # The recording reproduces the demo's request mix exactly:
        # same counts per (op, n, nrhs).
        assert len(recorded) == 30
        assert recorded.mix() == reference.mix()
        summary = replay_trace(recorded, policy=_fast_policy())
        assert summary.requests == 30
        assert summary.metrics.unaccounted == 0


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------


def _worker_pids(backend: ProcessPoolBackend) -> list[int]:
    return list(backend._pool._processes.keys())


class TestFaultInjection:
    def test_killed_worker_mid_replay_keeps_conservation(self):
        backend = ProcessPoolBackend(
            workers=1, retry_fresh_worker=False, flush_timeout_s=30.0
        )
        executor = BatchExecutor(backend=backend)
        try:
            executor.warmup([8])  # spawn + warm the worker
            for pid in _worker_pids(backend):
                os.kill(pid, signal.SIGKILL)
            summary = replay_trace(
                _events(n_events=8),
                policy=_fast_policy(backend=None),
                executor=executor,
                warmup=False,
            )
        finally:
            backend.close()
        # The flush that hit the dead worker failed its whole bucket;
        # later flushes run on a fresh pool.  Nothing hangs, nothing is
        # double-counted.
        assert summary.failed >= 1
        assert summary.completed + summary.failed + summary.shed == 8
        assert summary.metrics.unaccounted == 0
        assert any(isinstance(r, BackendError) for r in summary.outcomes)

    def test_gate_flags_the_faulted_run(self):
        clean = _report_with([_ok_run()])
        faulted = _report_with([_ok_run(failure_rate=0.5)])
        findings = compare_reports(clean, faulted)
        assert any("failure rate regressed" in f for f in findings)

    def test_failed_cell_never_hangs_the_grid(self):
        # A cell whose policy names a dead backend class still yields a
        # gateable entry (run_replay_cell catches, gate flags).
        cells = policy_grid(backends=("no-such-backend",))
        (run,) = [run_replay_cell(_events(), cells[0])]
        findings = compare_reports(
            _report_with([_ok_run(label=cells[0].label)]), _report_with([run])
        )
        assert any("failed run" in f for f in findings)

    def test_run_record_carries_conservation_verdict(self):
        summary = replay_trace(_events(n_events=6), policy=_fast_policy())
        record = run_record("inline/tb16/d2ms", summary, _fast_policy())
        assert record["conservation_ok"] is True
        assert record["completed"] == 6
        assert record["metrics"]["counters"]["submitted"] == 6
