"""Register residency pass (repro.gpusim.registers)."""

import pytest

from repro.core.config import KernelConfig
from repro.core.schedule import TileOp, build_schedule
from repro.gpusim.registers import (
    allocate_registers,
    compute_spill_elements,
    scalar_replacement_efficiency,
)


def ops_for(n: int, nb: int, looking: str = "top"):
    return build_schedule(KernelConfig(n=n, nb=nb, looking=looking))


class TestAllocator:
    def test_huge_budget_keeps_everything(self):
        """With room for the whole matrix, traffic collapses to compulsory:
        each lower-triangle element is loaded once and stored once."""
        n = 12
        alloc = allocate_registers(ops_for(n, 4), budget_elements=10_000)
        lower = n * (n + 1) // 2
        assert alloc.load_elements == lower
        assert alloc.store_elements == lower

    def test_tiny_budget_keeps_raw_traffic(self):
        """With no residency, every scheduled access reaches memory."""
        ops = ops_for(12, 4)
        raw_loads = sum(op.elems for op in ops if op.is_load)
        alloc = allocate_registers(ops, budget_elements=16)
        assert alloc.load_elements == raw_loads

    def test_monotone_in_budget(self):
        """More registers never increase memory traffic."""
        ops = ops_for(16, 4)
        totals = [
            allocate_registers(ops, b).load_elements + allocate_registers(ops, b).store_elements
            for b in (16, 64, 128, 256, 1000)
        ]
        assert totals == sorted(totals, reverse=True)

    def test_peak_live_bounded_by_budget(self):
        alloc = allocate_registers(ops_for(20, 4), budget_elements=100)
        assert alloc.peak_live <= 100

    def test_eliminated_accounting(self):
        ops = ops_for(16, 4)
        raw_loads = sum(op.elems for op in ops if op.is_load)
        raw_stores = sum(op.elems for op in ops if op.is_store)
        alloc = allocate_registers(ops, budget_elements=231)
        assert alloc.load_elements + alloc.eliminated_loads == raw_loads
        assert alloc.store_elements + alloc.eliminated_stores <= raw_stores + alloc.peak_live

    def test_dirty_eviction_writes_back(self):
        """A stored tile evicted under pressure must reach memory."""
        ops = [
            TileOp("load_full", (0, 0), shape=(2, 2), elems=4),
            TileOp("store_full", (0, 0), shape=(2, 2), elems=4),
            TileOp("load_full", (1, 0), shape=(2, 2), elems=4),  # evicts (0,0)
            TileOp("load_full", (2, 0), shape=(2, 2), elems=4),  # evicts (1,0)
        ]
        alloc = allocate_registers(ops, budget_elements=4)
        assert alloc.store_elements == 4  # written back exactly once

    def test_oversized_tile_streams(self):
        ops = [
            TileOp("load_full", (0, 0), shape=(4, 4), elems=16),
            TileOp("load_full", (0, 0), shape=(4, 4), elems=16),
        ]
        alloc = allocate_registers(ops, budget_elements=8)
        assert alloc.load_elements == 32  # no caching possible

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            allocate_registers([], 0)


class TestSpillModel:
    def test_no_spill_when_fits(self):
        assert compute_spill_elements(ops_for(16, 4), budget_elements=231) == 0

    def test_spill_grows_as_budget_shrinks(self):
        ops = ops_for(24, 8)
        spills = [compute_spill_elements(ops, b) for b in (300, 150, 60, 20)]
        assert spills[0] == 0
        assert spills[1] < spills[2] < spills[3]

    def test_gemm_working_set(self):
        ops = [TileOp("gemm", (1, 0), operands=((1, 1), (0, 1)), shape=(4, 4, 4))]
        # working set = 3 * 16 = 48; budget 40 -> 2 * 8 spill elements
        assert compute_spill_elements(ops, 40) == 16


class TestScalarWindow:
    def test_full_efficiency_below_window(self):
        assert scalar_replacement_efficiency(100, 6000) == 1.0
        assert scalar_replacement_efficiency(6000, 6000) == 1.0

    def test_decays_beyond_window(self):
        e1 = scalar_replacement_efficiency(12_000, 6000)
        e2 = scalar_replacement_efficiency(24_000, 6000)
        assert 0 < e2 < e1 < 1.0

    def test_square_root_decay(self):
        assert scalar_replacement_efficiency(24_000, 6000) == pytest.approx(0.5)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            scalar_replacement_efficiency(10, 0)
