"""Tracing & telemetry subsystem (repro.obs)."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    ChromeTraceSink,
    InMemorySink,
    JsonlSink,
    TaggedTracer,
    Tracer,
    check_request_spans,
    current_span,
    get_tracer,
    load_trace,
    parse_prometheus_text,
    render_prometheus,
    render_prometheus_sharded,
    set_tracer,
    shard_summary,
    span_to_dict,
    summarize_shards,
    summarize_trace,
    tracer_from_env,
)
from repro.serve import ServeMetrics, ServePolicy, replay_trace, synthetic_trace


@pytest.fixture
def global_tracer():
    """Install an in-memory tracer process-wide; restore afterwards."""
    sink = InMemorySink()
    tracer = Tracer([sink])
    previous = set_tracer(tracer)
    try:
        yield tracer, sink
    finally:
        set_tracer(previous)


class TestTracer:
    def test_disabled_by_default(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_tracer_span_is_shared_noop(self):
        span_a = NULL_TRACER.span("a", anything=1)
        span_b = NULL_TRACER.span("b")
        assert span_a is span_b  # one shared object, zero allocation
        with span_a as s:
            assert s.set(more=2) is s
        NULL_TRACER.record("x", 0.0, 1.0)
        NULL_TRACER.counter("c", {"v": 1})
        NULL_TRACER.instant("i")
        NULL_TRACER.close()

    def test_span_context_manager_emits(self, global_tracer):
        tracer, sink = global_tracer
        with tracer.span("outer", cat="test", track="t", k=1):
            pass
        (span,) = sink.spans
        assert span.name == "outer"
        assert span.cat == "test"
        assert span.track == "t"
        assert span.attrs == {"k": 1}
        assert span.t1 >= span.t0

    def test_contextvar_parenting(self, global_tracer):
        tracer, sink = global_tracer
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner"):
                pass
        assert current_span() is None
        inner, outer_span = sink.spans
        assert inner.name == "inner"
        assert inner.parent_id == outer_span.span_id

    def test_record_explicit_endpoints(self, global_tracer):
        tracer, sink = global_tracer
        tracer.record("stage", 1.0, 2.5, request=7, n=8)
        (span,) = sink.spans
        assert span.t0 == 1.0 and span.t1 == 2.5
        assert span.request == 7
        assert span.duration_s == pytest.approx(1.5)

    def test_exception_tags_span(self, global_tracer):
        tracer, sink = global_tracer
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (span,) = sink.spans
        assert span.attrs["error"] == "RuntimeError"

    def test_counter_fans_out(self, global_tracer):
        tracer, sink = global_tracer
        tracer.counter("queue", {"pending": 4.0}, t=1.25)
        assert sink.counters == [("queue", 1.25, {"pending": 4.0})]

    def test_set_tracer_returns_previous(self):
        first = Tracer([])
        previous = set_tracer(first)
        try:
            assert get_tracer() is first
            assert set_tracer(None) is first
            assert get_tracer() is NULL_TRACER
        finally:
            set_tracer(previous)

    def test_tracer_from_env(self, tmp_path):
        assert tracer_from_env({}) is None
        assert tracer_from_env({"REPRO_TRACE": "0"}) is None
        jsonl = tracer_from_env({"REPRO_TRACE": str(tmp_path / "t.jsonl")})
        assert isinstance(jsonl.sinks[0], JsonlSink)
        jsonl.close()
        chrome = tracer_from_env({"REPRO_TRACE": str(tmp_path / "t.json")})
        assert isinstance(chrome.sinks[0], ChromeTraceSink)
        chrome.close()


class TestSinks:
    def test_jsonl_lines_parse(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer([JsonlSink(str(path), flush_every=1)])
        tracer.record("stage", 0.0, 0.5, request=1, n=8)
        tracer.counter("queue", {"pending": 2.0})
        tracer.close()
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert lines[0]["type"] == "span" and lines[0]["name"] == "stage"
        assert lines[0]["dur_ms"] == pytest.approx(500.0)
        assert lines[1]["type"] == "counter"

    def test_chrome_async_pairs_balance(self, tmp_path):
        path = tmp_path / "trace.json"
        tracer = Tracer([ChromeTraceSink(str(path))])
        tracer.record("submit", 0.0, 0.1, cat="request", request=3)
        tracer.record("flush", 0.0, 0.2, track="bucket n=8", size=4)
        tracer.counter("queue", {"pending": 1.0})
        tracer.close()
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases.count("b") == phases.count("e") == 1
        assert phases.count("X") == 1
        assert phases.count("C") == 1
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and "name" in e["args"]
        }
        assert "bucket n=8" in names  # track metadata present

    def test_chrome_sink_bounds_events(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(str(path), max_events=4)
        tracer = Tracer([sink])
        for i in range(10):
            tracer.record("x", 0.0, 1.0, track="t")
        tracer.close()
        assert sink.dropped == 6
        doc = json.loads(path.read_text())
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == 4

    def test_span_to_dict_omits_empty_fields(self, global_tracer):
        tracer, sink = global_tracer
        tracer.record("bare", 0.0, 1.0)
        d = span_to_dict(sink.spans[0])
        assert "track" not in d and "request" not in d and "attrs" not in d


class TestPrometheus:
    def _metrics(self):
        m = ServeMetrics()
        m.record_submit(3)
        m.record_flush(size=4, threshold=8, reason="full", gflops=12.5,
                       wait_times_s=[0.001, 0.002], service_s=0.0005)
        m.record_completion()
        return m

    def test_render_round_trips_through_parser(self):
        text = render_prometheus(self._metrics())
        samples = parse_prometheus_text(text)
        assert samples["repro_serve_submitted_total"] == [({}, 1.0)]
        assert samples["repro_serve_flushes_full_total"] == [({}, 1.0)]
        quantiles = dict(
            (labels["quantile"], value)
            for labels, value in samples["repro_serve_batch_size"]
        )
        assert quantiles["0.5"] == 4.0
        assert samples["repro_serve_batch_size_count"] == [({}, 1.0)]
        assert samples["repro_serve_unaccounted"] == [({}, 0.0)]

    def test_stable_metric_names(self):
        text = render_prometheus(self._metrics())
        for name in (
            "repro_serve_submitted_total",
            "repro_serve_completed_total",
            "repro_serve_flushes_total",
            "repro_serve_coalesce_latency_ms_sum",
            "repro_serve_queue_depth_count",
            "repro_serve_flush_gflops_max",
        ):
            assert f"\n{name} " in text or text.startswith(f"{name} ")

    def test_custom_prefix_validated(self):
        render_prometheus(self._metrics(), prefix="shard_0:serve")
        with pytest.raises(ValueError):
            render_prometheus(self._metrics(), prefix="0bad prefix")

    @pytest.mark.parametrize(
        "bad",
        [
            "9metric 1",                      # name starts with a digit
            "metric{label=value} 1",          # unquoted label value
            "metric{=\"v\"} 1",               # empty label name
            "metric one",                     # non-numeric value
            "# TYPE metric wat",              # unknown type
            "# TYPE metric counter\n# TYPE metric counter\nmetric 1",  # dup TYPE
        ],
    )
    def test_parser_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_parser_accepts_labels_and_inf(self):
        samples = parse_prometheus_text(
            'm{a="x",b="y"} +Inf\nm{a="z"} 2 1700000000\n'
        )
        assert samples["m"][0] == ({"a": "x", "b": "y"}, float("inf"))
        assert samples["m"][1][0] == {"a": "z"}

    def test_fixed_labels_stamp_every_sample(self):
        text = render_prometheus(self._metrics(), labels={"shard": 2})
        samples = parse_prometheus_text(text)
        for name, entries in samples.items():
            for labels, _ in entries:
                assert labels["shard"] == "2", name

    def test_invalid_label_names_rejected(self):
        with pytest.raises(ValueError, match="label name"):
            render_prometheus(self._metrics(), labels={"bad name": 1})

    def test_shed_by_shard_renders_labeled_samples(self):
        m = self._metrics()
        m.record_submit(2)
        m.record_shed(shard=0)
        m.record_shed(shard=1)
        samples = parse_prometheus_text(render_prometheus(m))
        shed = samples["repro_serve_shed_total"]
        assert ({}, 2.0) in shed
        assert ({"shard": "0"}, 1.0) in shed and ({"shard": "1"}, 1.0) in shed


class TestShardedPrometheus:
    def _fabric(self):
        per_shard = {}
        for shard in (0, 1):
            m = ServeMetrics()
            for _ in range(shard + 1):
                m.record_submit(1)
                m.record_completion()
            m.record_flush(size=shard + 1, threshold=8, reason="full",
                           gflops=4.0, wait_times_s=[0.001], service_s=0.0002)
            per_shard[shard] = m
        return ServeMetrics.merged(per_shard.values()), per_shard

    def test_page_round_trips_through_parser(self):
        merged, per_shard = self._fabric()
        # parse_prometheus_text rejects duplicate TYPE comments, so a
        # successful parse proves each family renders exactly once even
        # though it carries merged plus per-shard samples.
        samples = parse_prometheus_text(
            render_prometheus_sharded(merged, per_shard)
        )
        completed = samples["repro_serve_completed_total"]
        assert ({}, 3.0) in completed
        assert ({"shard": "0"}, 1.0) in completed
        assert ({"shard": "1"}, 2.0) in completed

    def test_merged_sample_is_the_sum_of_shard_samples(self):
        merged, per_shard = self._fabric()
        samples = parse_prometheus_text(
            render_prometheus_sharded(merged, per_shard)
        )
        for name, entries in samples.items():
            if not name.endswith(("_total", "_count", "_sum")):
                continue
            by_labels = dict(
                (labels.get("shard", ""), value)
                for labels, value in entries
                if "quantile" not in labels
            )
            assert by_labels[""] == pytest.approx(
                by_labels["0"] + by_labels["1"]
            ), name

    def test_histogram_quantiles_carry_both_label_sets(self):
        merged, per_shard = self._fabric()
        samples = parse_prometheus_text(
            render_prometheus_sharded(merged, per_shard)
        )
        label_sets = [labels for labels, _ in samples["repro_serve_batch_size"]]
        assert {"quantile": "0.5"} in label_sets
        assert {"shard": "0", "quantile": "0.5"} in label_sets


class TestTaggedTracer:
    def test_spans_and_counters_carry_the_tag(self, global_tracer):
        tracer, sink = global_tracer
        tagged = TaggedTracer({"shard": 3})
        with tagged.span("flush", cat="serve"):
            pass
        tagged.counter("serve.queue_depth", {"depth": 2})
        (span,) = sink.by_name("flush")
        assert span.attrs["shard"] == 3
        assert any(
            name == "serve.queue_depth[shard=3]"
            for name, _, _ in sink.counters
        )

    def test_record_and_instant_delegate_with_tags(self, global_tracer):
        tracer, sink = global_tracer
        tagged = TaggedTracer({"shard": 1}, inner=tracer)
        tagged.record("backend", 0.0, 0.5, cat="serve")
        tagged.instant("shard_down", cat="serve")
        assert sink.by_name("backend")[0].attrs["shard"] == 1
        assert tagged.enabled and tagged.inner is tracer

    def test_close_leaves_the_shared_inner_tracer_alone(self, global_tracer):
        tracer, sink = global_tracer
        TaggedTracer({"shard": 0}, inner=tracer).close()
        with tracer.span("still-works"):
            pass
        assert sink.by_name("still-works")


class TestShardSummaries:
    def _spans(self):
        out = []
        for shard in (0, 1):
            for i in range(3):
                out.append(
                    {"name": "flush", "cat": "serve", "t0": 0.0,
                     "t1": 0.001 * (shard + 1), "attrs": {"shard": shard}}
                )
        out.append({"name": "flush", "cat": "serve", "t0": 0.0, "t1": 0.5})
        return out

    def test_groups_stage_stats_by_shard(self):
        per = shard_summary(self._spans())
        assert sorted(per) == [0, 1]
        assert per[0]["serve/flush"]["count"] == 3
        assert per[1]["serve/flush"]["mean_ms"] == pytest.approx(2.0)

    def test_untagged_spans_are_excluded(self):
        # The untagged span (a single-broker trace line) must not leak
        # into any shard's numbers.
        per = shard_summary(self._spans())
        assert per[0]["serve/flush"]["max_ms"] < 100.0

    def test_summarize_shards_renders_table_or_nothing(self):
        table = summarize_shards(self._spans())
        assert "per-shard stage attribution (2 shards)" in table
        assert "serve/flush" in table
        assert summarize_shards([{"name": "x", "cat": "", "t0": 0, "t1": 1}]) == ""


def _traced_replay(tmp_path, **policy_kwargs):
    """Replay a small synthetic trace with both sinks installed."""
    chrome = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    tracer = Tracer([ChromeTraceSink(str(chrome)), JsonlSink(str(jsonl))])
    previous = set_tracer(tracer)
    try:
        trace = synthetic_trace(requests=24, ns=(6, 8), rate_hz=50000.0, seed=3)
        policy = ServePolicy(
            target_batch=8, max_delay_s=0.003, **policy_kwargs
        )
        summary = replay_trace(trace, policy=policy)
    finally:
        set_tracer(previous)
        tracer.close()
    return chrome, jsonl, summary


class TestEndToEnd:
    def test_request_chains_nest_in_both_formats(self, tmp_path):
        chrome, jsonl, summary = _traced_replay(tmp_path)
        assert summary.completed == 24
        for path in (chrome, jsonl):
            spans = load_trace(str(path))
            checked = check_request_spans(spans)
            assert checked == 24
            names = {s["name"] for s in spans}
            assert {"submit", "coalesce", "flush", "backend", "scatter",
                    "request"} <= names

    def test_sharded_request_chains_nest_in_both_formats(self, tmp_path):
        # Request seqs restart per shard; the checker and the Chrome
        # async-lane ids must key chains by (shard, request) or shard
        # 0's request 1 and shard 1's request 1 interleave bogusly.
        chrome, jsonl, summary = _traced_replay(
            tmp_path, request_timeout_s=None, shards=2, placement="hash"
        )
        assert summary.completed == 24
        for path in (chrome, jsonl):
            spans = load_trace(str(path))
            assert check_request_spans(spans) == 24

    def test_snapshot_counters_recorded(self, tmp_path):
        # Pinned unsharded: under $REPRO_SERVE_SHARDS the fabric suffixes
        # every snapshot counter with its shard tag.
        chrome, jsonl, _ = _traced_replay(
            tmp_path, snapshot_interval_s=0.002, shards=1
        )
        counters = [
            json.loads(x)
            for x in jsonl.read_text().splitlines()
            if json.loads(x).get("type") == "counter"
        ]
        names = {c["name"] for c in counters}
        assert "serve.queue_depth" in names
        assert "serve.requests" in names
        # Chrome export carries them as "C" (counter-track) events.
        doc = json.loads(chrome.read_text())
        assert any(e["ph"] == "C" for e in doc["traceEvents"])

    def test_summarize_trace_table(self, tmp_path):
        _, jsonl, _ = _traced_replay(tmp_path)
        table = summarize_trace(load_trace(str(jsonl)))
        for token in ("stage", "coalesce", "backend", "p95 ms"):
            assert token in table

    def test_nesting_checker_catches_violations(self):
        spans = [
            {"name": "request", "cat": "request", "t0": 0.0, "t1": 1.0,
             "request": 1},
            {"name": "submit", "cat": "request", "t0": 0.0, "t1": 0.1,
             "request": 1},
        ]
        with pytest.raises(ValueError, match="missing stages"):
            check_request_spans(spans)
        # A stage escaping its request span is a violation too.
        full = spans + [
            {"name": s, "cat": "request", "t0": 0.2, "t1": 0.9, "request": 1}
            for s in ("coalesce", "flush", "backend", "scatter")
        ]
        full[-1] = {"name": "scatter", "cat": "request", "t0": 0.2, "t1": 5.0,
                    "request": 1}
        with pytest.raises(ValueError, match="escapes"):
            check_request_spans(full)

    def test_nesting_checker_needs_requests(self):
        with pytest.raises(ValueError, match="no completed request"):
            check_request_spans([{"name": "x", "cat": "serve",
                                  "t0": 0.0, "t1": 1.0}])


class TestEventsimAndSweepSpans:
    def test_eventsim_emits_span(self, global_tracer):
        from repro.core.config import KernelConfig
        from repro.gpusim.eventsim import simulate_launch

        tracer, sink = global_tracer
        simulate_launch(KernelConfig(n=6, nb=2), batch=64)
        (span,) = sink.by_name("eventsim")
        assert span.cat == "gpusim"
        assert span.attrs["batch"] == 64
        assert span.attrs["gflops"] > 0

    def test_sweep_emits_spans(self, global_tracer):
        from repro.autotune.space import ParameterSpace
        from repro.autotune.sweep import run_sweep

        tracer, sink = global_tracer
        run_sweep(ParameterSpace(ns=(6,)), batch=256, limit=3)
        (sweep_span,) = sink.by_name("sweep")
        evaluates = sink.by_name("evaluate")
        assert len(evaluates) == 3
        assert all(e.parent_id == sweep_span.span_id for e in evaluates)
