"""Data layouts: offsets, pack/unpack round trips, padding, conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layouts import (
    BatchSpec,
    CanonicalLayout,
    ChunkedInterleavedLayout,
    InterleavedLayout,
    convert,
    from_canonical_dense,
    get_layout,
    pad_batch,
    to_canonical_dense,
)
from repro.layouts.base import WARP_SIZE

ALL_LAYOUTS = [
    CanonicalLayout(),
    InterleavedLayout(),
    ChunkedInterleavedLayout(32),
    ChunkedInterleavedLayout(64),
    ChunkedInterleavedLayout(256),
]


def dense_batch(batch: int, n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((batch, n, n)).astype(np.float32)


class TestBatchSpec:
    def test_padding_rounds_to_warp(self):
        assert BatchSpec(batch=1, n=4).padded_batch == WARP_SIZE
        assert BatchSpec(batch=33, n=4).padded_batch == 64
        assert BatchSpec(batch=64, n=4).padded_batch == 64

    @pytest.mark.parametrize("batch,n", [(0, 4), (4, 0)])
    def test_invalid(self, batch, n):
        with pytest.raises(ValueError):
            BatchSpec(batch=batch, n=n)


class TestRegistry:
    def test_lookup(self):
        assert get_layout("canonical").name == "canonical"
        assert get_layout("chunked64").chunk_size == 64

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_layout("nope")


@pytest.mark.parametrize("layout", ALL_LAYOUTS, ids=lambda l: l.name)
class TestRoundTrip:
    def test_pack_unpack_identity(self, layout):
        dense = dense_batch(37, 5, seed=1)  # 37: not a multiple of anything
        spec = BatchSpec(batch=37, n=5)
        buf = layout.pack(dense)
        assert buf.shape == (layout.buffer_len(spec),)
        out = layout.unpack(buf, spec)
        assert np.array_equal(out, dense)

    def test_offsets_match_pack(self, layout):
        """element_offset is the ground truth for pack's data movement."""
        batch, n = 34, 3
        dense = dense_batch(batch, n, seed=2)
        spec = BatchSpec(batch=batch, n=n)
        buf = layout.pack(dense)
        for b in (0, 1, 31, 33):
            for i in range(n):
                for j in range(n):
                    off = int(np.asarray(layout.element_offset(spec, b, i, j)))
                    assert buf[off] == dense[b, i, j]

    def test_offsets_are_a_bijection(self, layout):
        batch, n = 32, 4
        spec = BatchSpec(batch=batch, n=n)
        bs, is_, js = np.meshgrid(
            np.arange(batch), np.arange(n), np.arange(n), indexing="ij"
        )
        offs = np.asarray(layout.element_offset(spec, bs, is_, js)).ravel()
        assert len(np.unique(offs)) == batch * n * n
        assert offs.min() >= 0
        assert offs.max() < layout.buffer_len(spec)

    def test_unpack_rejects_wrong_size(self, layout):
        spec = BatchSpec(batch=8, n=3)
        with pytest.raises(ValueError):
            layout.unpack(np.zeros(7, dtype=np.float32), spec)

    def test_pack_rejects_non_square(self, layout):
        with pytest.raises(ValueError):
            layout.pack(np.zeros((4, 3, 5), dtype=np.float32))


class TestRoundTripProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(1, 70),
        n=st.integers(1, 9),
        layout_idx=st.integers(0, len(ALL_LAYOUTS) - 1),
    )
    def test_any_shape_round_trips(self, batch, n, layout_idx):
        layout = ALL_LAYOUTS[layout_idx]
        dense = dense_batch(batch, n, seed=batch * 31 + n)
        out = layout.unpack(layout.pack(dense), BatchSpec(batch=batch, n=n))
        assert np.array_equal(out, dense)


class TestInterleavedStructure:
    def test_batch_is_fastest_dimension(self):
        """Figure 7: consecutive matrices' (i,j) elements are adjacent."""
        layout = InterleavedLayout()
        spec = BatchSpec(batch=64, n=4)
        o1 = int(np.asarray(layout.element_offset(spec, 0, 2, 1)))
        o2 = int(np.asarray(layout.element_offset(spec, 1, 2, 1)))
        assert o2 == o1 + 1

    def test_element_stride_is_padded_batch(self):
        layout = InterleavedLayout()
        spec = BatchSpec(batch=100, n=4)  # pads to 128
        o1 = int(np.asarray(layout.element_offset(spec, 0, 0, 0)))
        o2 = int(np.asarray(layout.element_offset(spec, 0, 1, 0)))
        assert o2 - o1 == 128

    def test_padding_unpacks_to_original_batch(self):
        layout = InterleavedLayout()
        dense = dense_batch(33, 3)
        out = layout.unpack(layout.pack(dense), BatchSpec(batch=33, n=3))
        assert out.shape == (33, 3, 3)


class TestChunkedStructure:
    def test_chunks_are_contiguous(self):
        """Figure 8: a chunk occupies one contiguous region."""
        layout = ChunkedInterleavedLayout(32)
        spec = BatchSpec(batch=64, n=3)
        per_chunk = 3 * 3 * 32
        o = int(np.asarray(layout.element_offset(spec, 32, 0, 0)))
        assert o == per_chunk  # matrix 32 opens chunk 1

    def test_element_stride_is_chunk_size(self):
        layout = ChunkedInterleavedLayout(64)
        spec = BatchSpec(batch=128, n=4)
        o1 = int(np.asarray(layout.element_offset(spec, 0, 0, 0)))
        o2 = int(np.asarray(layout.element_offset(spec, 0, 1, 0)))
        assert o2 - o1 == 64

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            ChunkedInterleavedLayout(48)
        with pytest.raises(ValueError):
            ChunkedInterleavedLayout(0)


class TestPadBatch:
    def test_pads_with_identity(self):
        dense = dense_batch(3, 4)
        padded = pad_batch(dense, 8)
        assert padded.shape == (8, 4, 4)
        assert np.array_equal(padded[5], np.eye(4, dtype=np.float32))

    def test_noop_when_aligned(self):
        dense = dense_batch(8, 4)
        assert pad_batch(dense, 8) is dense

    def test_invalid_multiple(self):
        with pytest.raises(ValueError):
            pad_batch(dense_batch(3, 4), 0)


class TestConvert:
    @pytest.mark.parametrize("src", ["canonical", "interleaved", "chunked32"])
    @pytest.mark.parametrize("dst", ["canonical", "interleaved", "chunked64"])
    def test_cross_layout_conversion(self, src, dst):
        dense = dense_batch(40, 5, seed=7)
        spec = BatchSpec(batch=40, n=5)
        buf = from_canonical_dense(dense, src)
        out_buf = convert(buf, spec, src, dst)
        out = to_canonical_dense(out_buf, spec, dst)
        assert np.array_equal(out, dense)
