"""Error norms (repro.utils.errors)."""

import numpy as np
import pytest

from repro.utils.errors import factorization_error, max_abs_error, relative_residual
from repro.utils.spd import random_spd_batch


class TestMaxAbsError:
    def test_zero_for_identical(self):
        a = np.arange(12.0).reshape(3, 4)
        assert max_abs_error(a, a.copy()) == 0.0

    def test_reports_largest(self):
        a = np.zeros(5)
        b = np.array([0.0, -3.0, 1.0, 0.0, 2.0])
        assert max_abs_error(a, b) == 3.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(3), np.zeros(4))

    def test_empty(self):
        assert max_abs_error(np.zeros((0,)), np.zeros((0,))) == 0.0


class TestFactorizationError:
    def test_exact_factor_scores_zero(self):
        a = random_spd_batch(5, 6, seed=0).astype(np.float64)
        l = np.linalg.cholesky(a)
        assert factorization_error(a, l) < 1e-12

    def test_upper_triangle_is_ignored(self):
        a = random_spd_batch(5, 6, seed=0).astype(np.float64)
        l = np.linalg.cholesky(a)
        l_messy = l + np.triu(np.ones_like(l), k=1) * 99.0
        assert factorization_error(a, l_messy) < 1e-12

    def test_wrong_factor_scores_large(self):
        a = random_spd_batch(5, 6, seed=0).astype(np.float64)
        l = np.linalg.cholesky(a)
        assert factorization_error(a, 2.0 * l) > 0.5


class TestRelativeResidual:
    def test_true_solution(self):
        a = random_spd_batch(4, 5, seed=1).astype(np.float64)
        x = np.random.default_rng(2).standard_normal((4, 5, 2))
        b = a @ x
        assert relative_residual(a, x, b) < 1e-12

    def test_wrong_solution(self):
        a = random_spd_batch(4, 5, seed=1).astype(np.float64)
        x = np.random.default_rng(2).standard_normal((4, 5, 2))
        b = a @ x
        assert relative_residual(a, x + 1.0, b) > 1e-3
