"""Memory micro-op generation (repro.codegen.loadstore)."""

import numpy as np
import pytest

from repro.codegen.loadstore import (
    full_tile_elements,
    load_full_source,
    load_lower_source,
    lower_tile_elements,
    store_full_source,
    store_lower_source,
)


def run_block(source: str, ns: dict) -> None:
    exec(compile(source, "<loadstore>", "exec"), ns)  # noqa: S102


class TestLoadFull:
    def test_constant_base_indices(self):
        src = load_full_source("rA", 2, 2, 4, 8)
        # base 8, element (m, n) at 8 + m + 4n
        assert "rA_0_0 = dA[8].copy()" in src
        assert "rA_1_0 = dA[9].copy()" in src
        assert "rA_0_1 = dA[12].copy()" in src
        assert "rA_1_1 = dA[13].copy()" in src

    def test_symbolic_base(self):
        src = load_full_source("rA", 2, 1, 4, "_b")
        assert "rA_0_0 = dA[_b].copy()" in src
        assert "rA_1_0 = dA[_b + 1].copy()" in src

    def test_executes(self):
        dA = np.arange(32.0)
        ns = {"dA": dA}
        run_block(load_full_source("rA", 3, 2, 4, 0), ns)
        assert ns["rA_2_1"] == dA[2 + 4]

    def test_invalid_base_type(self):
        with pytest.raises(TypeError):
            load_full_source("rA", 2, 2, 4, 1.5)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            load_full_source("rA", 0, 2, 4, 0)


class TestStoreFull:
    def test_round_trip_with_load(self):
        dA = np.arange(64.0)
        ns = {"dA": dA.copy()}
        run_block(load_full_source("rA", 3, 3, 8, 2), ns)
        ns["rA_1_1"] = np.float64(-5.0)
        run_block(store_full_source("rA", 3, 3, 8, 2), ns)
        expected = dA.copy()
        expected[2 + 1 + 8] = -5.0
        assert np.array_equal(ns["dA"], expected)


class TestLowerOps:
    def test_only_lower_triangle_touched(self):
        src = load_lower_source("rA", 3, 8, 0)
        assert "rA_0_1" not in src
        assert "rA_0_2" not in src
        assert "rA_1_2" not in src
        for name in ("rA_0_0", "rA_1_0", "rA_2_0", "rA_1_1", "rA_2_1", "rA_2_2"):
            assert name in src

    def test_store_lower_preserves_upper(self):
        dA = np.arange(64.0)
        ns = {"dA": dA.copy()}
        run_block(load_lower_source("rA", 3, 8, 0), ns)
        for i in range(3):
            for j in range(i + 1):
                ns[f"rA_{i}_{j}"] = np.float64(0.0)
        run_block(store_lower_source("rA", 3, 8, 0), ns)
        # upper-triangle elements (i < j) untouched
        assert ns["dA"][0 + 1 * 8] == dA[8]
        assert ns["dA"][1 + 2 * 8] == dA[17]
        # lower zeroed
        assert ns["dA"][0] == 0.0
        assert ns["dA"][1 + 1 * 8] == 0.0


class TestElementCounts:
    def test_full(self):
        assert full_tile_elements(3, 4) == 12

    def test_lower(self):
        assert lower_tile_elements(4) == 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            lower_tile_elements(0)
