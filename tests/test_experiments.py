"""Experiment harnesses (repro.experiments) on a reduced grid.

The full figure benchmarks live under ``benchmarks/``; here we exercise
the harness machinery — series construction, predicates, rendering, and
the checks plumbing — on a small sweep so the test suite stays fast.
"""

import pytest

from repro.autotune.space import ParameterSpace
from repro.autotune.sweep import run_sweep
from repro.experiments import fig13, fig14, fig15, fig16, fig17, fig18, fig19
from repro.experiments.common import ExperimentResult


@pytest.fixture(scope="module")
def small_sweep():
    """A reduced but fully crossed grid over a handful of sizes."""
    space = ParameterSpace(
        ns=(8, 16, 32, 48, 64),
        nbs=(1, 2, 4, 6, 8),
        chunkings=(None, 32, 64, 128, 256, 512),
        fast_maths=(False, True),
        cache_prefs=("l1",),
    )
    return run_sweep(space, batch=16384)


class TestExperimentResult:
    def test_render_contains_checks(self):
        r = ExperimentResult(
            experiment="x",
            title="t",
            series={"s": {1: 2.0}},
            checks={"good": True, "bad": False},
        )
        text = r.render()
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text
        assert not r.all_checks_pass

    def test_table_rendering(self):
        r = ExperimentResult(
            experiment="x", title="t", table=(["a"], [[1], [2]])
        )
        assert "a" in r.render()


class TestFigureHarnesses:
    def test_fig13_series_cover_all_sizes(self, small_sweep):
        result = fig13.run(small_sweep)
        assert set(result.series) == {"ieee", "fast_math"}
        assert sorted(result.series["ieee"]) == [8, 16, 32, 48, 64]
        for n in result.series["ieee"]:
            assert result.series["fast_math"][n] >= result.series["ieee"][n] * 0.999

    def test_fig14_speedup_series(self, small_sweep):
        result = fig14.run(small_sweep)
        assert "speedup" in result.series
        assert result.series["speedup"][8] > 1.0

    def test_fig15_per_nb_series(self, small_sweep):
        result = fig15.run(small_sweep)
        assert set(result.series) == {f"nb={nb}" for nb in (1, 2, 4, 6, 8)}
        # nb=1 is clearly worst at n=64
        assert result.series["nb=1"][64] < result.series["nb=8"][64]

    def test_fig16_lookings(self, small_sweep):
        result = fig16.run(small_sweep)
        assert result.series["top"][64] >= result.series["right"][64]
        assert result.checks["write volume: right > left > top"]

    def test_fig17_chunking(self, small_sweep):
        result = fig17.run(small_sweep)
        assert result.series["chunked"][48] > result.series["non_chunked"][48]

    def test_fig18_chunk_sizes(self, small_sweep):
        result = fig18.run(small_sweep)
        assert result.series["chunk=32"][48] > result.series["chunk=512"][48]

    def test_fig19_unrolling(self, small_sweep):
        result = fig19.run(small_sweep)
        assert result.series["full"][8] >= result.series["partial"][8] * 0.999
        assert result.series["partial"][64] > result.series["full"][64] * 0.999
