"""Set-associative cache simulator (repro.gpusim.cache)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.cache import SetAssociativeCache


class TestGeometry:
    def test_basic(self):
        c = SetAssociativeCache(size_bytes=4096, line_bytes=128, ways=4)
        assert c.num_sets == 8
        assert c.size_bytes == 4096

    def test_fully_associative_clamp(self):
        c = SetAssociativeCache(size_bytes=512, line_bytes=128, ways=64)
        assert c.ways == 4
        assert c.num_sets == 1

    @pytest.mark.parametrize("kwargs", [
        {"size_bytes": 0},
        {"size_bytes": 100, "line_bytes": 128},
        {"size_bytes": 4096, "line_bytes": 128, "ways": 3},
    ])
    def test_invalid_geometry(self, kwargs):
        with pytest.raises(ValueError):
            SetAssociativeCache(**{"size_bytes": 4096, "line_bytes": 128, "ways": 4, **kwargs})


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(1024, 128, 2)
        assert c.access(0) is False
        assert c.access(64) is True  # same line
        assert c.access(128) is False

    def test_lru_eviction_order(self):
        c = SetAssociativeCache(256, 128, 2)  # 1 set, 2 ways
        c.access(0)      # line 0
        c.access(128)    # line 1
        c.access(0)      # refresh line 0
        c.access(256)    # evicts line 1 (LRU)
        assert c.access(0) is True
        assert c.access(128) is False

    def test_working_set_within_capacity_all_hits(self):
        c = SetAssociativeCache(4096, 128, 4)
        addrs = np.arange(0, 4096, 128)
        c.access_all(addrs)  # cold pass
        hits = c.access_all(addrs)
        assert hits == len(addrs)

    def test_streaming_larger_than_capacity_never_hits(self):
        c = SetAssociativeCache(1024, 128, 8)
        addrs = np.arange(0, 64 * 1024, 128)
        for _ in range(3):  # repeated sequential sweeps thrash LRU
            before = c.stats.hits
            c.access_all(addrs)
            assert c.stats.hits == before  # zero hits per sweep

    def test_stats_consistency(self):
        c = SetAssociativeCache(1024, 128, 2)
        rng = np.random.default_rng(0)
        c.access_all(rng.integers(0, 10_000, 500))
        assert c.stats.accesses == 500
        assert c.stats.hits + c.stats.misses == 500
        assert 0.0 <= c.stats.hit_rate <= 1.0

    def test_flush(self):
        c = SetAssociativeCache(1024, 128, 2)
        c.access(0)
        c.flush()
        assert c.resident_lines() == 0
        assert c.access(0) is False

    def test_negative_address(self):
        c = SetAssociativeCache(1024, 128, 2)
        with pytest.raises(ValueError):
            c.access(-1)


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 100_000), min_size=1, max_size=300))
    def test_resident_lines_bounded_by_capacity(self, addresses):
        c = SetAssociativeCache(2048, 128, 4)
        c.access_all(addresses)
        assert c.resident_lines() <= 2048 // 128

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 4_000), min_size=1, max_size=200))
    def test_immediate_re_access_always_hits(self, addresses):
        c = SetAssociativeCache(2048, 128, 4)
        for a in addresses:
            c.access(a)
            assert c.access(a) is True
