"""Metrics and categorical encodings (repro.ml.metrics / encoding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.encoding import expand_one_hot, one_hot_encode, ordinal_encode
from repro.ml.metrics import mse, pearson_r, r2_score


class TestMse:
    def test_zero_for_perfect(self):
        y = np.arange(5.0)
        assert mse(y, y) == 0.0

    def test_known_value(self):
        assert mse([0.0, 0.0], [1.0, 3.0]) == 5.0

    def test_shape_check(self):
        with pytest.raises(ValueError):
            mse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mse([], [])


class TestR2:
    def test_perfect(self):
        y = np.arange(10.0)
        assert r2_score(y, y) == 1.0

    def test_mean_predictor_zero(self):
        y = np.arange(10.0)
        assert r2_score(y, np.full(10, y.mean())) == pytest.approx(0.0)

    def test_constant_target(self):
        assert r2_score(np.ones(4), np.ones(4)) == 1.0


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(20.0)
        assert pearson_r(x, 3 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(20.0)
        assert pearson_r(x, -x) == pytest.approx(-1.0)

    def test_constant_input_zero(self):
        assert pearson_r(np.ones(5), np.arange(5.0)) == 0.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100))
    def test_bounded(self, seed):
        rng = np.random.default_rng(seed)
        x, y = rng.standard_normal((2, 50))
        assert -1.0 - 1e-9 <= pearson_r(x, y) <= 1.0 + 1e-9


class TestEncodings:
    def test_ordinal(self):
        codes = ordinal_encode(["top", "left", "top"], ["left", "right", "top"])
        assert np.array_equal(codes, [2.0, 0.0, 2.0])

    def test_ordinal_unknown_value(self):
        with pytest.raises(ValueError):
            ordinal_encode(["x"], ["a", "b"])

    def test_ordinal_duplicate_categories(self):
        with pytest.raises(ValueError):
            ordinal_encode(["a"], ["a", "a"])

    def test_one_hot(self):
        hot = one_hot_encode(["b", "a"], ["a", "b"])
        assert np.array_equal(hot, [[0.0, 1.0], [1.0, 0.0]])

    def test_expand_one_hot(self):
        x = np.array([[1.0, 2.0], [0.0, 5.0]])
        expanded, new_cols = expand_one_hot(x, column=0, n_categories=3)
        assert expanded.shape == (2, 4)
        assert new_cols == [1, 2, 3]
        assert np.array_equal(expanded[:, 1:], [[0, 1, 0], [1, 0, 0]])
        # remaining original column preserved
        assert np.array_equal(expanded[:, 0], [2.0, 5.0])

    def test_expand_one_hot_validates(self):
        x = np.array([[5.0]])
        with pytest.raises(ValueError):
            expand_one_hot(x, column=0, n_categories=3)
        with pytest.raises(ValueError):
            expand_one_hot(x, column=2, n_categories=3)
