"""Tile-operation schedules (repro.core.schedule)."""


import pytest

from repro.core.config import KernelConfig
from repro.core.schedule import (
    TileOp,
    build_schedule,
    schedule_counts,
)
from repro.utils.flops import cholesky_op_mix

LOOKINGS = ("right", "left", "top")


class TestTileOp:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            TileOp("load_diag", (0, 0))

    def test_classification(self):
        load = TileOp("load_full", (0, 0), shape=(2, 2), elems=4)
        store = TileOp("store_lower", (1, 1), shape=(2,), elems=3)
        comp = TileOp("gemm", (1, 0), shape=(2, 2, 2))
        assert load.is_load and load.is_memory and not load.is_store
        assert store.is_store and store.is_memory
        assert not comp.is_memory


class TestScheduleInvariants:
    @pytest.mark.parametrize(
        "n,nb,looking",
        [
            (n, nb, lk)
            for n, nb in [(4, 2), (8, 4), (9, 4), (12, 3), (7, 3), (5, 5), (13, 4)]
            for lk in LOOKINGS
        ],
    )
    def test_exact_flop_count(self, n, nb, looking):
        """Every variant performs exactly the unblocked algorithm's flops.

        This is the strongest schedule invariant: the tiled decomposition,
        for any tile size, corner handling, and looking order, must do the
        same arithmetic as Algorithm 1 (FMA/div do shift between trsm and
        potrf with tiling, so compare grand totals of multiplies+FMAs and
        sqrt separately).
        """
        counts = schedule_counts(build_schedule(KernelConfig(n=n, nb=nb, looking=looking)))
        ref = cholesky_op_mix(n)
        mix = counts.mix
        assert mix.sqrt == ref.sqrt
        assert mix.fma == ref.fma
        # Every sub-diagonal element is scaled exactly once — by a strsm
        # division or a spotrf reciprocal-multiply; spotrf additionally
        # computes one reciprocal per column (n total).
        assert mix.mul + (mix.div - n) == ref.div

    @pytest.mark.parametrize("looking", LOOKINGS)
    def test_loads_cover_every_store(self, looking):
        """Any tile stored must have been loaded (read-modify-write)."""
        ops = build_schedule(KernelConfig(n=12, nb=4, looking=looking))
        loaded: set = set()
        for op in ops:
            if op.is_load:
                loaded.add(op.target)
            elif op.is_store:
                assert op.target in loaded

    @pytest.mark.parametrize("looking", LOOKINGS)
    @pytest.mark.parametrize("n,nb", [(8, 4), (10, 4), (12, 3)])
    def test_every_lower_tile_stored(self, looking, n, nb):
        """All tiles of the lower triangle get written exactly by the end."""
        cfg = KernelConfig(n=n, nb=nb, looking=looking)
        ops = build_schedule(cfg)
        stored = {op.target for op in ops if op.is_store}
        t = cfg.num_tiles
        expected = {(m, c) for c in range(t) for m in range(c, t)}
        assert stored == expected

    def test_write_volume_ordering(self):
        """Section III: stores are right > left > top (reads are equal-ish)."""
        stores = {}
        for looking in LOOKINGS:
            counts = schedule_counts(
                build_schedule(KernelConfig(n=32, nb=4, looking=looking))
            )
            stores[looking] = counts.stores
        assert stores["right"] > stores["left"] > stores["top"]

    def test_top_looking_minimal_writes(self):
        """Top-looking writes each lower-triangle element exactly once."""
        cfg = KernelConfig(n=24, nb=4, looking="top")
        counts = schedule_counts(build_schedule(cfg))
        assert counts.stores == 24 * 25 // 2

    def test_single_tile_schedule(self):
        ops = build_schedule(KernelConfig(n=4, nb=4, looking="right"))
        kinds = [op.kind for op in ops]
        assert kinds == ["load_lower", "potrf", "store_lower"]

    @pytest.mark.parametrize("looking", LOOKINGS)
    def test_corner_shapes(self, looking):
        """Ops touching the corner tile carry the reduced dimension."""
        cfg = KernelConfig(n=10, nb=4, looking=looking)  # corner = 2
        for op in build_schedule(cfg):
            if op.kind == "potrf" and op.target == (2, 2):
                assert op.shape == (2,)
            if op.kind == "load_full" and op.target[0] == 2:
                assert op.shape[0] == 2


class TestScheduleCounts:
    def test_loads_and_stores_separated(self):
        counts = schedule_counts(build_schedule(KernelConfig(n=8, nb=4)))
        assert counts.loads > 0
        assert counts.stores > 0
        assert counts.load_ops >= counts.store_ops

    def test_flops_property(self):
        counts = schedule_counts(build_schedule(KernelConfig(n=6, nb=3)))
        assert counts.flops == counts.mix.flops
