"""The SLO engine: quantile sketches, burn-rate monitoring, flight recorder.

Three invariants anchor this file, matching the design contract of
:mod:`repro.obs.sketch` / :mod:`repro.obs.slo`:

- **lossless merge** — a fleet sketch folded from shard partitions is
  bit-identical (buckets *and* percentiles) to the sketch of the
  concatenated stream, for every partition and merge order;
- **bounded error** — every percentile estimate is within the sketch's
  relative accuracy of the true order statistic;
- **bounded memory** — the flight recorder never holds more than its
  capacity, no matter how long telemetry streams in.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    FLIGHT_FORMAT,
    SLO_ENV,
    FlightRecorder,
    SloMonitor,
    SloObjective,
    SloPolicy,
    evaluate_objectives,
    is_flight_record,
    load_flight_record,
    parse_objectives,
    slo_from_env,
    summarize_flight_record,
)
from repro.serve.metrics import Histogram, ServeMetrics, SnapshotDelta


def _exact_percentile(values, p):
    """Nearest-rank-with-interpolation-free reference: the order statistic
    at ``floor(p/100 * (n-1))``-ish rank, matching the sketch's rank rule."""
    ordered = sorted(values)
    rank = p / 100.0 * (len(ordered) - 1)
    # The sketch walks cumulative counts until cum > rank, i.e. picks the
    # value at index ceil(rank) when rank is fractional, index rank+1's
    # predecessor otherwise — both are order statistics, so bounding
    # against the two neighbours is the honest check.
    lo = ordered[int(math.floor(rank))]
    hi = ordered[min(int(math.floor(rank)) + 1, len(ordered) - 1)]
    return lo, hi


# ----------------------------------------------------------------------
# QuantileSketch
# ----------------------------------------------------------------------


class TestSketchBasics:
    def test_exact_moments(self):
        s = QuantileSketch()
        for v in (1.0, 2.0, 3.0, 10.0):
            s.observe(v)
        assert s.count == 4
        assert s.total == 16.0
        assert s.mean == 4.0
        assert s.min == 1.0
        assert s.max == 10.0

    def test_empty_sketch(self):
        s = QuantileSketch()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.min == 0.0 and s.max == 0.0
        assert s.percentile(99) == 0.0
        assert s.fraction_above(1.0) == 0.0

    def test_percentile_validation(self):
        s = QuantileSketch()
        s.observe(1.0)
        with pytest.raises(ValueError):
            s.percentile(-1)
        with pytest.raises(ValueError):
            s.percentile(101)

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=1.0)

    def test_extremes_are_exact(self):
        s = QuantileSketch()
        for v in (0.123, 45.6, 7.89):
            s.observe(v)
        assert s.percentile(0) == 0.123
        assert s.percentile(100) == 45.6

    def test_zero_and_negative_values(self):
        s = QuantileSketch()
        for v in (-5.0, -1.0, 0.0, 1.0, 5.0):
            s.observe(v)
        assert s.count == 5
        assert s.min == -5.0 and s.max == 5.0
        # The median sits in the exact zero bucket.
        assert s.percentile(50) == 0.0
        p10 = s.percentile(10)
        assert p10 == pytest.approx(-5.0, rel=2 * DEFAULT_RELATIVE_ACCURACY)

    def test_relative_error_bound_on_lognormal(self):
        rng = np.random.default_rng(7)
        values = np.exp(rng.normal(1.0, 1.5, size=10_000)).tolist()
        s = QuantileSketch()
        for v in values:
            s.observe(v)
        for p in (50, 90, 95, 99, 99.9):
            lo, hi = _exact_percentile(values, p)
            est = s.percentile(p)
            bound = DEFAULT_RELATIVE_ACCURACY * 1.0001  # float-walk slack
            assert est >= lo * (1 - bound)
            assert est <= hi * (1 + bound)

    def test_count_above_semantics(self):
        s = QuantileSketch()
        for v in (0.5, 1.0, 10.0, 100.0):
            s.observe(v)
        # Buckets wholly above the threshold only: values within
        # ±accuracy of the threshold may be excluded, never included
        # spuriously from far below.
        assert s.count_above(50.0) == 1
        assert s.count_above(5.0) == 2
        assert s.count_above(0.0) == 4
        assert s.fraction_above(50.0) == 0.25
        with pytest.raises(ValueError):
            s.count_above(-1.0)

    def test_merge_type_and_accuracy_guards(self):
        s = QuantileSketch()
        with pytest.raises(TypeError):
            s.merge(Histogram())
        with pytest.raises(ValueError):
            s.merge(QuantileSketch(relative_accuracy=0.02))
        with pytest.raises(TypeError):
            s.delta(object())  # type: ignore[arg-type]


class TestSketchMergeLossless:
    def test_merged_percentiles_bit_identical_to_concatenated(self):
        """The acceptance criterion: shard-partitioned stream, merged
        sketch p99 bit-for-bit equal to the whole-stream sketch p99."""
        rng = np.random.default_rng(3)
        values = np.exp(rng.normal(0.0, 2.0, size=4000)).tolist()
        whole = QuantileSketch()
        for v in values:
            whole.observe(v)
        shards = [QuantileSketch() for _ in range(4)]
        for i, v in enumerate(values):
            shards[i % 4].observe(v)
        merged = QuantileSketch()
        for part in shards:
            merged.merge(part)
        assert merged.count == whole.count
        assert merged._buckets == whole._buckets
        for p in (50, 90, 95, 99, 99.9, 0, 100):
            assert merged.percentile(p) == whole.percentile(p)  # bitwise

    @given(
        values=st.lists(
            st.floats(
                min_value=1e-6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=200,
        ),
        cut=st.integers(0, 200),
    )
    @settings(max_examples=60)
    def test_any_partition_merges_to_the_whole(self, values, cut):
        cut = cut % (len(values) + 1)
        whole, left, right = (QuantileSketch() for _ in range(3))
        for v in values:
            whole.observe(v)
        for v in values[:cut]:
            left.observe(v)
        for v in values[cut:]:
            right.observe(v)
        merged = left.copy().merge(right)
        assert merged._buckets == whole._buckets
        assert merged._zero == whole._zero
        assert (merged.count, merged.min, merged.max) == (
            whole.count, whole.min, whole.max
        )
        for p in (50, 95, 99):
            assert merged.percentile(p) == whole.percentile(p)

    @given(
        chunks=st.lists(
            st.lists(
                st.floats(
                    min_value=1e-6, max_value=1e6,
                    allow_nan=False, allow_infinity=False,
                ),
                max_size=30,
            ),
            min_size=2, max_size=5,
        )
    )
    @settings(max_examples=40)
    def test_merge_commutative_and_associative_on_buckets(self, chunks):
        sketches = []
        for chunk in chunks:
            s = QuantileSketch()
            for v in chunk:
                s.observe(v)
            sketches.append(s)
        forward = QuantileSketch()
        for s in sketches:
            forward.merge(s)
        backward = QuantileSketch()
        for s in reversed(sketches):
            backward.merge(s)
        assert forward._buckets == backward._buckets
        assert forward.count == backward.count
        if forward.count:
            for p in (50, 99):
                assert forward.percentile(p) == backward.percentile(p)

    @given(
        values=st.lists(
            st.floats(
                min_value=1e-3, max_value=1e3,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=100,
        ),
        p=st.floats(min_value=1.0, max_value=99.9),
    )
    @settings(max_examples=60)
    def test_relative_error_bound_property(self, values, p):
        s = QuantileSketch()
        for v in values:
            s.observe(v)
        lo, hi = _exact_percentile(values, p)
        est = s.percentile(p)
        bound = DEFAULT_RELATIVE_ACCURACY * 1.0001
        assert est >= lo * (1 - bound)
        assert est <= hi * (1 + bound)

    @given(
        values=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            max_size=100,
        )
    )
    @settings(max_examples=60)
    def test_serialization_round_trip(self, values):
        s = QuantileSketch()
        for v in values:
            s.observe(v)
        payload = json.dumps(s.to_dict())  # must be JSON-safe
        back = QuantileSketch.from_dict(json.loads(payload))
        assert back == s

    def test_from_dict_rejects_foreign_kinds(self):
        with pytest.raises(ValueError):
            QuantileSketch.from_dict({"kind": "histogram"})


class TestSketchWindows:
    def test_delta_is_exactly_the_window(self):
        cum = QuantileSketch()
        first = [1.0, 2.0, 50.0]
        second = [3.0, 0.5, 200.0, 7.0]
        for v in first:
            cum.observe(v)
        base = cum.copy()
        for v in second:
            cum.observe(v)
        window = cum.delta(base)
        expect = QuantileSketch()
        for v in second:
            expect.observe(v)
        assert window._buckets == expect._buckets
        assert window.count == expect.count
        assert window.total == pytest.approx(expect.total)
        for p in (50, 99):
            assert window.percentile(p) == expect.percentile(p)

    def test_delta_of_identical_captures_is_empty(self):
        cum = QuantileSketch()
        cum.observe(4.2)
        window = cum.delta(cum.copy())
        assert window.count == 0
        assert window.total == 0.0

    def test_delta_window_extrema_within_bound(self):
        cum = QuantileSketch()
        cum.observe(1000.0)
        base = cum.copy()
        cum.observe(3.0)
        cum.observe(9.0)
        window = cum.delta(base)
        # Lifetime min/max do not leak in; window extrema are bucket
        # estimates of the window's own values.
        assert window.min == pytest.approx(3.0, rel=2 * DEFAULT_RELATIVE_ACCURACY)
        assert window.max == pytest.approx(9.0, rel=2 * DEFAULT_RELATIVE_ACCURACY)


# ----------------------------------------------------------------------
# Objectives and policies
# ----------------------------------------------------------------------


class TestObjectiveParsing:
    def test_basic_objective(self):
        o = SloObjective.parse("coalesce_p99_ms < 5")
        assert o.stream == "coalesce_latency_ms"
        assert o.quantile == 99.0
        assert o.threshold_ms == 5.0
        assert o.budget == pytest.approx(0.01)

    def test_p999_reads_as_decimal_tail(self):
        o = SloObjective.parse("service_p999_ms<20")
        assert o.stream == "flush_service_ms"
        assert o.quantile == pytest.approx(99.9)
        assert o.budget == pytest.approx(0.001)

    def test_unknown_stream_passes_through(self):
        o = SloObjective.parse("queue_wait_p95_ms<1.5")
        assert o.stream == "queue_wait"
        assert o.quantile == 95.0

    def test_malformed_specs_raise(self):
        for bad in ("p99<5", "coalesce_p99_ms", "coalesce_p99_ms<-5",
                    "coalesce_p99_ms<0", "coalesce_p00_ms<5", "", "<5"):
            with pytest.raises(ValueError):
                SloObjective.parse(bad)

    def test_parse_objectives_list_and_duplicates(self):
        objs = parse_objectives(DEFAULT_OBJECTIVES)
        assert [o.stream for o in objs] == [
            "coalesce_latency_ms", "flush_service_ms"
        ]
        with pytest.raises(ValueError):
            parse_objectives("coalesce_p99_ms<5,coalesce_p99_ms<5")
        with pytest.raises(ValueError):
            parse_objectives(" , ")

    def test_policy_validation(self):
        objs = parse_objectives("coalesce_p99_ms<5")
        with pytest.raises(ValueError):
            SloPolicy(objectives=())
        with pytest.raises(ValueError):
            SloPolicy(objectives=objs, fast_window_s=10.0, slow_window_s=5.0)
        with pytest.raises(ValueError):
            SloPolicy(objectives=objs, burn_threshold=0.0)
        with pytest.raises(ValueError):
            SloPolicy(objectives=objs, poll_interval_s=0.0)


# ----------------------------------------------------------------------
# The monitor
# ----------------------------------------------------------------------


class _FakeMetrics:
    def __init__(self):
        self.histograms = {"coalesce_latency_ms": QuantileSketch()}

    def observe(self, *values):
        for v in values:
            self.histograms["coalesce_latency_ms"].observe(v)


def _monitor(metrics, flight=None, on_breach=None, **policy_kwargs):
    policy = SloPolicy.parse("coalesce_p99_ms<10", **policy_kwargs)
    return SloMonitor(policy, lambda: metrics, flight=flight, on_breach=on_breach)


class TestSloMonitor:
    def test_healthy_stream_stays_ok(self):
        metrics = _FakeMetrics()
        mon = _monitor(metrics)
        metrics.observe(*[1.0] * 100)
        (status,) = mon.poll(now=0.0)
        assert status.state == "ok"
        assert status.burn_fast == 0.0
        assert mon.burn_rates() == {"coalesce_p99_ms<10": 0.0}

    def test_breach_needs_both_windows(self):
        metrics = _FakeMetrics()
        mon = _monitor(metrics, fast_window_s=1.0, slow_window_s=10.0)
        # Healthy history spread across the slow window.
        mon.poll(now=0.0)
        for t in range(1, 10):
            metrics.observe(*[1.0] * 100)
            mon.poll(now=float(t))
        # A fast-window latency spike: 100% bad in the fast window,
        # still diluted below budget in the slow one (5 of 905).
        metrics.observe(*[100.0] * 5)
        (status,) = mon.poll(now=10.0)
        assert status.burn_fast > 1.0
        assert status.state == "warn"
        # Sustained badness eventually floods the slow window too.
        for t in range(11, 25):
            metrics.observe(*[100.0] * 200)
            statuses = mon.poll(now=float(t))
        assert statuses[0].state == "breach"

    def test_breach_transition_fires_once_and_recovers(self):
        metrics = _FakeMetrics()
        seen = []
        flight = FlightRecorder(capacity=64)
        mon = _monitor(
            metrics, flight=flight, on_breach=seen.append,
            fast_window_s=1.0, slow_window_s=1.0,
        )
        metrics.observe(*[100.0] * 50)
        mon.poll(now=0.0)
        mon.poll(now=0.5)
        assert mon.breaches == 1
        assert len(seen) == 1
        # Recovery: later windows contain only healthy observations.
        metrics.observe(*[1.0] * 500)
        mon.poll(now=5.0)
        assert mon.statuses[0].state == "ok"
        # ... and a fresh breach counts again.
        metrics.observe(*[100.0] * 5000)
        mon.poll(now=6.0)
        assert mon.breaches == 2
        kinds = {e.kind for e in flight._entries}
        assert "slo_breach" in kinds and "slo" in kinds

    def test_windows_are_lossless_slices(self):
        metrics = _FakeMetrics()
        mon = _monitor(metrics, fast_window_s=1.0, slow_window_s=30.0)
        metrics.observe(*[100.0] * 10)  # old badness
        mon.poll(now=0.0)
        metrics.observe(*[1.0] * 10)  # recent health
        (status,) = mon.poll(now=5.0)
        # The fast window holds exactly the 10 recent observations.
        assert status.window_count_fast == 10
        assert status.bad_frac_fast == 0.0
        assert status.window_count_slow == 20
        assert status.bad_frac_slow == pytest.approx(0.5)

    def test_reservoir_stream_is_rejected(self):
        class Reservoir:
            histograms = {"coalesce_latency_ms": Histogram()}

        mon = _monitor(Reservoir())
        with pytest.raises(TypeError):
            mon.poll(now=0.0)

    def test_missing_stream_is_rejected(self):
        class Empty:
            histograms = {}

        mon = _monitor(Empty())
        with pytest.raises(ValueError):
            mon.poll(now=0.0)

    def test_status_dict_shape(self):
        metrics = _FakeMetrics()
        mon = _monitor(metrics)
        metrics.observe(1.0)
        mon.poll(now=0.0)
        d = mon.status_dict()
        assert d["objectives"] == ["coalesce_p99_ms<10"]
        assert d["evaluations"] == 1
        assert d["breaches"] == 0
        assert d["statuses"][0]["state"] == "ok"
        json.dumps(d)  # report-safe

    def test_slo_from_env(self, monkeypatch):
        metrics = _FakeMetrics()
        monkeypatch.delenv(SLO_ENV, raising=False)
        assert slo_from_env(lambda: metrics) is None
        monkeypatch.setenv(SLO_ENV, "off")
        assert slo_from_env(lambda: metrics) is None
        monkeypatch.setenv(SLO_ENV, "1")
        mon = slo_from_env(lambda: metrics)
        assert [o.name for o in mon.slo.objectives] == [
            o.name for o in parse_objectives(DEFAULT_OBJECTIVES)
        ]
        monkeypatch.setenv(SLO_ENV, "coalesce_p95_ms<7")
        mon = slo_from_env(lambda: metrics)
        assert mon.slo.objectives[0].quantile == 95.0
        monkeypatch.setenv(SLO_ENV, "not an objective")
        with pytest.raises(ValueError):
            slo_from_env(lambda: metrics)


class TestEvaluateObjectives:
    def test_sketch_verdicts(self):
        metrics = _FakeMetrics()
        metrics.observe(*[1.0] * 99, 100.0)
        good = parse_objectives("coalesce_p99_ms<200")
        bad = parse_objectives("coalesce_p50_ms<0.5")
        (entry,) = evaluate_objectives(metrics, good)
        assert entry["ok"] and entry["bad_frac"] == 0.0
        (entry,) = evaluate_objectives(metrics, bad)
        assert not entry["ok"]
        assert entry["burn"] > 1.0

    def test_missing_stream(self):
        metrics = _FakeMetrics()
        (entry,) = evaluate_objectives(
            metrics, parse_objectives("nonexistent_p99_ms<5")
        )
        assert not entry["ok"]
        assert "missing" in entry["error"]


# ----------------------------------------------------------------------
# The flight recorder
# ----------------------------------------------------------------------


class _Span:
    def __init__(self, name, **attrs):
        self.name = name
        self.cat = "test"
        self.t0 = 0.0
        self.t1 = 1.0
        self.span_id = 1
        self.parent_id = None
        self.request = None
        self.track = "t"
        self.attrs = attrs


class TestFlightRecorder:
    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=4)

    def test_ring_bounded_under_sustained_load(self):
        cap = 32
        rec = FlightRecorder(capacity=cap)
        for i in range(10 * cap):
            rec.note("tick", i=i)
            assert len(rec) <= cap
        assert len(rec) == cap
        entries = list(rec._entries)
        # Most recent entries retained, in capture order, seq monotonic.
        assert [e.payload["i"] for e in entries] == list(
            range(9 * cap, 10 * cap)
        )
        assert [e.seq for e in entries] == sorted(e.seq for e in entries)

    @given(n=st.integers(0, 500))
    @settings(max_examples=25)
    def test_ring_bound_property(self, n):
        rec = FlightRecorder(capacity=16)
        for i in range(n):
            rec.on_counter("c", float(i), {"v": i})
        assert len(rec) == min(n, 16)

    def test_dump_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        rec = FlightRecorder(capacity=64)
        rec.note("decision", reason="grow")
        rec.on_counter("control.knobs", 1.0, {"target_batch": 64})
        out = rec.dump(path, reason="manual")
        assert out == path
        assert is_flight_record(path)
        header, entries = load_flight_record(path)
        assert header["format"] == FLIGHT_FORMAT
        assert header["reason"] == "manual"
        assert [e["kind"] for e in entries] == ["decision", "counter"]
        text = summarize_flight_record(header, entries)
        assert "reason=manual" in text
        assert "decision" in text

    def test_dump_requires_a_path(self):
        rec = FlightRecorder(capacity=16)
        with pytest.raises(ValueError):
            rec.dump()
        assert rec.trigger("whatever") is None  # no path: no-op

    def test_incident_span_auto_triggers(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        rec = FlightRecorder(capacity=16, path=path)
        rec.on_span(_Span("request"))
        assert rec.dumps == []
        rec.on_span(_Span("shard_down", shard=2))
        assert rec.dumps == [("shard_down", path)]
        header, entries = load_flight_record(path)
        assert header["reason"] == "shard_down"
        text = summarize_flight_record(header, entries)
        assert "incident: shard_down shard=2" in text

    def test_truncated_record_detected(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        rec = FlightRecorder(capacity=16)
        for i in range(5):
            rec.note("tick", i=i)
        rec.dump(path)
        lines = open(path, encoding="utf-8").read().splitlines()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines[:-2]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            load_flight_record(path)

    def test_sniff_rejects_other_files(self, tmp_path):
        other = tmp_path / "trace.jsonl"
        other.write_text('{"name": "request"}\n')
        assert not is_flight_record(str(other))
        assert not is_flight_record(str(tmp_path / "missing.jsonl"))


# ----------------------------------------------------------------------
# Threading through the serving layer
# ----------------------------------------------------------------------


class TestServeIntegration:
    def test_latency_families_are_sketches(self):
        m = ServeMetrics()
        assert isinstance(m.histograms["coalesce_latency_ms"], QuantileSketch)
        assert isinstance(m.histograms["flush_service_ms"], QuantileSketch)
        assert isinstance(m.histograms["batch_fill"], Histogram)

    def test_sharded_merge_is_bit_identical(self):
        """Fleet p99 from merged shard metrics == whole-stream p99."""
        rng = np.random.default_rng(11)
        values = np.exp(rng.normal(0.0, 1.5, size=900)).tolist()
        whole = ServeMetrics()
        parts = [ServeMetrics() for _ in range(3)]
        for i, v in enumerate(values):
            whole.histograms["coalesce_latency_ms"].observe(v)
            parts[i % 3].histograms["coalesce_latency_ms"].observe(v)
        merged = ServeMetrics.merged(parts)
        a = merged.histograms["coalesce_latency_ms"]
        b = whole.histograms["coalesce_latency_ms"]
        for p in (50, 95, 99, 99.9):
            assert a.percentile(p) == b.percentile(p)  # bitwise

    def test_snapshot_delta_slo_round_trip(self):
        window = SnapshotDelta(
            dt=0.1, counters={"completed": 5}, hists={},
            slo={"coalesce_p99_ms<5": 2.5, "service_p99_ms<20": 0.1},
        )
        assert window.max_burn_rate == 2.5
        back = SnapshotDelta.from_dict(
            json.loads(json.dumps(window.to_dict()))
        )
        assert back.slo == window.slo
        # Empty slo is elided from the journaled dict entirely.
        empty = SnapshotDelta(dt=0.1, counters={}, hists={})
        assert "slo" not in empty.to_dict()
        assert empty.max_burn_rate == 0.0

    def test_aimd_sheds_latency_on_burn(self):
        from repro.serve.control.strategy import AIMDStrategy, Knobs

        s = AIMDStrategy()
        knobs = Knobs(64, 2.0)
        burning = SnapshotDelta(
            dt=0.1, counters={"completed": 10, "flushes": 2},
            hists={}, slo={"coalesce_p99_ms<5": 3.0},
        )
        proposed, reason = s.propose(burning, knobs)
        assert reason == "slo_burn"
        assert proposed.max_delay_ms < knobs.max_delay_ms
        assert proposed.target_batch == knobs.target_batch
        # Burn at or under the threshold defers to the normal rules.
        calm = SnapshotDelta(
            dt=0.1, counters={}, hists={}, slo={"coalesce_p99_ms<5": 0.5}
        )
        _, reason = s.propose(calm, knobs)
        assert reason != "slo_burn"

    def test_replay_trace_monitor_and_summary(self):
        from repro.serve.client import replay_trace, synthetic_trace

        trace = synthetic_trace(requests=60, rate_hz=4000.0, seed=5)
        summary = replay_trace(trace, slo="coalesce_p99_ms<250")
        assert summary.slo is not None
        assert summary.slo["evaluations"] >= 1
        assert summary.slo["breaches"] == 0

    def test_replay_trace_kill_shard_validation(self, monkeypatch):
        from repro.serve.client import replay_trace, synthetic_trace
        from repro.serve.policy import SHARDS_ENV, ServePolicy

        trace = synthetic_trace(requests=10, rate_hz=4000.0)
        # The default policy reads $REPRO_SERVE_SHARDS; clear it so the
        # unsharded-broker complaint fires even in CI's sharded cells.
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        with pytest.raises(ValueError, match="sharded"):
            replay_trace(trace, kill_shard=0)
        with pytest.raises(Exception, match="no shard"):
            replay_trace(
                trace,
                policy=ServePolicy(shards=2),
                kill_shard=7,
                kill_at_s=0.0,
            )

    def test_forced_breach_dumps_flight_record(self, tmp_path):
        """Acceptance: a forced breach during a sharded demo produces a
        complete flight record that the summarizer reads back."""
        from repro.obs import Tracer, set_tracer
        from repro.serve.client import replay_trace, synthetic_trace
        from repro.serve.policy import ServePolicy

        path = str(tmp_path / "flight.jsonl")
        flight = FlightRecorder(capacity=512, path=path)
        tracer = Tracer([flight])
        previous = set_tracer(tracer)
        try:
            trace = synthetic_trace(requests=200, rate_hz=2000.0, seed=2)
            summary = replay_trace(
                trace,
                policy=ServePolicy(shards=2, request_timeout_s=None),
                slo="coalesce_p99_ms<0.001",  # unmeetable: must breach
                flight=flight,
                kill_shard=1,
                kill_at_s=0.01,
            )
        finally:
            set_tracer(previous)
            tracer.close()
        assert summary.slo["breaches"] >= 1
        assert summary.flight is flight
        reasons = [reason for reason, _ in flight.dumps]
        assert any(r == "shard_down" for r in reasons)
        assert any(r.startswith("slo_breach") for r in reasons)
        header, entries = load_flight_record(path)
        kinds = {e["kind"] for e in entries}
        assert "slo" in kinds
        text = summarize_flight_record(header, entries)
        assert "breach:" in text

    def test_prom_renders_sketch_p999(self):
        from repro.obs import render_prometheus

        m = ServeMetrics()
        for v in (1.0, 2.0, 5.0):
            m.histograms["coalesce_latency_ms"].observe(v)
            m.histograms["batch_fill"].observe(0.5)
        text = render_prometheus(m)
        assert 'coalesce_latency_ms{quantile="0.999"}' in text
        # Reservoir families keep the classic three quantiles.
        assert 'batch_fill{quantile="0.999"}' not in text


# ----------------------------------------------------------------------
# Histogram.merge (the proportional-thinning fix)
# ----------------------------------------------------------------------


class TestHistogramMergeProportional:
    def test_mismatched_strides_merge_proportionally(self):
        left, right = Histogram(max_samples=64), Histogram(max_samples=64)
        for _ in range(200):
            left.observe(1.0)  # forces left's stride up
        for _ in range(40):
            right.observe(100.0)
        merged = Histogram(max_samples=64).merge(left).merge(right)
        assert merged.count == 240
        ones = sum(1 for v in merged._samples if v == 1.0)
        hundreds = sum(1 for v in merged._samples if v == 100.0)
        # 200:40 source split — the retained reservoir must reflect it
        # instead of crushing the larger stream to a handful of samples.
        assert ones > hundreds
        assert hundreds >= 1
        frac = ones / (ones + hundreds)
        assert 0.6 <= frac <= 0.95

    def test_merge_exact_when_unthinned(self):
        a, b = Histogram(max_samples=64), Histogram(max_samples=64)
        for v in (1.0, 2.0):
            a.observe(v)
        for v in (3.0, 4.0):
            b.observe(v)
        merged = Histogram(max_samples=64).merge(a).merge(b)
        assert sorted(merged._samples) == [1.0, 2.0, 3.0, 4.0]
        assert merged.count == 4
        assert merged.total == 10.0


# ----------------------------------------------------------------------
# Replay report v3 + the SLO gate
# ----------------------------------------------------------------------


class TestReplayV3:
    def _report(self):
        from repro.serve.client import synthetic_trace
        from repro.serve.replay import policy_grid, run_replay_grid

        trace = synthetic_trace(requests=60, rate_hz=4000.0, seed=9)
        cells = policy_grid(target_batches=(16,), max_delays_ms=(2.0,))
        return run_replay_grid(trace, cells, slo="coalesce_p99_ms<250")

    def test_v3_record_fields(self):
        from repro.serve.replay import REPORT_SCHEMA

        report = self._report()
        assert report["schema"] == REPORT_SCHEMA == "repro.bench_serve_replay/v4"
        run = report["runs"][0]
        assert run["coalesce_p999_ms"] >= run["coalesce_p99_ms"]
        assert run["service_p99_ms"] >= run["service_p95_ms"]
        assert run["slo"]["ok"] is True
        assert run["slo"]["results"][0]["objective"] == "coalesce_p99_ms<250"

    def test_v2_reports_still_load(self, tmp_path):
        from repro.serve.replay import load_report, save_report

        report = self._report()
        report["schema"] = "repro.bench_serve_replay/v2"
        path = str(tmp_path / "v2.json")
        save_report(path, report)
        assert load_report(path)["schema"] == "repro.bench_serve_replay/v2"

    def test_compare_slo_findings(self):
        from repro.serve.replay import compare_slo, render_slo

        good = {
            "runs": [{"label": "a", "ok": True, "slo": {
                "ok": True,
                "results": [{"objective": "x", "ok": True}],
            }}]
        }
        assert compare_slo(good) == []
        violated = {
            "runs": [{"label": "a", "ok": True, "slo": {
                "ok": False,
                "results": [{
                    "objective": "coalesce_p99_ms<1", "ok": False,
                    "quantile": 99.0, "observed_ms": 9.0,
                    "bad_frac": 0.4, "burn": 40.0,
                }],
            }}]
        }
        findings = compare_slo(violated)
        assert len(findings) == 1 and "violated" in findings[0]
        assert "SLO GATE" in render_slo(findings, violated)
        missing = {"runs": [{"label": "a", "ok": True}]}
        assert any("no slo block" in f for f in compare_slo(missing))

    def test_p99_substitution_is_flagged(self):
        """Satellite: a pre-v2 report without p99 raises a gate finding
        instead of silently gating the tail against p95."""
        from repro.serve.replay import compare_controlled

        def run(label, controller=None, with_p99=True):
            r = {
                "label": label, "ok": True, "conservation_ok": True,
                "throughput_rps": 1000.0, "coalesce_p95_ms": 2.0,
                "policy": {"backend": "inline", "shards": 1},
            }
            if with_p99:
                r["coalesce_p99_ms"] = 3.0
            if controller:
                r["controller"] = {"strategy": controller, "deterministic": True}
            return r

        report = {"runs": [
            run("a", with_p99=False),
            run("a/ctl-aimd", controller="aimd"),
        ]}
        findings = compare_controlled(report)
        assert any("lack" in f and "coalesce_p99_ms" in f for f in findings)
        report = {"runs": [
            run("a"),
            run("a/ctl-aimd", controller="aimd", with_p99=False),
        ]}
        findings = compare_controlled(report)
        assert any("controlled run lack" in f for f in findings)
        healthy = {"runs": [
            run("a"), run("a/ctl-aimd", controller="aimd"),
        ]}
        assert compare_controlled(healthy) == []
