"""The batch Cholesky driver (repro.core.factorize).

The central correctness tests of the library: every point of the
configuration grid must produce LAPACK's factorization, through the full
pack -> generated kernel -> unpack pipeline.
"""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import KernelConfig
from repro.core.factorize import batch_cholesky, factorize_buffer
from repro.layouts.base import BatchSpec
from repro.utils.errors import factorization_error
from repro.utils.spd import random_spd_batch


def reference(a: np.ndarray) -> np.ndarray:
    return np.linalg.cholesky(a.astype(np.float64))


class TestGridCorrectness:
    @pytest.mark.parametrize("looking", ["right", "left", "top"])
    @pytest.mark.parametrize("unroll", ["partial", "full"])
    @pytest.mark.parametrize("nb", [1, 3, 4, 8])
    def test_divisible_and_corner_sizes(self, looking, unroll, nb):
        for n in (8, 11):
            a = random_spd_batch(40, n, seed=n)
            cfg = KernelConfig(n=n, nb=nb, looking=looking, unroll=unroll)
            l = batch_cholesky(a, cfg)
            assert np.allclose(np.tril(l), reference(a), atol=2e-3)

    @pytest.mark.parametrize("chunk", [32, 64, 128])
    def test_chunked_layouts(self, chunk):
        a = random_spd_batch(300, 6, seed=1)  # several chunks + padding
        cfg = KernelConfig(n=6, nb=3, chunked=True, chunk_size=chunk)
        l = batch_cholesky(a, cfg)
        assert np.allclose(np.tril(l), reference(a), atol=1e-3)

    def test_non_chunked_layout(self):
        a = random_spd_batch(100, 5, seed=2)
        cfg = KernelConfig(n=5, nb=2, chunked=False)
        l = batch_cholesky(a, cfg)
        assert np.allclose(np.tril(l), reference(a), atol=1e-3)

    def test_n_equals_one(self):
        a = random_spd_batch(64, 1, seed=3)
        l = batch_cholesky(a, KernelConfig(n=1, nb=1))
        assert np.allclose(l[:, 0, 0], np.sqrt(a[:, 0, 0]), rtol=1e-6)

    def test_upper_triangle_untouched(self):
        a = random_spd_batch(32, 6, seed=4)
        l = batch_cholesky(a, KernelConfig(n=6, nb=3))
        assert np.array_equal(np.triu(l, 1), np.triu(a, 1))

    def test_batch_not_multiple_of_chunk(self):
        a = random_spd_batch(33, 4, seed=5)
        l = batch_cholesky(a, KernelConfig(n=4, nb=2, chunked=True, chunk_size=32))
        assert l.shape == (33, 4, 4)
        assert np.allclose(np.tril(l), reference(a), atol=1e-3)


class TestApiErgonomics:
    def test_kwargs_construction(self):
        a = random_spd_batch(32, 4, seed=6)
        l = batch_cholesky(a, nb=2, looking="left")
        assert factorization_error(a, l) < 1e-5

    def test_config_and_kwargs_conflict(self):
        a = random_spd_batch(32, 4, seed=6)
        with pytest.raises(TypeError):
            batch_cholesky(a, KernelConfig(n=4), nb=2)

    def test_config_dimension_mismatch(self):
        a = random_spd_batch(32, 4, seed=6)
        with pytest.raises(ValueError):
            batch_cholesky(a, KernelConfig(n=8))

    def test_wrong_rank(self):
        with pytest.raises(ValueError):
            batch_cholesky(np.zeros((4, 4)))

    def test_float64_input_accepted(self):
        a = random_spd_batch(32, 4, seed=7).astype(np.float64)
        l = batch_cholesky(a, nb=2)
        assert l.dtype == np.float32


class TestFactorizeBuffer:
    def test_in_place_on_packed_buffer(self):
        a = random_spd_batch(64, 5, seed=8)
        cfg = KernelConfig(n=5, nb=5, chunked=True, chunk_size=32)
        layout = cfg.layout()
        buf = layout.pack(a)
        spec = BatchSpec(batch=64, n=5)
        factorize_buffer(buf, spec, cfg)
        l = layout.unpack(buf, spec)
        assert np.allclose(np.tril(l), reference(a), atol=1e-3)

    def test_spec_mismatch(self):
        cfg = KernelConfig(n=5)
        with pytest.raises(ValueError):
            factorize_buffer(np.zeros(10, np.float32), BatchSpec(batch=4, n=4), cfg)

    def test_buffer_size_mismatch(self):
        cfg = KernelConfig(n=4)
        with pytest.raises(ValueError):
            factorize_buffer(np.zeros(10, np.float32), BatchSpec(batch=4, n=4), cfg)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 12),
        nb=st.integers(1, 12),
        looking=st.sampled_from(["right", "left", "top"]),
        unroll=st.sampled_from(["partial", "full"]),
        batch=st.integers(1, 80),
    )
    def test_factorization_reconstructs_input(self, n, nb, looking, unroll, batch):
        """For any configuration, L L^T reconstructs A to fp32 accuracy."""
        a = random_spd_batch(batch, n, seed=n * 997 + nb * 31 + batch)
        cfg = KernelConfig(n=n, nb=nb, looking=looking, unroll=unroll)
        l = batch_cholesky(a, cfg)
        assert factorization_error(a, l) < 5e-5 * max(1, n)
