"""Batch triangular and SPD solves (repro.core.solve)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lapack import lapack_solve_batch
from repro.core.factorize import batch_cholesky
from repro.core.solve import (
    batch_solve,
    batch_spd_solve,
    batch_trsv_lower,
    batch_trsv_lower_t,
)
from repro.utils.errors import relative_residual
from repro.utils.spd import random_rhs_batch, random_spd_batch


def lower_batch(batch: int, n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    l = np.tril(rng.standard_normal((batch, n, n)))
    idx = np.arange(n)
    l[:, idx, idx] = 1.0 + rng.random((batch, n))  # well away from zero
    return l


class TestForwardSubstitution:
    def test_solves_lower_system(self):
        l = lower_batch(10, 6, seed=1)
        y = np.random.default_rng(2).standard_normal((10, 6, 3))
        b = l @ y
        got = batch_trsv_lower(l, b)
        assert np.allclose(got, y, rtol=1e-10)

    def test_only_lower_triangle_used(self):
        l = lower_batch(5, 4, seed=3)
        dirty = l + np.triu(np.ones((4, 4)), k=1) * 1e6
        b = random_rhs_batch(5, 4, seed=4).astype(np.float64)
        assert np.allclose(batch_trsv_lower(dirty, b), batch_trsv_lower(l, b))

    def test_2d_rhs(self):
        l = lower_batch(4, 3, seed=5)
        b = np.random.default_rng(6).standard_normal((4, 3))
        got = batch_trsv_lower(l, b)
        assert got.shape == (4, 3, 1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            batch_trsv_lower(lower_batch(4, 3), np.zeros((5, 3)))


class TestBackSubstitution:
    def test_solves_transposed_system(self):
        l = lower_batch(10, 6, seed=7)
        x = np.random.default_rng(8).standard_normal((10, 6, 2))
        b = l.transpose(0, 2, 1) @ x
        got = batch_trsv_lower_t(l, b)
        assert np.allclose(got, x, rtol=1e-10)


class TestPotrsAndSpdSolve:
    def test_batch_solve_matches_lapack(self):
        a = random_spd_batch(20, 8, seed=9)
        b = random_rhs_batch(20, 8, nrhs=2, seed=10)
        l = batch_cholesky(a, nb=4)
        got = batch_solve(l, b)
        ref = lapack_solve_batch(a, b)
        assert np.allclose(got, ref, atol=1e-3)

    def test_2d_rhs_round_trips_rank(self):
        a = random_spd_batch(6, 5, seed=11)
        b = random_rhs_batch(6, 5, seed=12)[:, :, 0]
        l = batch_cholesky(a, nb=5)
        assert batch_solve(l, b).shape == (6, 5)

    def test_batch_spd_solve_end_to_end(self):
        a = random_spd_batch(16, 10, seed=13)
        b = random_rhs_batch(16, 10, nrhs=1, seed=14)
        x = batch_spd_solve(a, b, nb=5, looking="left")
        assert relative_residual(a, x, b) < 1e-5

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 10), batch=st.integers(1, 40), nrhs=st.integers(1, 3))
    def test_property_residual_small(self, n, batch, nrhs):
        a = random_spd_batch(batch, n, seed=n + batch)
        b = random_rhs_batch(batch, n, nrhs=nrhs, seed=n * batch + 1)
        l = batch_cholesky(a, nb=min(4, n))
        x = batch_solve(l, b)
        assert relative_residual(a, x, b) < 1e-4
