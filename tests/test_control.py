"""Online policy controller: strategies, journal, bounds, live adaptation."""

import asyncio
import json

import numpy as np
import pytest

from repro.autotune.search import geometric_ladder, ladder_index
from repro.serve import (
    AIMDStrategy,
    ControlBounds,
    DecisionJournal,
    HillClimbStrategy,
    Knobs,
    PolicyController,
    ServePolicy,
    Snapshot,
    SolveBroker,
    compare_controlled,
    controller_from_env,
    make_broker,
    make_strategy,
    replay_journal,
    replay_trace,
    synthetic_trace,
    verify_journal,
)
from repro.serve.control.controller import (
    CONTROLLER_ENV,
    CONTROLLER_INTERVAL_ENV,
)
from repro.serve.control.journal import policy_roundtrip
from repro.serve.metrics import ServeMetrics, SnapshotDelta
from repro.serve.policy import (
    HOT_KNOBS,
    MAX_DELAY_BOUNDS_S,
    TARGET_BATCH_BOUNDS,
)
from repro.utils.spd import random_spd_batch


def window(
    dt=0.1,
    completed=0,
    submitted=None,
    shed=0,
    flushes=0,
    deadline_flushes=0,
    wait_total_ms=0.0,
    queue_depth=0,
    shed_by_shard=None,
):
    """A synthetic observation window with the fields strategies read."""
    counters = {
        "submitted": completed + shed if submitted is None else submitted,
        "completed": completed,
        "shed": shed,
        "flushes": flushes,
        "flushes_deadline": deadline_flushes,
    }
    hists = {}
    if flushes > 0:
        hists["coalesce_latency_ms"] = (completed or flushes, wait_total_ms)
    return SnapshotDelta(
        dt=dt,
        counters=counters,
        hists=hists,
        queue_depth=queue_depth,
        shed_by_shard=dict(shed_by_shard or {}),
    )


# ----------------------------------------------------------------------
# ServePolicy knob bounds + hot-knob update contract
# ----------------------------------------------------------------------


class TestPolicyKnobBounds:
    def test_bounds_accept_the_extremes(self):
        lo_tb, hi_tb = TARGET_BATCH_BOUNDS
        lo_d, hi_d = MAX_DELAY_BOUNDS_S
        ServePolicy(target_batch=lo_tb, max_delay_s=lo_d)
        ServePolicy(target_batch=hi_tb, max_delay_s=hi_d)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_batch": TARGET_BATCH_BOUNDS[1] + 1},
            {"max_delay_s": MAX_DELAY_BOUNDS_S[1] * 2},
            {"max_delay_s": MAX_DELAY_BOUNDS_S[0] / 2},
        ],
    )
    def test_out_of_bounds_knobs_rejected_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            ServePolicy(**kwargs)

    def test_update_accepts_hot_knob_changes(self):
        old = ServePolicy(target_batch=64, max_delay_s=0.004)
        new = ServePolicy(
            target_batch=128, max_delay_s=0.008, placement="hash"
        )
        assert old.validate_update(new) is new

    def test_update_rejects_frozen_knob_changes(self):
        old = ServePolicy(target_batch=64)
        new = ServePolicy(target_batch=64, max_queue_depth=16)
        with pytest.raises(ValueError, match="frozen"):
            old.validate_update(new)

    def test_update_error_names_the_offending_knobs(self):
        old = ServePolicy()
        new = ServePolicy(backend="eventsim", retry_failed_solo=False)
        with pytest.raises(ValueError) as err:
            old.validate_update(new)
        assert "backend" in str(err.value)
        assert "retry_failed_solo" in str(err.value)

    def test_update_rejects_non_policy(self):
        with pytest.raises(TypeError):
            ServePolicy().validate_update({"target_batch": 4})

    def test_update_rejects_out_of_bounds_values(self):
        # Bounds live in __post_init__, so a policy violating them cannot
        # even be constructed to pass to update_policy.
        with pytest.raises(ValueError):
            ServePolicy(target_batch=0)

    def test_hot_knobs_are_the_documented_three(self):
        assert set(HOT_KNOBS) == {"target_batch", "max_delay_s", "placement"}


# ----------------------------------------------------------------------
# Snapshot / SnapshotDelta
# ----------------------------------------------------------------------


class TestSnapshotDelta:
    def _metrics(self):
        m = ServeMetrics()
        for _ in range(10):
            m.record_submit(queue_depth=1)
        for _ in range(8):
            m.record_completion()
        m.record_flush(
            size=8, threshold=8, reason="full", gflops=1.0,
            wait_times_s=[0.001] * 8, service_s=0.002,
        )
        return m

    def test_windowed_rates(self):
        m = self._metrics()
        first = m.snapshot(t=1.0)
        for _ in range(4):
            m.record_submit(queue_depth=2)
            m.record_completion()
        second = m.snapshot(t=3.0, queue_depth=2)
        w = second.delta(first)
        assert w.dt == 2.0
        assert w.submitted_rate == pytest.approx(2.0)
        assert w.completed_rate == pytest.approx(2.0)
        assert w.queue_depth == 2
        assert w.queue_delta == 2

    def test_empty_window_reports_zero_rates(self):
        m = self._metrics()
        snap = m.snapshot(t=5.0)
        w = snap.delta(snap)
        assert w.dt == 0.0
        assert w.submitted_rate == 0.0
        assert w.wait_mean_ms == 0.0  # no samples landed in the window

    def test_inverted_clock_reports_zero_rates(self):
        m = self._metrics()
        late = m.snapshot(t=5.0)
        early = m.snapshot(t=4.0)
        assert early.delta(late).completed_rate == 0.0

    def test_counter_wrap_clamps_to_zero(self):
        m = self._metrics()
        first = m.snapshot(t=1.0)
        wrapped = Snapshot(
            t=2.0,
            counters={name: 0 for name in first.counters},
            hist_stats={name: (0, 0.0) for name in first.hist_stats},
        )
        w = wrapped.delta(first)
        assert all(v == 0 for v in w.counters.values())
        # A wrapped sample count invalidates the paired total too: the
        # mean must read 0, not a negative.
        assert w.wait_mean_ms == 0.0

    def test_delta_requires_a_snapshot(self):
        m = self._metrics()
        with pytest.raises(TypeError):
            m.snapshot().delta({"t": 0.0})

    def test_dict_round_trip_is_semantically_exact(self):
        w = window(
            dt=0.25, completed=12, shed=2, flushes=3,
            deadline_flushes=2, wait_total_ms=30.0, queue_depth=5,
            shed_by_shard={1: 2},
        )
        back = SnapshotDelta.from_dict(json.loads(json.dumps(w.to_dict())))
        assert back.dt == w.dt
        assert back.completed_rate == w.completed_rate
        assert back.shed_rate == w.shed_rate
        assert back.wait_mean_ms == w.wait_mean_ms
        assert back.deadline_frac == w.deadline_frac
        assert back.queue_depth == w.queue_depth
        assert back.shed_by_shard == w.shed_by_shard

    def test_snapshot_attributes_sheds_per_shard(self):
        m = ServeMetrics()
        first = m.snapshot(t=0.0)
        m.record_shed(shard=0)
        m.record_shed(shard=0)
        m.record_shed(shard=1)
        w = m.snapshot(t=1.0).delta(first)
        assert w.shed_by_shard == {0: 2, 1: 1}


# ----------------------------------------------------------------------
# Geometric ladder (autotune.search)
# ----------------------------------------------------------------------


class TestGeometricLadder:
    def test_contains_both_endpoints(self):
        rungs = geometric_ladder(0.25, 64.0)
        assert rungs[0] == 0.25
        assert rungs[-1] == 64.0
        assert list(rungs) == sorted(rungs)

    def test_ladder_index_snaps_to_nearest(self):
        rungs = geometric_ladder(1.0, 16.0, factor=2.0)
        assert rungs == (1.0, 2.0, 4.0, 8.0, 16.0)
        assert ladder_index(rungs, 3.9) == 2
        assert ladder_index(rungs, 100.0) == 4

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            geometric_ladder(0.0, 4.0)
        with pytest.raises(ValueError):
            geometric_ladder(4.0, 2.0)
        with pytest.raises(ValueError):
            geometric_ladder(1.0, 4.0, factor=1.0)


# ----------------------------------------------------------------------
# ControlBounds
# ----------------------------------------------------------------------


class TestControlBounds:
    def test_defaults_sit_inside_policy_bounds(self):
        b = ControlBounds()
        assert TARGET_BATCH_BOUNDS[0] <= b.target_batch[0]
        assert b.target_batch[1] <= TARGET_BATCH_BOUNDS[1]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_batch": (0, 64)},
            {"target_batch": (64, 8)},
            {"max_delay_ms": (0.5, MAX_DELAY_BOUNDS_S[1] * 1e3 * 2)},
            {"max_step_factor": 1.0},
        ],
    )
    def test_invalid_bounds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ControlBounds(**kwargs)

    def test_step_cap_limits_each_decision(self):
        b = ControlBounds(max_step_factor=2.0)
        current = Knobs(64, 4.0)
        wild = Knobs(4096, 64.0)
        clamped = b.clamp(wild, current)
        assert clamped.target_batch == 128
        assert clamped.max_delay_ms == pytest.approx(8.0)

    def test_absolute_bounds_beat_the_step_cap(self):
        b = ControlBounds(target_batch=(8, 128), max_delay_ms=(1.0, 8.0))
        current = Knobs(16, 8.0)
        clamped = b.clamp(Knobs(8, 16.0), current)
        assert clamped.max_delay_ms == 8.0
        low = b.clamp(Knobs(1, 0.1), Knobs(8, 1.0))
        assert low.target_batch == 8
        assert low.max_delay_ms == 1.0

    def test_clamp_preserves_placement(self):
        b = ControlBounds()
        assert b.clamp(Knobs(64, 4.0, "hash"), Knobs(64, 4.0, "size")).placement == "hash"

    def test_round_trips_through_dict(self):
        b = ControlBounds(target_batch=(16, 512), max_delay_ms=(0.5, 32.0))
        assert ControlBounds.from_dict(b.to_dict()) == b


# ----------------------------------------------------------------------
# AIMD strategy
# ----------------------------------------------------------------------


class TestAIMDStrategy:
    def test_backlog_grows_both_knobs(self):
        s = AIMDStrategy()
        knobs = Knobs(64, 2.0)
        proposed, reason = s.propose(
            window(flushes=4, completed=40, wait_total_ms=400.0), knobs
        )
        assert reason == "backlog"  # mean wait 10ms >> 2ms deadline
        assert proposed.target_batch > knobs.target_batch
        assert proposed.max_delay_ms > knobs.max_delay_ms

    def test_any_shed_triggers_growth(self):
        s = AIMDStrategy()
        proposed, reason = s.propose(
            window(flushes=2, completed=8, shed=1, wait_total_ms=8.0),
            Knobs(64, 2.0),
        )
        assert reason == "backlog"

    def test_deep_queue_triggers_growth(self):
        s = AIMDStrategy()
        proposed, reason = s.propose(
            window(queue_depth=64 * 5), Knobs(64, 2.0)
        )
        assert reason == "backlog"

    def test_idle_window_holds(self):
        s = AIMDStrategy()
        knobs = Knobs(64, 2.0)
        proposed, reason = s.propose(window(), knobs)
        assert (proposed, reason) == (knobs, "idle")

    def test_latency_headroom_shrinks_the_deadline(self):
        s = AIMDStrategy()
        knobs = Knobs(64, 4.0)
        # Deadline-dominated flushes whose waits sit well under the budget.
        proposed, reason = s.propose(
            window(
                flushes=4, deadline_flushes=4, completed=40,
                wait_total_ms=40.0,  # mean 1ms against a 4ms deadline
            ),
            knobs,
        )
        assert reason == "latency_headroom"
        assert proposed.max_delay_ms == pytest.approx(4.0 - s.shrink_ms)
        assert proposed.target_batch == knobs.target_batch

    def test_hysteresis_band_holds(self):
        s = AIMDStrategy()
        knobs = Knobs(64, 2.0)
        # Mean wait 2ms on a 2ms deadline: pressure 1.0 sits between
        # pressure_low and pressure_high.
        proposed, reason = s.propose(
            window(flushes=4, completed=10, wait_total_ms=20.0), knobs
        )
        assert (proposed, reason) == (knobs, "hold")

    def test_shed_skew_flips_size_to_hash(self):
        s = AIMDStrategy()
        knobs = Knobs(64, 2.0, placement="size")
        proposed, reason = s.propose(
            window(shed=5, shed_by_shard={0: 5, 1: 0}), knobs
        )
        assert reason == "placement_skew"
        assert proposed.placement == "hash"
        assert proposed.target_batch == knobs.target_batch

    def test_no_skew_flip_under_hash_placement(self):
        s = AIMDStrategy()
        proposed, reason = s.propose(
            window(shed=5, shed_by_shard={0: 5}), Knobs(64, 2.0, "hash")
        )
        assert reason != "placement_skew"

    def test_too_few_sheds_do_not_flip_placement(self):
        s = AIMDStrategy()
        proposed, reason = s.propose(
            window(shed=2, shed_by_shard={0: 2}), Knobs(64, 2.0, "size")
        )
        assert reason != "placement_skew"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AIMDStrategy(grow_factor=1.0)
        with pytest.raises(ValueError):
            AIMDStrategy(pressure_low=2.0, pressure_high=1.0)
        with pytest.raises(ValueError):
            AIMDStrategy(skew_frac=0.3)


# ----------------------------------------------------------------------
# Hill-climb strategy
# ----------------------------------------------------------------------


class TestHillClimbStrategy:
    def test_score_discounts_latency(self):
        s = HillClimbStrategy()
        fast = window(flushes=2, completed=20, wait_total_ms=20.0)
        slow = window(flushes=2, completed=20, wait_total_ms=2000.0)
        assert s.score(fast) > s.score(slow)

    def test_stationary_load_settles(self):
        s = HillClimbStrategy()
        knobs = Knobs(64, 2.0)
        w = window(flushes=4, completed=40, wait_total_ms=40.0)
        reasons = []
        for _ in range(12):
            knobs, reason = s.propose(w, knobs)
            reasons.append(reason)
        assert "settled" in reasons
        # Once settled on an unchanged load it stays settled.
        assert set(reasons[reasons.index("settled"):]) == {"settled"}

    def test_settled_resumes_when_the_load_shifts(self):
        s = HillClimbStrategy()
        knobs = Knobs(64, 2.0)
        calm = window(flushes=4, completed=40, wait_total_ms=40.0)
        for _ in range(12):
            knobs, reason = s.propose(calm, knobs)
        assert reason == "settled"
        surge = window(flushes=4, completed=400, wait_total_ms=40.0)
        knobs, reason = s.propose(surge, knobs)
        assert reason == "resume"

    def test_improvement_keeps_climbing_the_same_dimension(self):
        s = HillClimbStrategy()
        knobs = Knobs(64, 2.0)
        knobs, reason = s.propose(
            window(flushes=4, completed=40, wait_total_ms=40.0), knobs
        )
        assert reason == "probe"
        first_delay = knobs.max_delay_ms
        knobs, reason = s.propose(
            window(flushes=4, completed=80, wait_total_ms=40.0), knobs
        )
        assert reason == "improved"
        assert knobs.max_delay_ms > first_delay

    def test_regression_reverts_the_step(self):
        s = HillClimbStrategy()
        knobs = Knobs(64, 2.0)
        knobs, _ = s.propose(
            window(flushes=4, completed=40, wait_total_ms=40.0), knobs
        )
        probed_delay = knobs.max_delay_ms
        knobs, reason = s.propose(
            window(flushes=4, completed=4, wait_total_ms=40.0), knobs
        )
        assert reason == "reverted"
        assert knobs.max_delay_ms < probed_delay

    def test_two_instances_agree_on_the_same_windows(self):
        windows = [
            window(flushes=4, completed=40 + 10 * (i % 3), wait_total_ms=40.0)
            for i in range(20)
        ]
        seqs = []
        for _ in range(2):
            s = HillClimbStrategy()
            knobs = Knobs(64, 2.0)
            seq = []
            for w in windows:
                knobs, _ = s.propose(w, knobs)
                seq.append(knobs)
            seqs.append(seq)
        assert seqs[0] == seqs[1]

    def test_steps_stay_on_the_ladders(self):
        s = HillClimbStrategy()
        knobs = Knobs(64, 2.0)
        for i in range(20):
            knobs, _ = s.propose(
                window(flushes=4, completed=40 + i, wait_total_ms=40.0), knobs
            )
            assert knobs.target_batch in s._batch_ladder
            assert any(
                abs(knobs.max_delay_ms - rung) < 1e-12
                for rung in s._delay_ladder
            )

    def test_make_strategy_registry(self):
        assert make_strategy("aimd").name == "aimd"
        assert make_strategy("hill").name == "hill"
        with pytest.raises(ValueError):
            make_strategy("pid")


# ----------------------------------------------------------------------
# Decision journal
# ----------------------------------------------------------------------


class TestDecisionJournal:
    def _journal(self, strategy_name="aimd", n=8):
        strategy = make_strategy(strategy_name)
        bounds = ControlBounds()
        knobs = Knobs(64, 2.0)
        journal = DecisionJournal(
            strategy=strategy_name, initial=knobs, bounds=bounds,
            interval_s=0.05, meta={"trace": "unit"},
        )
        from repro.serve.control import Decision

        for i in range(n):
            w = window(
                flushes=4, completed=40, wait_total_ms=400.0 if i < 2 else 8.0
            )
            proposed, reason = strategy.propose(w, knobs)
            proposed = bounds.clamp(proposed, knobs)
            changed = proposed != knobs
            if changed:
                knobs = policy_roundtrip(proposed)
            journal.append(
                Decision(
                    seq=i + 1, t=0.05 * (i + 1), strategy=strategy_name,
                    reason=reason, knobs=knobs, window=w, changed=changed,
                )
            )
        return journal

    def test_replay_reproduces_the_recorded_sequence(self):
        journal = self._journal()
        assert journal.changes > 0
        assert verify_journal(journal)
        assert replay_journal(journal) == journal.knob_sequence()

    def test_round_trips_through_jsonl(self, tmp_path):
        journal = self._journal(strategy_name="hill")
        path = tmp_path / "decisions.jsonl"
        journal.save(str(path))
        loaded = DecisionJournal.load(str(path))
        assert loaded.strategy == "hill"
        assert loaded.initial == journal.initial
        assert loaded.meta == {"trace": "unit"}
        assert loaded.knob_sequence() == journal.knob_sequence()
        assert verify_journal(loaded)

    def test_tampered_journal_fails_verification(self):
        journal = self._journal()
        from dataclasses import replace as dc_replace

        d = journal.decisions[2]
        journal.decisions[2] = dc_replace(
            d, knobs=Knobs(d.knobs.target_batch + 7, d.knobs.max_delay_ms)
        )
        assert not verify_journal(journal)

    def test_header_is_self_describing(self):
        header = self._journal().header()
        assert header["format"] == "repro-control-journal"
        assert header["strategy"] == "aimd"
        assert "bounds" in header and "initial" in header

    def test_rejects_foreign_formats(self):
        with pytest.raises(ValueError, match="format"):
            DecisionJournal.from_lines([json.dumps({"format": "nope"})])
        with pytest.raises(ValueError, match="version"):
            DecisionJournal.from_lines(
                [json.dumps({"format": "repro-control-journal", "version": 99})]
            )
        with pytest.raises(ValueError, match="empty"):
            DecisionJournal.from_lines([])

    def test_status_is_gauge_shaped(self):
        status = self._journal().status()
        assert status["decisions"] == 8
        assert status["changes"] >= 1
        assert status["target_batch"] > 0
        assert status["max_delay_ms"] > 0

    def test_policy_roundtrip_is_a_fixed_point(self):
        knobs = Knobs(96, 2.8284271247461903)
        once = policy_roundtrip(knobs)
        assert policy_roundtrip(once) == once


# ----------------------------------------------------------------------
# The live controller
# ----------------------------------------------------------------------


def _spd(n=8, seed=0):
    return random_spd_batch(1, n, seed=seed)[0]


class TestPolicyController:
    def test_first_step_only_primes(self):
        async def scenario():
            policy = ServePolicy(
                target_batch=64, max_delay_s=0.002, request_timeout_s=None
            )
            async with SolveBroker(policy=policy) as broker:
                ctl = PolicyController(broker, strategy="aimd")
                assert ctl.step(now=0.0) is None
                assert ctl.decisions == 0

        asyncio.run(scenario())

    def test_backlog_grows_the_live_policy(self):
        async def scenario():
            policy = ServePolicy(
                target_batch=64, max_delay_s=0.002, request_timeout_s=None
            )
            async with SolveBroker(policy=policy) as broker:
                ctl = PolicyController(broker, strategy="aimd")
                ctl.step(now=0.0)
                # Fake a backlogged window: deep waits recorded between
                # the two snapshots.
                broker.metrics.record_flush(
                    size=64, threshold=64, reason="full", gflops=1.0,
                    wait_times_s=[0.02] * 64,
                )
                for _ in range(64):
                    broker.metrics.record_submit(queue_depth=1)
                    broker.metrics.record_completion()
                decision = ctl.step(now=0.1)
                assert decision is not None and decision.changed
                assert decision.reason == "backlog"
                assert broker.policy.target_batch > 64
                assert broker.policy.max_delay_s > 0.002
                # The journal recorded exactly what the policy now holds.
                final = ctl.journal.final_knobs()
                assert final.target_batch == broker.policy.target_batch
                assert final.max_delay_ms == pytest.approx(
                    broker.policy.max_delay_s * 1e3
                )
                assert verify_journal(ctl.journal)

        asyncio.run(scenario())

    def test_empty_window_is_skipped(self):
        async def scenario():
            async with SolveBroker(policy=ServePolicy()) as broker:
                ctl = PolicyController(broker, strategy="aimd")
                ctl.step(now=1.0)
                assert ctl.step(now=1.0) is None  # dt == 0

        asyncio.run(scenario())

    def test_periodic_task_journals_under_live_traffic(self):
        async def scenario():
            policy = ServePolicy(
                target_batch=8, max_delay_s=0.001, request_timeout_s=None
            )
            async with SolveBroker(policy=policy) as broker:
                async with PolicyController(
                    broker, strategy="aimd", interval_s=0.01
                ) as ctl:
                    mats = [_spd(seed=i) for i in range(24)]
                    await asyncio.gather(*(broker.factor(a) for a in mats))
                    await asyncio.sleep(0.05)
                return ctl

        ctl = asyncio.run(scenario())
        assert ctl.decisions >= 1
        assert verify_journal(ctl.journal)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            PolicyController(object(), interval_s=0.0)

    def test_controller_from_env(self, monkeypatch):
        async def scenario():
            async with SolveBroker(policy=ServePolicy()) as broker:
                monkeypatch.delenv(CONTROLLER_ENV, raising=False)
                assert controller_from_env(broker) is None
                monkeypatch.setenv(CONTROLLER_ENV, "off")
                assert controller_from_env(broker) is None
                monkeypatch.setenv(CONTROLLER_ENV, "hill")
                monkeypatch.setenv(CONTROLLER_INTERVAL_ENV, "50")
                ctl = controller_from_env(broker)
                assert ctl.strategy.name == "hill"
                assert ctl.interval_s == pytest.approx(0.05)
                monkeypatch.setenv(CONTROLLER_ENV, "pid")
                with pytest.raises(ValueError):
                    controller_from_env(broker)
                monkeypatch.setenv(CONTROLLER_ENV, "aimd")
                monkeypatch.setenv(CONTROLLER_INTERVAL_ENV, "-3")
                with pytest.raises(ValueError):
                    controller_from_env(broker)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# The update_policy seam
# ----------------------------------------------------------------------


class TestUpdatePolicySeam:
    def test_lowered_threshold_flushes_at_the_coalesce_boundary(self):
        async def scenario():
            policy = ServePolicy(
                target_batch=64,
                max_delay_s=30.0,  # deadline out of the picture
                request_timeout_s=None,
                snap_to_chunk=False,
            )
            async with SolveBroker(policy=policy) as broker:
                mats = [_spd(seed=i) for i in range(6)]
                tasks = [
                    asyncio.create_task(broker.factor(a)) for a in mats
                ]
                while broker.pending < 6:
                    await asyncio.sleep(0.001)
                # Nothing flushed: the bucket holds 6 of 64.
                assert broker.metrics.counters["flushes"] == 0
                old = broker.update_policy(
                    ServePolicy(
                        target_batch=4,
                        max_delay_s=30.0,
                        request_timeout_s=None,
                        snap_to_chunk=False,
                    )
                )
                assert old.target_batch == 64
                results = await asyncio.gather(*tasks)
                assert len(results) == 6
                assert broker.metrics.counters["flushes_full"] >= 1

        asyncio.run(scenario())

    def test_frozen_knob_rejected_live(self):
        async def scenario():
            async with SolveBroker(policy=ServePolicy()) as broker:
                with pytest.raises(ValueError, match="frozen"):
                    broker.update_policy(ServePolicy(max_queue_depth=7))
                with pytest.raises(TypeError):
                    broker.update_policy("not a policy")

        asyncio.run(scenario())

    def test_fabric_fans_out_and_swaps_placement(self):
        async def scenario():
            policy = ServePolicy(
                target_batch=8,
                max_delay_s=0.002,
                request_timeout_s=None,
                shards=2,
                placement="size",
            )
            async with make_broker(policy) as fabric:
                new = ServePolicy(
                    target_batch=16,
                    max_delay_s=0.004,
                    request_timeout_s=None,
                    shards=2,
                    placement="hash",
                )
                fabric.update_policy(new)
                assert fabric.router.placement == "hash"
                assert fabric.placement == "hash"
                # Shard brokers converge at their next loop iteration.
                for _ in range(200):
                    if all(
                        s.broker.policy.target_batch == 16
                        for s in fabric.shards.values()
                    ):
                        break
                    await asyncio.sleep(0.005)
                assert all(
                    s.broker.policy.target_batch == 16
                    for s in fabric.shards.values()
                )
                mats = [_spd(seed=i) for i in range(8)]
                results = await asyncio.gather(
                    *(fabric.factor(a) for a in mats)
                )
                assert len(results) == 8

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Replay integration + the controlled-vs-static gate
# ----------------------------------------------------------------------


def _run(label, controller=None, tp=1000.0, p99=5.0, ok=True):
    run = {
        "label": label,
        "ok": ok,
        "conservation_ok": True,
        "throughput_rps": tp,
        "coalesce_p99_ms": p99,
        "policy": {"backend": "inline", "shards": 1},
    }
    if controller:
        run["controller"] = {"strategy": controller, "deterministic": True}
    return run


class TestControlledGate:
    def test_passes_when_controlled_meets_best_static(self):
        report = {
            "runs": [
                _run("a", tp=900.0),
                _run("b", tp=1000.0),
                _run("b/ctl-aimd", controller="aimd", tp=990.0),
            ]
        }
        assert compare_controlled(report) == []

    def test_flags_throughput_shortfall(self):
        report = {
            "runs": [
                _run("b", tp=1000.0),
                _run("b/ctl-aimd", controller="aimd", tp=500.0),
            ]
        }
        findings = compare_controlled(report)
        assert any("throughput" in f for f in findings)

    def test_flags_p99_blowup(self):
        report = {
            "runs": [
                _run("b", tp=1000.0, p99=2.0),
                _run("b/ctl-aimd", controller="aimd", tp=1000.0, p99=20.0),
            ]
        }
        findings = compare_controlled(report)
        assert any("p99" in f for f in findings)

    def test_flags_non_deterministic_journal(self):
        report = {
            "runs": [
                _run("b", tp=1000.0),
                _run("b/ctl-aimd", controller="aimd", tp=1000.0),
            ]
        }
        report["runs"][1]["controller"]["deterministic"] = False
        findings = compare_controlled(report)
        assert any("deterministically" in f for f in findings)

    def test_flags_missing_siblings_and_empty_reports(self):
        lonely = {"runs": [_run("x/ctl-hill", controller="hill")]}
        assert any("sibling" in f for f in compare_controlled(lonely))
        assert compare_controlled({"runs": [_run("a")]}) == [
            "no controlled runs in report to gate"
        ]

    def test_controlled_replay_beats_static_on_synthetic_burst(self):
        from repro.serve.replay import (
            ControllerGate,
            policy_grid,
            run_replay_cell,
        )

        cells = policy_grid(
            backends=("inline",),
            target_batches=(16,),
            max_delays_ms=(2.0,),
            controllers=(None, "aimd"),
        )
        events = synthetic_trace(requests=120, seed=11, rate_hz=3000.0)
        runs = [run_replay_cell(events, cell) for cell in cells]
        report = {"runs": runs}
        assert all(r["ok"] for r in runs)
        ctl = runs[-1]["controller"]
        assert ctl["strategy"] == "aimd"
        assert ctl["deterministic"]
        # The dumped journal replays outside the run too.
        journal = DecisionJournal.from_lines(ctl["journal"])
        assert verify_journal(journal)
        # Loose tolerances: this asserts the gate plumbing end to end,
        # not a benchmark (CI replays the committed trace for that).
        findings = compare_controlled(
            report, ControllerGate(throughput_frac=0.6, p99_frac=4.0)
        )
        assert findings == []

    def test_replay_trace_controller_off_sentinel(self, monkeypatch):
        monkeypatch.setenv(CONTROLLER_ENV, "aimd")
        events = synthetic_trace(requests=20, seed=3, rate_hz=2000.0)
        summary = replay_trace(
            events,
            policy=ServePolicy(request_timeout_s=None),
            controller="off",
        )
        assert summary.controller is None
        assert summary.journal is None

    def test_replay_trace_records_the_journal(self):
        events = synthetic_trace(requests=40, seed=3, rate_hz=3000.0)
        summary = replay_trace(
            events,
            policy=ServePolicy(
                target_batch=16, max_delay_s=0.002, request_timeout_s=None
            ),
            controller="aimd",
            controller_interval_s=0.005,
        )
        assert summary.controller == "aimd"
        assert summary.journal is not None
        assert verify_journal(summary.journal)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------


class TestControllerPrometheus:
    def test_exposition_concatenates_with_serve_metrics(self):
        from repro.obs import (
            parse_prometheus_text,
            render_controller_prometheus,
            render_prometheus,
        )

        m = ServeMetrics()
        m.record_submit(queue_depth=0)
        m.record_completion()
        status = {
            "strategy": "aimd", "decisions": 4, "changes": 1,
            "target_batch": 96, "max_delay_ms": 3.0, "score": 0.5,
        }
        page = render_prometheus(m) + render_controller_prometheus(status)
        parsed = parse_prometheus_text(page)
        control = {k: v for k, v in parsed.items() if k.startswith("repro_control")}
        assert control["repro_control_target_batch"] == [
            ({"strategy": "aimd"}, 96.0)
        ]
        assert "repro_control_score" in control

    def test_missing_score_is_elided(self):
        from repro.obs import render_controller_prometheus

        out = render_controller_prometheus(
            {"strategy": "hill", "decisions": 1, "changes": 0,
             "target_batch": 64, "max_delay_ms": 2.0, "score": None}
        )
        assert "repro_control_score" not in out
        assert "repro_control_decisions_total" in out

    def test_bad_prefix_rejected(self):
        from repro.obs import render_controller_prometheus

        with pytest.raises(ValueError):
            render_controller_prometheus({"decisions": 1}, prefix="9bad")


# ----------------------------------------------------------------------
# Property-based invariants (hypothesis)
# ----------------------------------------------------------------------

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

knob_st = st.builds(
    Knobs,
    target_batch=st.integers(min_value=8, max_value=4096),
    max_delay_ms=st.floats(
        min_value=0.25, max_value=64.0, allow_nan=False, allow_infinity=False
    ),
    placement=st.sampled_from([None, "size", "hash"]),
)

window_st = st.builds(
    window,
    dt=st.floats(min_value=0.01, max_value=1.0),
    completed=st.integers(min_value=0, max_value=500),
    shed=st.integers(min_value=0, max_value=20),
    flushes=st.integers(min_value=0, max_value=50),
    deadline_flushes=st.just(0),
    wait_total_ms=st.floats(min_value=0.0, max_value=5000.0),
    queue_depth=st.integers(min_value=0, max_value=2000),
)


class TestControlProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        knobs=knob_st,
        w=window_st,
        strategy_name=st.sampled_from(["aimd", "hill"]),
    )
    def test_stationary_load_converges_within_bounds(
        self, knobs, w, strategy_name
    ):
        """Feeding the same window forever, the knob sequence settles:
        it never violates ControlBounds, and after the convergence
        horizon it stops moving (no oscillation beyond the hysteresis
        machinery's hold state)."""
        bounds = ControlBounds()
        strategy = make_strategy(strategy_name, bounds=bounds)
        current = bounds.clamp(knobs, knobs)
        sequence = [current]
        for _ in range(40):
            proposed, _reason = strategy.propose(w, current)
            proposed = bounds.clamp(proposed, current)
            if proposed != current:
                current = policy_roundtrip(proposed)
            sequence.append(current)
            assert bounds.target_batch[0] <= current.target_batch
            assert current.target_batch <= bounds.target_batch[1]
            assert bounds.max_delay_ms[0] <= current.max_delay_ms
            assert current.max_delay_ms <= bounds.max_delay_ms[1]
        tail = sequence[-5:]
        assert all(k == tail[0] for k in tail), (
            f"knobs still oscillating under stationary load: {tail}"
        )

    @settings(max_examples=30, deadline=None)
    @given(
        knobs=knob_st,
        windows=st.lists(window_st, min_size=1, max_size=15),
        strategy_name=st.sampled_from(["aimd", "hill"]),
    )
    def test_any_journal_replays_deterministically(
        self, knobs, windows, strategy_name
    ):
        """Whatever windows the service produced, the recorded journal
        must replay to the identical knob sequence."""
        from repro.serve.control import Decision

        bounds = ControlBounds()
        strategy = make_strategy(strategy_name, bounds=bounds)
        current = bounds.clamp(knobs, knobs)
        journal = DecisionJournal(
            strategy=strategy_name, initial=current, bounds=bounds
        )
        for i, w in enumerate(windows):
            proposed, reason = strategy.propose(w, current)
            proposed = bounds.clamp(proposed, current)
            changed = proposed != current
            if changed:
                current = policy_roundtrip(proposed)
            journal.append(
                Decision(
                    seq=i + 1, t=float(i), strategy=strategy_name,
                    reason=reason, knobs=current, window=w, changed=changed,
                )
            )
        # Through JSONL and back, like the replay-check artifact path.
        reloaded = DecisionJournal.from_lines(journal.to_lines())
        assert verify_journal(reloaded)
