"""Whole-kernel generation (repro.codegen.kernel)."""

import itertools

import numpy as np
import pytest

from repro.codegen.compile import clear_kernel_cache, compile_kernel, compiled_kernel
from repro.codegen.kernel import KernelBuilder, generate_kernel_source
from repro.core.config import KernelConfig


class TestSourceStructure:
    def test_full_unroll_has_no_loops(self):
        cfg = KernelConfig(n=8, nb=4, unroll="full", looking="top")
        src = generate_kernel_source(cfg).source
        assert "for " not in src
        assert "dA[" in src

    def test_partial_unroll_has_runtime_loops(self):
        cfg = KernelConfig(n=16, nb=4, unroll="partial", looking="top")
        src = generate_kernel_source(cfg).source
        assert "for kk in range(" in src
        assert "for nn in range(" in src

    def test_partial_is_much_smaller_than_full(self):
        full = generate_kernel_source(KernelConfig(n=24, nb=4, unroll="full"))
        part = generate_kernel_source(KernelConfig(n=24, nb=4, unroll="partial"))
        assert part.static_statements < full.static_statements / 4

    def test_corner_block_emitted_when_not_divisible(self):
        cfg = KernelConfig(n=10, nb=4, unroll="partial", looking="top")
        src = generate_kernel_source(cfg).source
        # the corner potrf operates on the 2x2 trailing tile at base 88
        assert "dA[88]" in src

    def test_single_tile_case(self):
        cfg = KernelConfig(n=4, nb=4, unroll="full", looking="left")
        src = generate_kernel_source(cfg).source
        assert "_sqrt(" in src

    def test_source_compiles(self):
        for looking, unroll in itertools.product(
            ("right", "left", "top"), ("partial", "full")
        ):
            cfg = KernelConfig(n=7, nb=3, looking=looking, unroll=unroll)
            gk = generate_kernel_source(cfg)
            compile(gk.source, "<test>", "exec")


class TestTraceVsCode:
    @pytest.mark.parametrize("looking", ["right", "left", "top"])
    def test_trace_identical_for_both_unrolls(self, looking):
        """Unrolling changes code, not the dynamic op sequence."""
        a = KernelBuilder(KernelConfig(n=12, nb=4, looking=looking, unroll="full"))
        b = KernelBuilder(KernelConfig(n=12, nb=4, looking=looking, unroll="partial"))
        assert a.build_trace() == b.build_trace()

    def test_full_unroll_statements_track_trace_volume(self):
        cfg = KernelConfig(n=12, nb=3, unroll="full", looking="top")
        builder = KernelBuilder(cfg)
        ops = builder.build_trace()
        mem_elems = sum(op.elems for op in ops if op.is_memory)
        compute = sum(op.ops.instructions for op in ops if op.ops is not None)
        gk = generate_kernel_source(cfg)
        # one statement per element moved + per scalar op (+ a few _inv)
        assert abs(gk.static_statements - (mem_elems + compute)) <= compute


class TestCompileCache:
    def test_cache_shares_across_chunk_variants(self):
        clear_kernel_cache()
        k1 = compiled_kernel(KernelConfig(n=6, nb=3, chunked=True, chunk_size=32))
        k2 = compiled_kernel(KernelConfig(n=6, nb=3, chunked=True, chunk_size=256))
        k3 = compiled_kernel(KernelConfig(n=6, nb=3, chunked=False))
        assert k1 is k2 is k3

    def test_cache_distinguishes_looking(self):
        clear_kernel_cache()
        k1 = compiled_kernel(KernelConfig(n=6, nb=3, looking="left"))
        k2 = compiled_kernel(KernelConfig(n=6, nb=3, looking="top"))
        assert k1 is not k2

    def test_compiled_kernel_carries_metadata(self):
        clear_kernel_cache()
        cfg = KernelConfig(n=6, nb=3)
        k = compiled_kernel(cfg)
        assert k.generated.config.cache_key() == cfg.cache_key()


class TestKernelExecution:
    def test_kernel_runs_on_lane_view(self):
        """Direct execution on an (n*n, lanes) view factorizes each lane."""
        from repro.utils.spd import random_spd_batch

        n, lanes = 6, 32
        cfg = KernelConfig(n=n, nb=3, unroll="full", looking="right")
        a = random_spd_batch(lanes, n, seed=9)
        # interleave by hand: dA[e, lane] = a[lane, i, j], e = j*n + i
        dA = np.ascontiguousarray(a.transpose(2, 1, 0).reshape(n * n, lanes))
        kernel = compile_kernel(generate_kernel_source(cfg))
        kernel(dA)
        out = dA.reshape(n, n, lanes).transpose(2, 1, 0)
        ref = np.linalg.cholesky(a.astype(np.float64))
        assert np.allclose(np.tril(out), ref, atol=5e-3)
