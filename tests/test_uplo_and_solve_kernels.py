"""Extensions: upper-triangular mode and generated solve kernels."""

import itertools

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lapack import lapack_solve_batch
from repro.codegen.solvekernel import generate_solve_source, solve_kernel_ops
from repro.core.config import KernelConfig
from repro.core.factorize import batch_cholesky
from repro.core.solve import batch_solve
from repro.core.solve_kernels import (
    batch_solve_kernel,
    clear_solve_kernel_cache,
    compiled_solve_kernel,
)
from repro.layouts.vectors import pack_vectors, unpack_vectors
from repro.utils.spd import random_rhs_batch, random_spd_batch


class TestUpperMode:
    @pytest.mark.parametrize("looking", ["right", "left", "top"])
    @pytest.mark.parametrize("unroll", ["partial", "full"])
    def test_matches_scipy_upper(self, looking, unroll):
        n, nb = 9, 4  # corner included
        a = random_spd_batch(30, n, seed=3)
        cfg = KernelConfig(n=n, nb=nb, looking=looking, unroll=unroll, uplo="upper")
        u = batch_cholesky(a, cfg)
        ref = np.stack(
            [sla.cholesky(a[i].astype(np.float64), lower=False) for i in range(30)]
        )
        assert np.allclose(np.triu(u.astype(np.float64)), ref, atol=2e-3)

    def test_strict_lower_untouched(self):
        a = random_spd_batch(16, 6, seed=4)
        u = batch_cholesky(a, KernelConfig(n=6, nb=3, uplo="upper"))
        assert np.array_equal(np.tril(u, -1), np.tril(a, -1))

    def test_upper_equals_lower_transposed(self):
        a = random_spd_batch(16, 8, seed=5)
        l = batch_cholesky(a, KernelConfig(n=8, nb=4, uplo="lower"))
        u = batch_cholesky(a, KernelConfig(n=8, nb=4, uplo="upper"))
        assert np.allclose(np.triu(u), np.tril(l).transpose(0, 2, 1), atol=1e-6)

    def test_solve_with_upper_factors(self):
        a = random_spd_batch(20, 7, seed=6)
        b = random_rhs_batch(20, 7, nrhs=2, seed=7)
        u = batch_cholesky(a, KernelConfig(n=7, nb=4, uplo="upper"))
        x = batch_solve(np.triu(u), b, uplo="upper")
        ref = lapack_solve_batch(a, b)
        assert np.allclose(x, ref, atol=1e-3)

    def test_solve_rejects_bad_uplo(self):
        with pytest.raises(ValueError):
            batch_solve(np.eye(3)[None], np.ones((1, 3)), uplo="diagonal")

    def test_uplo_in_cache_key_and_describe(self):
        lower = KernelConfig(n=8, nb=4)
        upper = lower.with_(uplo="upper")
        assert lower.cache_key() != upper.cache_key()
        assert "upper" in upper.describe()


class TestVectorLayouts:
    @pytest.mark.parametrize("chunk", [None, 32, 64])
    def test_round_trip(self, chunk):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((45, 6, 3)).astype(np.float32)
        buf = pack_vectors(dense, chunk)
        out = unpack_vectors(buf, 45, 6, 3, chunk)
        assert np.array_equal(out, dense)

    def test_wrong_buffer_size(self):
        with pytest.raises(ValueError):
            unpack_vectors(np.zeros(10, np.float32), 4, 3, 1, None)

    @settings(max_examples=15, deadline=None)
    @given(batch=st.integers(1, 80), n=st.integers(1, 9), nrhs=st.integers(1, 3))
    def test_property_round_trip(self, batch, n, nrhs):
        rng = np.random.default_rng(batch * 7 + n)
        dense = rng.standard_normal((batch, n, nrhs)).astype(np.float32)
        for chunk in (None, 32):
            out = unpack_vectors(pack_vectors(dense, chunk), batch, n, nrhs, chunk)
            assert np.array_equal(out, dense)


class TestGeneratedSolveKernels:
    def test_source_structure(self):
        gk = generate_solve_source(4, 2)
        assert "def _solve_kernel(dA, dB, _np):" in gk.source
        assert gk.static_statements > 0
        compile(gk.source, "<t>", "exec")

    def test_op_mix(self):
        ops = solve_kernel_ops(6, 2)
        assert ops.div == 24  # 2 sweeps * 6 rows * 2 rhs
        assert ops.fma == 6 * 5 * 2

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            generate_solve_source(0)
        with pytest.raises(ValueError):
            generate_solve_source(4, 0)

    @pytest.mark.parametrize(
        "n,nrhs,chunked", itertools.product([1, 4, 9, 16], [1, 2], [True, False])
    )
    def test_matches_lapack(self, n, nrhs, chunked):
        batch = 70  # padding exercised for every grouping
        a = random_spd_batch(batch, n, seed=n * 10 + nrhs)
        b = random_rhs_batch(batch, n, nrhs=nrhs, seed=n)
        cfg = KernelConfig(n=n, chunked=chunked, chunk_size=32)
        l = batch_cholesky(a, cfg)
        x = batch_solve_kernel(l, b, cfg)
        ref = lapack_solve_batch(a, b)
        assert np.allclose(x, ref, atol=2e-3)

    def test_2d_rhs(self):
        a = random_spd_batch(10, 5, seed=1)
        b = random_rhs_batch(10, 5, seed=2)[:, :, 0]
        l = batch_cholesky(a, KernelConfig(n=5))
        x = batch_solve_kernel(l, b)
        assert x.shape == (10, 5)

    def test_kernel_cache(self):
        clear_solve_kernel_cache()
        k1 = compiled_solve_kernel(5, 1)
        k2 = compiled_solve_kernel(5, 1)
        k3 = compiled_solve_kernel(5, 2)
        assert k1 is k2
        assert k1 is not k3

    def test_shape_mismatch(self):
        l = np.eye(4, dtype=np.float32)[None]
        with pytest.raises(ValueError):
            batch_solve_kernel(l, np.ones((2, 4), np.float32))

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 12), batch=st.integers(1, 50))
    def test_property_residual(self, n, batch):
        a = random_spd_batch(batch, n, seed=n + batch)
        b = random_rhs_batch(batch, n, seed=n * 3)[:, :, 0]
        l = batch_cholesky(a, KernelConfig(n=n, nb=min(4, n)))
        x = batch_solve_kernel(l, b)
        r = np.einsum("bij,bj->bi", a.astype(np.float64), x.astype(np.float64)) - b
        assert np.abs(r).max() < 1e-3 * n + 1e-4


class TestSolveModel:
    def test_estimate_positive_and_scales(self):
        from repro.gpusim.model import estimate_solve_performance

        s1, g1 = estimate_solve_performance(8, 1, batch=1024)
        s2, g2 = estimate_solve_performance(8, 1, batch=65536)
        assert s1 > 0 and g1 > 0
        assert g2 > g1  # overhead amortised

    def test_invalid_batch(self):
        from repro.gpusim.model import estimate_solve_performance

        with pytest.raises(ValueError):
            estimate_solve_performance(8, batch=0)
