"""Autotuning framework (repro.autotune)."""

import numpy as np
import pytest

from repro.autotune.analysis import forest_fit_quality, parameter_importance
from repro.autotune.dataset import FEATURE_NAMES, SweepDataset
from repro.autotune.runner import SweepRecord, estimated_statements, evaluate_config
from repro.autotune.search import coordinate_descent, exhaustive_best, random_search
from repro.autotune.space import ParameterSpace, default_space, quick_space
from repro.core.config import KernelConfig


class TestSpace:
    def test_enumeration_is_unique(self):
        space = quick_space(ns=(4, 8))
        configs = list(space.configs())
        assert len(configs) == len(set(configs))

    def test_nb_deduplication(self):
        """nb > n collapses to nb = n and is emitted once."""
        space = ParameterSpace(ns=(4,), nbs=(2, 4, 8, 9), chunkings=(32,),
                               cache_prefs=("l1",))
        nbs = {c.effective_nb for c in space.configs()}
        assert nbs == {2, 4}

    def test_size_matches_enumeration(self):
        space = quick_space(ns=(4, 8, 16))
        assert space.size() == len(list(space.configs()))

    def test_default_space_scale(self):
        """The paper-scale space lands in the >10k-configuration regime."""
        size = default_space().size()
        assert 15_000 < size < 45_000

    def test_with_ns(self):
        space = quick_space(ns=(4, 8)).with_ns((16,))
        assert all(c.n == 16 for c in space.configs())

    def test_invalid_space(self):
        with pytest.raises(ValueError):
            ParameterSpace(ns=())
        with pytest.raises(ValueError):
            ParameterSpace(ns=(0,))


class TestRunner:
    def test_successful_evaluation(self):
        rec = evaluate_config(KernelConfig(n=8, nb=4), batch=4096)
        assert rec.ok
        assert rec.gflops > 0
        assert rec.bound in ("memory", "compute")

    def test_record_config_round_trip(self):
        cfg = KernelConfig(n=8, nb=4, looking="left", chunked=True, chunk_size=64,
                           unroll="full", fast_math=True, cache_pref="shared")
        rec = evaluate_config(cfg, batch=1024)
        assert rec.config() == cfg

    def test_monster_kernel_fails_cleanly(self):
        cfg = KernelConfig(n=64, nb=1, unroll="full")
        rec = evaluate_config(cfg)
        assert not rec.ok
        assert "compilation aborted" in rec.error

    def test_validation_path(self):
        rec = evaluate_config(KernelConfig(n=6, nb=3), batch=512, validate=True)
        assert rec.ok

    def test_estimated_statements_upper_bounds_reality(self):
        from repro.core.trace import build_trace

        for n, nb in [(16, 4), (24, 2), (32, 8)]:
            cfg = KernelConfig(n=n, nb=nb, unroll="full")
            est = estimated_statements(cfg)
            actual = build_trace(cfg).static_statements
            assert est >= actual * 0.8  # near-bound, used only as a guard


class TestDataset:
    def test_best_per_n(self, tiny_sweep):
        best = tiny_sweep.best_per_n()
        assert set(best) == {4, 8, 16, 24}
        for n, rec in best.items():
            assert rec.ok
            assert all(
                rec.gflops >= r.gflops
                for r in tiny_sweep.successful()
                if r.n == n
            )

    def test_predicate_filtering(self, tiny_sweep):
        best_chunked = tiny_sweep.best_per_n(lambda r: r.chunked)
        assert all(rec.chunked for rec in best_chunked.values())

    def test_csv_round_trip(self, tiny_sweep, tmp_path):
        path = tmp_path / "sweep.csv"
        tiny_sweep.save_csv(path)
        loaded = SweepDataset.load_csv(path)
        assert len(loaded) == len(tiny_sweep)
        assert loaded[0] == tiny_sweep[0]
        assert loaded[-1] == tiny_sweep[-1]

    def test_json_round_trip(self, tiny_sweep, tmp_path):
        path = tmp_path / "sweep.json"
        tiny_sweep.save_json(path)
        loaded = SweepDataset.load_json(path)
        assert list(loaded) == list(tiny_sweep)

    def test_feature_matrix_shape(self, tiny_sweep):
        x, y = tiny_sweep.feature_matrix()
        assert x.shape == (len(tiny_sweep.successful()), len(FEATURE_NAMES))
        assert y.shape == (x.shape[0],)
        assert np.all(y > 0)

    def test_feature_matrix_requires_successes(self):
        ds = SweepDataset([
            SweepRecord(n=4, nb=2, looking="top", chunked=True, chunk_size=32,
                        unroll="partial", fast_math=False, cache_pref="l1",
                        batch=16, ok=False, error="x")
        ])
        with pytest.raises(ValueError):
            ds.feature_matrix()

    def test_sizes(self, tiny_sweep):
        assert tiny_sweep.sizes() == [4, 8, 16, 24]


class TestAnalysis:
    def test_importance_covers_all_features(self, tiny_sweep):
        imp = parameter_importance(tiny_sweep, n_estimators=30)
        assert set(imp) == set(FEATURE_NAMES)

    def test_cache_pref_is_noise(self, tiny_sweep):
        """The model gives the cache knob no effect, so its importance must
        be indistinguishable from noise — Table I's -18.6 story."""
        imp = parameter_importance(tiny_sweep, n_estimators=30)
        signal = max(abs(v) for k, v in imp.items())
        assert abs(imp["cache_pref"]) < signal / 3

    def test_forest_fit_quality(self, tiny_sweep):
        q = forest_fit_quality(tiny_sweep, n_estimators=30)
        assert q.oob_r > 0.8
        assert q.n_samples == len(tiny_sweep.successful())
        assert q.observed.shape == q.predicted_oob.shape


class TestSearch:
    def test_random_search_finds_good_configs(self, tiny_sweep):
        space = ParameterSpace(ns=(8,), nbs=(1, 2, 4, 8), chunkings=(None, 32),
                               cache_prefs=("l1",))
        full = exhaustive_best(space, batch=4096)
        sampled = random_search(space, budget=20, seed=0, batch=4096)
        assert sampled.evaluations == 20
        assert sampled.best.gflops <= full.best.gflops * 1.0001
        assert sampled.best.gflops > 0.5 * full.best.gflops

    def test_history_is_monotone(self):
        space = ParameterSpace(ns=(8,), nbs=(2, 4), chunkings=(None, 32),
                               cache_prefs=("l1",))
        result = random_search(space, budget=10, seed=1, batch=4096)
        assert list(result.history) == sorted(result.history)

    def test_coordinate_descent_improves_on_start(self):
        space = ParameterSpace(ns=(16,), nbs=(1, 2, 4, 8), chunkings=(None, 32, 512),
                               cache_prefs=("l1",))
        start = KernelConfig(n=16, nb=1, chunked=True, chunk_size=512,
                             looking="right", unroll="partial")
        result = coordinate_descent(space, start, batch=4096)
        baseline = evaluate_config(start, batch=4096)
        assert result.best.gflops >= baseline.gflops

    def test_coordinate_descent_validates_start(self):
        space = ParameterSpace(ns=(16,), cache_prefs=("l1",))
        with pytest.raises(ValueError):
            coordinate_descent(space, KernelConfig(n=8), batch=1024)


class TestSweepProgress:
    def _space(self):
        return ParameterSpace(ns=(4,), nbs=(1, 2, 4), chunkings=(None, 32),
                              cache_prefs=("l1",))

    def test_progress_total_is_space_size(self):
        from repro.autotune.sweep import run_sweep

        space = self._space()
        calls = []
        run_sweep(space, batch=1024, progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (space.size(), space.size())

    def test_limited_sweep_reports_reachable_total(self):
        """With limit set, progress must count toward limit, not the full space."""
        from repro.autotune.sweep import run_sweep

        space = self._space()
        limit = 3
        assert limit < space.size()
        calls = []
        run_sweep(space, batch=1024, limit=limit,
                  progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (limit, limit)
        assert all(total == limit for _, total in calls)

    def test_limit_larger_than_space_clamps_to_space(self):
        from repro.autotune.sweep import run_sweep

        space = self._space()
        calls = []
        dataset = run_sweep(space, batch=1024, limit=space.size() + 100,
                            progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (space.size(), space.size())
        assert len(dataset.records) == space.size()
