"""Terminal plotting (repro.utils.ascii_plot)."""

import pytest

from repro.utils.ascii_plot import line_plot


class TestLinePlot:
    def test_basic_render(self):
        text = line_plot({"a": {0: 0.0, 10: 100.0}}, width=20, height=6, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "o a" in lines[-1]
        assert "100" in text and "0" in text

    def test_marker_per_series(self):
        text = line_plot({"s1": {0: 1.0}, "s2": {1: 2.0}}, width=20, height=6)
        assert "o s1" in text and "x s2" in text

    def test_extremes_placed_on_borders(self):
        text = line_plot({"a": {0: 0.0, 9: 9.0}}, width=20, height=5)
        rows = [l for l in text.splitlines() if "|" in l]
        assert rows[0].rstrip().endswith("o")  # max at top-right
        assert "o" in rows[-1]  # min at bottom-left

    def test_flat_series(self):
        # constant series must not divide by zero
        text = line_plot({"a": {0: 5.0, 1: 5.0}}, width=20, height=5)
        assert "o" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": {0: 1.0}}, width=4, height=2)
