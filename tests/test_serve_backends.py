"""Executor backends (repro.serve.backends).

Covers the backend seam itself (selection, the four implementations) and
the broker-level robustness the process pool demands: worker death
converted to per-request errors, retry on a fresh worker, new submissions
accepted while a flush is in flight, and shutdown draining in-flight
flushes.
"""

import asyncio
import concurrent.futures
import os
import pickle
import signal
import threading

import numpy as np
import pytest
import scipy.linalg

from repro.core.config import KernelConfig
from repro.serve import (
    BACKEND_ENV,
    BACKEND_NAMES,
    BackendError,
    BatchExecutor,
    EventSimBackend,
    ExecutorBackend,
    InlineBackend,
    ProcessPoolBackend,
    ServePolicy,
    ShadowLapackBackend,
    SolveBroker,
    backend_from_policy,
    make_backend,
)
from repro.serve.batcher import PendingRequest
from repro.utils.spd import random_spd_batch


def _spd(n: int, seed: int = 0) -> np.ndarray:
    return random_spd_batch(1, n, seed=seed)[0]


def _spd_batch(batch: int, n: int, seed: int = 0) -> np.ndarray:
    return random_spd_batch(batch, n, seed=seed)


def _non_spd(n: int) -> np.ndarray:
    a = _spd(n, seed=99)
    a[n // 2, n // 2] = -100.0
    return a


def _request(seq, a, kind="factor", b=None):
    return PendingRequest(seq=seq, kind=kind, a=a, b=b, future=None, enqueued_at=0.0)


def _check_factors(a: np.ndarray, factors: np.ndarray) -> None:
    for i in range(len(a)):
        truth = scipy.linalg.cholesky(a[i].astype(np.float64), lower=True)
        assert np.allclose(np.tril(factors[i]), truth, atol=1e-2)


class _CorruptingBackend(ExecutorBackend):
    """Inline factors with one silently wrong (but finite, SPD-looking) lane."""

    name = "corrupt"

    def __init__(self):
        self.inner = InlineBackend()

    def factorize(self, a, config):
        run = self.inner.factorize(a, config)
        finite = np.isfinite(run.factors).all(axis=(1, 2))
        lane = int(np.argmax(finite))
        run.factors[lane, 0, 0] += 1.0
        return run


class _GatedBackend(ExecutorBackend):
    """Inline backend whose first flush blocks until released by the test."""

    name = "gated"

    def __init__(self):
        self.inner = InlineBackend()
        self.started = threading.Event()
        self.release = threading.Event()
        self._gated = True

    def factorize(self, a, config):
        if self._gated:
            self._gated = False
            self.started.set()
            assert self.release.wait(10.0), "test never released the gated flush"
        return self.inner.factorize(a, config)


class _FailingBackend(ExecutorBackend):
    """Raises BackendError for one matrix size, computes inline otherwise."""

    name = "failing"

    def __init__(self, fail_n: int):
        self.inner = InlineBackend()
        self.fail_n = fail_n

    def factorize(self, a, config):
        if config.n == self.fail_n:
            raise BackendError(f"synthetic worker loss for n={config.n}")
        return self.inner.factorize(a, config)


# ----------------------------------------------------------------------
# Selection: make_backend / policy / environment
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_every_registered_name_builds(self):
        from repro.serve.backends import ArenaProcessBackend

        types = {
            "inline": InlineBackend,
            "process": ProcessPoolBackend,
            "eventsim": EventSimBackend,
            "shadow": ShadowLapackBackend,
            "arena-process": ArenaProcessBackend,
        }
        assert set(types) == set(BACKEND_NAMES)
        for name, cls in types.items():
            backend = make_backend(name)
            assert isinstance(backend, cls)
            assert backend.name == name
            backend.close()

    def test_instance_passes_through(self):
        backend = InlineBackend()
        assert make_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("quantum")

    def test_env_variable_supplies_default(self, monkeypatch):
        from repro.serve.arena import ARENA_ENV

        monkeypatch.setenv(BACKEND_ENV, "eventsim")
        assert isinstance(make_backend(None), EventSimBackend)
        monkeypatch.delenv(BACKEND_ENV)
        # The arena env supplies its own default; clear it so this
        # asserts the bare fallback even inside the CI arena cells.
        monkeypatch.delenv(ARENA_ENV, raising=False)
        assert isinstance(make_backend(None), InlineBackend)

    def test_explicit_name_beats_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "eventsim")
        assert isinstance(make_backend("inline"), InlineBackend)

    def test_backend_from_policy_forwards_knobs(self):
        shadow = backend_from_policy(
            ServePolicy(backend="shadow", shadow_fraction=0.25, shadow_tolerance=1e-4)
        )
        assert shadow.fraction == 0.25
        assert shadow.tolerance == 1e-4
        process = backend_from_policy(
            ServePolicy(backend="process", process_workers=3, flush_timeout_s=7.0)
        )
        assert process.workers == 3
        assert process.flush_timeout_s == 7.0
        process.close()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"process_workers": 0},
            {"flush_timeout_s": 0.0},
            {"shadow_fraction": 1.5},
            {"shadow_fraction": -0.1},
            {"shadow_tolerance": 0.0},
        ],
    )
    def test_policy_rejects_invalid_backend_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ServePolicy(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [{"workers": 0}, {"flush_timeout_s": -1.0}],
    )
    def test_process_backend_rejects_invalid_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ProcessPoolBackend(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [{"fraction": 2.0}, {"tolerance": 0.0}],
    )
    def test_shadow_backend_rejects_invalid_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ShadowLapackBackend(**kwargs)


# ----------------------------------------------------------------------
# Inline + eventsim
# ----------------------------------------------------------------------


class TestInlineBackend:
    def test_factorizes_and_measures_wall_time(self):
        a = _spd_batch(4, 8, seed=1)
        run = InlineBackend().factorize(a, KernelConfig(n=8))
        _check_factors(a, run.factors)
        assert run.seconds is not None and run.seconds >= 0.0
        assert run.gflops is None  # defers to the analytic model


class TestEventSimBackend:
    def test_factors_match_inline_but_time_is_modeled(self):
        a = _spd_batch(8, 8, seed=2)
        config = KernelConfig(n=8)
        backend = EventSimBackend()
        run = backend.factorize(a, config)
        _check_factors(a, run.factors)

        from repro.gpusim.eventsim import simulate_launch

        sim = simulate_launch(config, batch=len(a))
        assert run.seconds == pytest.approx(sim.seconds)
        assert run.gflops == pytest.approx(sim.gflops)

    def test_simulation_cached_per_config_and_batch(self, monkeypatch):
        import repro.gpusim.eventsim as eventsim

        calls = []
        real = eventsim.simulate_launch

        def counting(config, batch, arch=None, **kwargs):
            calls.append((config, batch))
            return real(config, batch=batch)

        monkeypatch.setattr(eventsim, "simulate_launch", counting)
        backend = EventSimBackend()
        a = _spd_batch(4, 6, seed=3)
        backend.factorize(a, KernelConfig(n=6))
        backend.factorize(a, KernelConfig(n=6))
        backend.factorize(_spd_batch(2, 6, seed=4), KernelConfig(n=6))
        assert len(calls) == 2  # same (config, batch) simulated once

    def test_flush_report_charges_modeled_latency(self):
        ex = BatchExecutor(backend="eventsim")
        requests = [_request(i, _spd(8, seed=i)) for i in range(4)]
        report = ex.execute(requests, reason="full")
        assert report.backend == "eventsim"

        from repro.gpusim.eventsim import simulate_launch

        sim = simulate_launch(ex.config_for(8), batch=4)
        assert report.service_s == pytest.approx(sim.seconds)
        assert report.gflops == pytest.approx(sim.gflops)


# ----------------------------------------------------------------------
# Shadow validation
# ----------------------------------------------------------------------


class TestShadowBackend:
    def test_clean_flush_mirrors_without_mismatch(self):
        a = _spd_batch(6, 8, seed=5)
        run = ShadowLapackBackend().factorize(a, KernelConfig(n=8))
        assert run.shadow_checked == 6
        assert run.shadow_mismatch == 0
        _check_factors(a, run.factors)

    def test_non_spd_lane_is_agreement_not_mismatch(self):
        a = np.stack([_spd(8, seed=6), _non_spd(8)])
        run = ShadowLapackBackend().factorize(a, KernelConfig(n=8))
        # Kernel NaNs the lane, LAPACK rejects the matrix: both sides
        # agree it is not SPD, so nothing is flagged.
        assert run.shadow_checked == 2
        assert run.shadow_mismatch == 0

    def test_corrupted_factors_are_flagged(self):
        a = _spd_batch(3, 8, seed=7)
        backend = ShadowLapackBackend(inner=_CorruptingBackend())
        run = backend.factorize(a, KernelConfig(n=8))
        assert run.shadow_checked == 3
        assert run.shadow_mismatch == 1

    def test_fraction_mirrors_deterministically(self):
        backend = ShadowLapackBackend(fraction=0.5)
        a = _spd_batch(2, 6, seed=8)
        checked = [
            backend.factorize(a, KernelConfig(n=6)).shadow_checked for _ in range(4)
        ]
        # Credit accumulation mirrors every second flush.
        assert checked == [0, 2, 0, 2]

    def test_fraction_zero_never_mirrors(self):
        backend = ShadowLapackBackend(fraction=0.0)
        a = _spd_batch(2, 6, seed=9)
        for _ in range(3):
            assert backend.factorize(a, KernelConfig(n=6)).shadow_checked == 0

    def test_broker_surfaces_mismatch_metric_without_failing_futures(self):
        async def scenario():
            executor = BatchExecutor(
                backend=ShadowLapackBackend(inner=_CorruptingBackend())
            )
            policy = ServePolicy(target_batch=4, max_delay_s=0.005)
            async with SolveBroker(policy=policy, executor=executor) as broker:
                results = await asyncio.gather(
                    *(broker.factor(_spd(8, seed=i)) for i in range(4))
                )
                return results, broker.metrics

        results, metrics = asyncio.run(scenario())
        assert all(isinstance(r, np.ndarray) for r in results)
        assert metrics.counters["completed"] == 4
        assert metrics.counters["shadow_checked"] >= 4
        assert metrics.counters["shadow_mismatch"] >= 1
        assert metrics.unaccounted == 0


# ----------------------------------------------------------------------
# Process pool
# ----------------------------------------------------------------------


def _worker_pids(backend: ProcessPoolBackend) -> list[int]:
    return list(backend._pool._processes.keys())


class TestProcessPoolBackend:
    def test_factorizes_in_worker_processes(self):
        backend = ProcessPoolBackend(workers=1)
        try:
            a = _spd_batch(4, 8, seed=10)
            run = backend.factorize(a, KernelConfig(n=8))
            _check_factors(a, run.factors)
            assert _worker_pids(backend) != [os.getpid()]
        finally:
            backend.close()

    def test_killed_worker_retries_on_a_fresh_worker(self):
        backend = ProcessPoolBackend(workers=1)
        try:
            a = _spd_batch(2, 6, seed=11)
            backend.factorize(a, KernelConfig(n=6))  # spawn + warm the worker
            for pid in _worker_pids(backend):
                os.kill(pid, signal.SIGKILL)
            run = backend.factorize(a, KernelConfig(n=6))
            _check_factors(a, run.factors)
        finally:
            backend.close()

    def test_killed_worker_without_retry_raises_backend_error(self):
        backend = ProcessPoolBackend(workers=1, retry_fresh_worker=False)
        try:
            a = _spd_batch(2, 6, seed=12)
            backend.factorize(a, KernelConfig(n=6))
            for pid in _worker_pids(backend):
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(BackendError):
                backend.factorize(a, KernelConfig(n=6))
            # The broken pool was disposed: the next flush starts clean.
            run = backend.factorize(a, KernelConfig(n=6))
            _check_factors(a, run.factors)
        finally:
            backend.close()

    def test_flush_timeout_becomes_backend_error_and_disposes_pool(self):
        class _NeverPool:
            def __init__(self):
                self.shut_down = False

            def submit(self, fn, *args):
                return concurrent.futures.Future()  # never completes

            def shutdown(self, wait=True, cancel_futures=False):
                self.shut_down = True

        backend = ProcessPoolBackend(
            workers=1, flush_timeout_s=0.05, retry_fresh_worker=False
        )
        stuck = _NeverPool()
        backend._pool = stuck
        with pytest.raises(BackendError, match="timed out"):
            backend.factorize(_spd_batch(1, 6, seed=13), KernelConfig(n=6))
        assert stuck.shut_down
        assert backend._pool is None

    def test_worker_payload_is_picklable(self):
        config = KernelConfig(n=12, nb=4, looking="left", chunk_size=64)
        assert pickle.loads(pickle.dumps(config)) == config

    def test_warmed_config_ships_only_its_id_until_pool_rebuild(self):
        """The pool initializer bakes pre-pool configs; later ones carry.

        Warmed steady state must pickle nothing but the batch per
        flush, a config first seen after pool creation must travel with
        every submit (only the initializer reaches all workers), and a
        pool rebuild re-bakes the full table.
        """
        backend = ProcessPoolBackend(workers=1)
        try:
            warm = KernelConfig(n=6)
            backend.warmup(warm)
            assert backend._register_config(warm)[1] is None
            late = KernelConfig(n=8)
            assert backend._register_config(late)[1] is late
            assert backend._register_config(late)[1] is late  # every submit
            backend._dispose_pool()
            backend._ensure_pool()
            assert backend._register_config(late)[1] is None
        finally:
            backend.close()

    def test_config_registered_during_pool_build_still_travels(self, monkeypatch):
        """Regression: flushes of different buckets race pool creation.

        The initializer ships a snapshot of the config table; a config
        registered by a concurrent flush while the pool is under
        construction is not in that snapshot, so its submits must keep
        carrying the config object — promoting it to carry-nothing left
        workers resolving an id they were never given.
        """
        import repro.serve.backends as backends_mod

        backend = ProcessPoolBackend(workers=1)
        cfg = KernelConfig(n=6)
        seen = {}
        threads = []
        real = backends_mod.ProcessPoolExecutor

        def register():
            seen["carry"] = backend._register_config(cfg)[1]

        def hooked(*args, **kwargs):
            t = threading.Thread(target=register)
            t.start()  # blocks on the registry lock until creation ends
            threads.append(t)
            return real(*args, **kwargs)

        monkeypatch.setattr(backends_mod, "ProcessPoolExecutor", hooked)
        try:
            backend._ensure_pool()
            for t in threads:
                t.join(timeout=10)
            assert seen["carry"] is cfg
            a = _spd_batch(2, 6, seed=21)
            _check_factors(a, backend.factorize(a, cfg).factors)
        finally:
            backend.close()

    def test_broker_end_to_end_with_worker_death(self):
        """Futures resolve correctly even after the pool's worker is killed."""

        async def scenario():
            backend = ProcessPoolBackend(workers=1)
            executor = BatchExecutor(backend=backend)
            policy = ServePolicy(target_batch=4, max_delay_s=0.01)
            async with SolveBroker(policy=policy, executor=executor) as broker:
                first = await asyncio.gather(
                    *(broker.factor(_spd(8, seed=i)) for i in range(4))
                )
                for pid in _worker_pids(backend):
                    os.kill(pid, signal.SIGKILL)
                second = await asyncio.gather(
                    *(broker.factor(_spd(8, seed=10 + i)) for i in range(4))
                )
                metrics = broker.metrics
            backend.close()
            return first + second, metrics

        results, metrics = asyncio.run(scenario())
        assert all(isinstance(r, np.ndarray) for r in results)
        assert metrics.counters["completed"] == 8
        assert metrics.unaccounted == 0


# ----------------------------------------------------------------------
# Broker robustness around backend failures and in-flight flushes
# ----------------------------------------------------------------------


class TestBrokerBackendRobustness:
    def test_backend_error_fails_only_its_own_bucket(self):
        async def scenario():
            executor = BatchExecutor(backend=_FailingBackend(fail_n=8))
            policy = ServePolicy(target_batch=2, max_delay_s=0.005)
            async with SolveBroker(policy=policy, executor=executor) as broker:
                doomed = [broker.factor(_spd(8, seed=i)) for i in range(2)]
                healthy = [broker.factor(_spd(6, seed=i)) for i in range(2)]
                results = await asyncio.gather(
                    *doomed, *healthy, return_exceptions=True
                )
                return results, broker.metrics

        results, metrics = asyncio.run(scenario())
        assert all(isinstance(r, BackendError) for r in results[:2])
        assert all(isinstance(r, np.ndarray) for r in results[2:])
        assert metrics.counters["failed"] == 2
        assert metrics.counters["completed"] == 2
        assert metrics.unaccounted == 0

    def test_broker_accepts_requests_while_flush_in_flight(self):
        async def scenario():
            backend = _GatedBackend()
            executor = BatchExecutor(backend=backend)
            policy = ServePolicy(target_batch=2, max_delay_s=0.01)
            loop = asyncio.get_running_loop()
            async with SolveBroker(policy=policy, executor=executor) as broker:
                gated = [
                    asyncio.ensure_future(broker.factor(_spd(8, seed=i)))
                    for i in range(2)
                ]
                await loop.run_in_executor(None, backend.started.wait, 5.0)
                # The first flush is blocked inside the backend; the
                # broker must still accept and serve new submissions.
                extra = [
                    asyncio.ensure_future(broker.factor(_spd(8, seed=10 + i)))
                    for i in range(2)
                ]
                await asyncio.sleep(0.05)
                assert not any(f.done() for f in gated)
                backend.release.set()
                results = await asyncio.gather(*gated, *extra)
                return results, broker.metrics

        results, metrics = asyncio.run(scenario())
        assert all(isinstance(r, np.ndarray) for r in results)
        assert metrics.counters["completed"] == 4
        assert metrics.unaccounted == 0

    def test_shutdown_drains_in_flight_flushes(self):
        async def scenario():
            backend = _GatedBackend()
            executor = BatchExecutor(backend=backend)
            policy = ServePolicy(target_batch=2, max_delay_s=0.01)
            loop = asyncio.get_running_loop()
            broker = SolveBroker(policy=policy, executor=executor)
            await broker.start()
            jobs = [
                asyncio.ensure_future(broker.factor(_spd(8, seed=i)))
                for i in range(2)
            ]
            await loop.run_in_executor(None, backend.started.wait, 5.0)
            close_task = asyncio.ensure_future(broker.close())
            await asyncio.sleep(0.05)
            assert not close_task.done()  # close waits for the in-flight flush
            backend.release.set()
            await close_task
            results = await asyncio.gather(*jobs)
            return results, broker.metrics

        results, metrics = asyncio.run(scenario())
        assert all(isinstance(r, np.ndarray) for r in results)
        assert metrics.counters["completed"] == 2
        assert metrics.unaccounted == 0


# ----------------------------------------------------------------------
# Executor/report integration shared by all backends
# ----------------------------------------------------------------------


class TestFlushReportAccounting:
    def test_report_names_its_backend_and_charges_service_time(self):
        ex = BatchExecutor(backend="inline")
        report = ex.execute([_request(1, _spd(8))], reason="full")
        assert report.backend == "inline"
        assert report.service_s > 0.0
        assert report.shadow_checked == 0

    def test_shadow_counters_flow_through_report(self):
        ex = BatchExecutor(backend=ShadowLapackBackend())
        report = ex.execute(
            [_request(1, _spd(8, seed=1)), _request(2, _spd(8, seed=2))],
            reason="full",
        )
        assert report.backend == "shadow"
        assert report.shadow_checked == 2
        assert report.shadow_mismatch == 0
