"""The zero-copy data plane (repro.serve.arena) and its backend.

Three layers of coverage:

* the slab allocator and lease/generation protocol in isolation —
  including the property the whole design rests on: a slab's flat
  element offsets ARE the paper's interleaved-layout offsets
  (:meth:`InterleavedLayout.element_offset`) for a batch padded to the
  slab capacity, so staging/gathering are exact permutations and the
  staged path stays byte-identical to the pickle path;
* the ``arena-process`` backend under fault injection — a SIGKILLed
  worker mid-flight must end in correct factors, bumped generations, and
  exact slot conservation (``staged == released``, zero leaked);
* the serving integrations: broker staging/releasing, the copy fallback
  on platforms without shared memory, per-shard pools under
  ``kill_shard``, metrics merge, and the Prometheus rendering.
"""

import asyncio
import os
import signal

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import KernelConfig
from repro.layouts.base import WARP_SIZE, BatchSpec
from repro.layouts.interleaved import INTERLEAVED
from repro.obs import render_arena_prometheus
from repro.serve import (
    ArenaError,
    ArenaPool,
    ArenaProcessBackend,
    BatchExecutor,
    InlineBackend,
    ServeMetrics,
    ServePolicy,
    ShardedBroker,
    SolveBroker,
    StagedBatch,
    StaleSlotError,
    make_backend,
)
from repro.serve import arena as arena_mod
from repro.serve.arena import ARENA_ENV, arena_requested
from repro.utils.spd import random_spd_batch


def _spd(n: int, seed: int = 0) -> np.ndarray:
    # float32 on purpose: it matches the default KernelConfig compute
    # dtype (Precision.SINGLE), so staged flushes stay byte-identical
    # to the dense path.  The executor refuses to stage a bucket whose
    # dtype differs from the config's.
    return random_spd_batch(1, n, seed=seed)[0]


def _staged(pool: ArenaPool, matrices) -> StagedBatch:
    batch = StagedBatch(n=matrices[0].shape[0], dtype=matrices[0].dtype.str)
    for a in matrices:
        lease = pool.stage(a)
        assert lease is not None
        batch.entries.append((lease, a))
    return batch


def _release_all(pool: ArenaPool, staged: StagedBatch) -> None:
    for lease in staged.leases:
        pool.release(lease)


# ----------------------------------------------------------------------
# Slab layout == the paper's interleaved layout
# ----------------------------------------------------------------------


class TestSlabIsInterleavedLayout:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        b=st.integers(min_value=0, max_value=63),
        i=st.integers(min_value=0, max_value=11),
        j=st.integers(min_value=0, max_value=11),
    )
    def test_flat_slab_offset_matches_element_offset(self, n, b, i, j):
        """lanes[j, i, b] sits at INTERLEAVED.element_offset(spec, b, i, j).

        The slab capacity is a WARP_SIZE multiple, so the layout's padded
        batch equals the capacity and the slab data region is literally
        one interleaved block — the property that makes arena strides the
        paper's strides.
        """
        i, j = i % n, j % n
        pool = ArenaPool(slab_slots=64)
        try:
            lease = pool.stage(np.zeros((n, n), dtype=np.float64))
            slab = pool._buckets[(n, "<f8")][lease.slab]
            assert slab.capacity % WARP_SIZE == 0
            flat = int(np.ravel_multi_index((j, i, b), slab.lanes.shape))
            spec = BatchSpec(batch=slab.capacity, n=n, itemsize=8)
            assert spec.padded_batch == slab.capacity
            assert flat == INTERLEAVED.element_offset(spec, b, i, j)
        finally:
            pool.close()

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=10),
        count=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_stage_gather_round_trip_is_byte_identical(self, n, count, seed):
        """Host stage → parent gather and → worker view are exact permutations."""
        rng = np.random.default_rng(seed)
        matrices = [rng.standard_normal((n, n)) for _ in range(count)]
        pool = ArenaPool(slab_slots=4)  # force multi-slab growth
        try:
            staged = _staged(pool, matrices)
            gathered = pool.gather(staged)
            for a, g in zip(matrices, gathered):
                assert a.tobytes() == g.tobytes()
            # The worker-side view (same attach path the pool workers
            # run) must see the identical bytes through the handle.
            via_worker = arena_mod.worker_gather(pool.describe(staged))
            for a, w in zip(matrices, via_worker):
                assert a.tobytes() == w.tobytes()
            _release_all(pool, staged)
            assert pool.leaked == 0
        finally:
            pool.close()

    def test_worker_write_back_round_trips(self):
        pool = ArenaPool(slab_slots=32)
        try:
            matrices = [_spd(6, seed=s) for s in range(3)]
            staged = _staged(pool, matrices)
            handle = pool.describe(staged)
            factors = np.stack([np.tril(m) + s for s, m in enumerate(matrices)])
            arena_mod.worker_write_back(handle, factors)
            back = pool.gather(staged)
            assert back.tobytes() == factors.tobytes()
            _release_all(pool, staged)
        finally:
            pool.close()


# ----------------------------------------------------------------------
# Allocator and lease protocol
# ----------------------------------------------------------------------


class TestArenaPool:
    def test_capacity_rounds_up_to_warp_multiple(self):
        pool = ArenaPool(slab_slots=5)
        assert pool.slab_slots == WARP_SIZE
        pool.close()
        with pytest.raises(ValueError):
            ArenaPool(slab_slots=0)

    def test_grows_slabs_and_tracks_high_water_mark(self):
        pool = ArenaPool(slab_slots=32)
        try:
            staged = _staged(pool, [_spd(4, seed=s) for s in range(33)])
            assert len(pool._buckets[(4, "<f4")]) == 2
            assert pool.hwm_bytes == pool.segment_bytes > 0
            assert pool.slots_staged == 33
            _release_all(pool, staged)
            # Released slots recycle: no third slab, hwm unchanged.
            again = _staged(pool, [_spd(4, seed=s) for s in range(33)])
            assert len(pool._buckets[(4, "<f4")]) == 2
            _release_all(pool, again)
        finally:
            pool.close()

    def test_release_is_idempotent_and_conserves(self):
        pool = ArenaPool()
        try:
            lease = pool.stage(_spd(4))
            assert pool.release(lease) is True
            assert pool.release(lease) is False  # double release: no-op
            assert pool.release(None) is False
            assert pool.slots_released == 1
            assert pool.leaked == 0
        finally:
            pool.close()

    def test_release_invalidates_before_recycling(self):
        """A stale handle from before a release must fail its gen check."""
        pool = ArenaPool()
        try:
            a = _spd(5, seed=1)
            staged = _staged(pool, [a])
            handle = pool.describe(staged)
            _release_all(pool, staged)
            with pytest.raises(StaleSlotError):
                arena_mod.worker_gather(handle)
            with pytest.raises(StaleSlotError):
                arena_mod.worker_write_back(handle, a[None])
        finally:
            pool.close()

    def test_restage_bumps_generations_and_restamps_leases(self):
        pool = ArenaPool()
        try:
            matrices = [_spd(4, seed=s) for s in range(2)]
            staged = _staged(pool, matrices)
            old_handle = pool.describe(staged)
            old_gens = [lease.generation for lease in staged.leases]
            # Simulate a dead worker's torn write, then recover.
            pool._buckets[(4, "<f4")][0].lanes[:, :, staged.leases[0].slot] = -1.0
            pool.restage(staged)
            assert [lease.generation for lease in staged.leases] == [
                g + 1 for g in old_gens
            ]
            assert pool.generation_bumps == 2
            with pytest.raises(StaleSlotError):
                arena_mod.worker_gather(old_handle)  # straggler fenced out
            fresh = pool.gather(staged)
            for a, g in zip(matrices, fresh):
                assert a.tobytes() == g.tobytes()
            _release_all(pool, staged)
        finally:
            pool.close()

    def test_gather_and_restage_reject_released_leases(self):
        pool = ArenaPool()
        try:
            staged = _staged(pool, [_spd(4)])
            _release_all(pool, staged)
            with pytest.raises(ArenaError):
                pool.gather(staged)
            with pytest.raises(ArenaError):
                pool.restage(staged)
        finally:
            pool.close()

    def test_stage_rejects_non_square_and_closed(self):
        pool = ArenaPool()
        assert pool.stage(np.zeros((3, 4))) is None
        assert pool.stage(np.zeros(3)) is None
        pool.close()
        assert pool.stage(_spd(4)) is None
        pool.close()  # idempotent

    def test_allocation_failure_disables_pool_cleanly(self, monkeypatch):
        """Satellite: no shared memory → clean copy fallback, not a crash."""

        def _boom(*args, **kwargs):
            raise OSError("no /dev/shm on this platform")

        pool = ArenaPool()
        monkeypatch.setattr(arena_mod, "_Slab", _boom)
        assert pool.stage(_spd(4)) is None
        assert pool.disabled is not None
        # Later stages short-circuit on the disabled flag.
        assert pool.stage(_spd(4)) is None
        assert pool.slots_staged == 0
        pool.close()

    def test_env_knob_parsing(self, monkeypatch):
        for value in ("", "0", "false", "no", "off", "OFF"):
            monkeypatch.setenv(ARENA_ENV, value)
            assert arena_requested() is False
        for value in ("1", "true", "yes", "on"):
            monkeypatch.setenv(ARENA_ENV, value)
            assert arena_requested() is True
        monkeypatch.delenv(ARENA_ENV)
        assert arena_requested() is False


# ----------------------------------------------------------------------
# The arena-process backend
# ----------------------------------------------------------------------


class TestArenaProcessBackend:
    def test_env_default_selects_arena_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_BACKEND", raising=False)
        monkeypatch.setenv(ARENA_ENV, "1")
        backend = make_backend(None)
        try:
            assert isinstance(backend, ArenaProcessBackend)
            assert backend.name == "arena-process"
        finally:
            backend.close()
        monkeypatch.setenv(ARENA_ENV, "0")
        assert make_backend(None).name == "inline"

    def test_staged_flush_matches_inline_bytes_and_copies_nothing(self):
        backend = ArenaProcessBackend(workers=1)
        try:
            config = KernelConfig(n=8)
            matrices = [_spd(8, seed=s) for s in range(5)]
            staged = _staged(backend.arenas, matrices)
            run = backend.factorize_staged(staged, config)
            assert run.bytes_copied == 0
            expected = InlineBackend().factorize(np.stack(matrices), config)
            assert run.factors.tobytes() == expected.factors.tobytes()
            _release_all(backend.arenas, staged)
            assert backend.arenas.leaked == 0
        finally:
            backend.close()

    def test_sigkilled_worker_mid_flight_restages_and_conserves(self):
        """SIGKILL the only worker: retry restages, factors stay correct."""
        backend = ArenaProcessBackend(workers=1)
        try:
            config = KernelConfig(n=6)
            warm = _staged(backend.arenas, [_spd(6, seed=9)])
            backend.factorize_staged(warm, config)  # spin up the pool
            _release_all(backend.arenas, warm)
            for pid in list(backend._pool._processes.keys()):
                os.kill(pid, signal.SIGKILL)
            matrices = [_spd(6, seed=s) for s in range(4)]
            staged = _staged(backend.arenas, matrices)
            run = backend.factorize_staged(staged, config)
            expected = InlineBackend().factorize(np.stack(matrices), config)
            assert run.factors.tobytes() == expected.factors.tobytes()
            # The retry path re-staged every slot with a generation bump.
            assert backend.arenas.generation_bumps == len(matrices)
            _release_all(backend.arenas, staged)
            assert backend.arenas.slots_staged == backend.arenas.slots_released
            assert backend.arenas.leaked == 0
        finally:
            backend.close()

    def test_close_unlinks_segments(self):
        backend = ArenaProcessBackend(workers=1)
        staged = _staged(backend.arenas, [_spd(4)])
        names = backend.arenas.segment_names()
        assert names
        _release_all(backend.arenas, staged)
        backend.close()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# Serving integration: broker, fallback, shards, metrics
# ----------------------------------------------------------------------


def _broker_scenario(backend, requests=8, n=8, **policy_kwargs):
    async def scenario():
        executor = BatchExecutor(backend=backend)
        policy = ServePolicy(
            target_batch=4, max_delay_s=0.005, **policy_kwargs
        )
        async with SolveBroker(policy=policy, executor=executor) as broker:
            results = await asyncio.gather(
                *(broker.factor(_spd(n, seed=i)) for i in range(requests))
            )
            return results, broker.metrics

    return asyncio.run(scenario())


class TestBrokerDataPlane:
    def test_staged_serving_conserves_and_copies_nothing(self):
        backend = ArenaProcessBackend(workers=1)
        try:
            results, metrics = _broker_scenario(backend)
            assert all(isinstance(r, np.ndarray) for r in results)
            assert metrics.unaccounted == 0
            arena = metrics.arena
            assert arena["slots_staged"] == 8
            assert arena["slots_released"] == 8
            assert metrics.arena_leaked == 0
            assert arena["bytes_staged"] == 8 * 8 * 8 * 4
            assert arena["bytes_copied_fallback"] == 0
            assert arena["hwm_bytes"] > 0
            assert metrics.as_dict()["arena"]["leaked"] == 0
        finally:
            backend.close()

    def test_disabled_pool_falls_back_to_copies(self):
        """Satellite: staging unavailable → identical results, copy accounting."""
        backend = ArenaProcessBackend(workers=1)
        backend.arenas.disabled = "forced by test"
        try:
            results, metrics = _broker_scenario(backend)
            assert all(isinstance(r, np.ndarray) for r in results)
            arena = metrics.arena
            assert arena["slots_staged"] == 0
            assert arena["stage_fallbacks"] == 8
            assert arena["bytes_staged"] == 0
            assert arena["bytes_copied_fallback"] > 0
            assert metrics.unaccounted == 0
        finally:
            backend.close()

    def test_pickle_backends_account_their_copied_bytes(self):
        results, metrics = _broker_scenario(InlineBackend())
        assert all(isinstance(r, np.ndarray) for r in results)
        assert metrics.arena["bytes_copied_fallback"] == 8 * 8 * 8 * 4
        assert metrics.arena["slots_staged"] == 0

    def test_kill_shard_releases_that_shards_leases(self):
        """Per-shard pools: an abrupt shard death leaks no slots anywhere."""

        async def scenario():
            policy = ServePolicy(
                backend="arena-process",
                target_batch=64,  # large: requests sit queued (staged)
                max_delay_s=5.0,
                request_timeout_s=None,
                shards=2,
            )
            async with ShardedBroker(policy=policy, shards=2) as broker:
                pending = [
                    asyncio.ensure_future(broker.factor(_spd(8, seed=i)))
                    for i in range(8)
                ]
                await asyncio.sleep(0.2)  # let submissions stage
                broker.kill_shard(0)
                results = await asyncio.gather(*pending, return_exceptions=True)
                pools = [
                    shard.broker.executor.backend.arenas
                    for shard in broker.shards.values()
                ]
                metrics = broker.metrics
            return results, metrics, pools

        results, metrics, pools = asyncio.run(scenario())
        assert len(results) == 8
        for pool in pools:
            assert pool.slots_staged == pool.slots_released
            assert pool.leaked == 0
        assert metrics.arena["slots_staged"] == metrics.arena["slots_released"]
        assert metrics.unaccounted == 0

    def test_metrics_merge_sums_arena_counters(self):
        one, two = ServeMetrics(), ServeMetrics()
        one.record_arena_stage(100)
        one.record_arena_release()
        one.record_arena_pool(hwm_bytes=512, generation_bumps=1)
        two.record_arena_stage(50)
        two.record_arena_stage_fallback()
        two.record_arena_fallback_bytes(25)
        two.record_arena_pool(hwm_bytes=256, generation_bumps=0)
        merged = ServeMetrics.merged([one, two])
        assert merged.arena["slots_staged"] == 2
        assert merged.arena["bytes_staged"] == 150
        assert merged.arena["stage_fallbacks"] == 1
        assert merged.arena["bytes_copied_fallback"] == 25
        # Disjoint per-shard pools: fabric hwm is the sum of the shards'.
        assert merged.arena["hwm_bytes"] == 768
        assert merged.arena_leaked == 1

    def test_prometheus_rendering(self):
        metrics = ServeMetrics()
        assert render_arena_prometheus(metrics) == ""
        metrics.record_arena_stage(64)
        metrics.record_arena_pool(hwm_bytes=128, generation_bumps=2)
        text = render_arena_prometheus(metrics)
        assert "repro_arena_slots_staged_total 1" in text
        assert "repro_arena_bytes_staged_total 64" in text
        assert "repro_arena_hwm_bytes 128" in text
        assert "repro_arena_generation_bumps_total 2" in text
        assert "repro_arena_slots_leaked 1" in text
