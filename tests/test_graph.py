"""Dependency-aware solve graphs: API, scheduler, trace v2, grids, gates.

The fast tests here run in every suite against the inline backend.  The
environment-shaped end-to-end tests (``TestGraphEnvMatrix``) only run
under ``REPRO_SERVE_GRAPH=1`` — the CI ``graph`` matrix cell sets that
together with ``$REPRO_SERVE_BACKEND`` / ``$REPRO_SERVE_SHARDS`` to
sweep the scheduler across the inline + process backends and the
two-shard fabric.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.serve import (
    DependencyFailed,
    GateTolerances,
    GraphMetrics,
    GraphScheduler,
    GraphValidationError,
    ServePolicy,
    SolveBroker,
    SolveGraph,
    demo_graphs,
    graph_groups,
    linearize,
    policy_grid,
    replay_trace,
    run_graphs,
    trace_version_for,
)
from repro.serve.policy import ServiceOverloaded
from repro.serve.replay import compare_reports, run_record, run_replay_grid
from repro.serve.trace import (
    RecordedEvent,
    TraceRecorder,
    load_trace_file,
    normalize_events,
    save_trace,
)
from repro.utils.spd import make_spd

RUN_GRAPH_MATRIX = os.environ.get("REPRO_SERVE_GRAPH") == "1"

FAST_POLICY = ServePolicy(request_timeout_s=None, backend="inline")


def _spd(n=8, seed=0):
    return make_spd(n, np.random.default_rng(seed))


def _rhs(n=8, seed=1):
    return np.random.default_rng(seed).standard_normal(n).astype(np.float32)


def _nonspd(n=8, seed=0):
    a = _spd(n, seed)
    a[n // 2, n // 2] = -abs(a[n // 2, n // 2]) - 1.0
    return a


def diamond_graph(n=8, seed=0, poison_root=False):
    """factor root -> two solves -> one join solve."""
    g = SolveGraph(name="diamond")
    root = _nonspd(n, seed) if poison_root else _spd(n, seed)
    g.factor(root, name="root")
    g.solve(_spd(n, seed + 1), _rhs(n, seed + 2), name="left", after="root")
    g.solve(_spd(n, seed + 3), _rhs(n, seed + 4), name="right", after="root")
    g.solve(
        _spd(n, seed + 5), _rhs(n, seed + 6), name="join",
        after=("left", "right"),
    )
    return g


# ----------------------------------------------------------------------
# SolveGraph API
# ----------------------------------------------------------------------


class TestSolveGraph:
    def test_build_and_introspect(self):
        g = diamond_graph()
        assert len(g) == 4
        assert "root" in g and "absent" not in g
        assert g.edges() == 4
        assert [n.name for n in g.nodes] == ["root", "left", "right", "join"]
        assert g.node("left").deps == ("root",)
        assert g.node("root").op == "factor"
        assert g.node("root").nrhs == 0
        assert g.node("join").nrhs == 1
        assert g.node("join").n == 8

    def test_auto_names(self):
        g = SolveGraph()
        first = g.factor(_spd())
        second = g.solve(_spd(), _rhs(), after=first)
        assert (first, second) == ("node0", "node1")

    def test_after_accepts_node_instances(self):
        g = SolveGraph()
        g.factor(_spd(), name="a")
        g.solve(_spd(), _rhs(), name="b", after=g.node("a"))
        assert g.node("b").deps == ("a",)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError, match="op"):
            SolveGraph().add("invert", _spd())

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            SolveGraph().factor(np.zeros((4, 6), dtype=np.float32))

    def test_solve_needs_rhs(self):
        with pytest.raises(ValueError, match="right-hand side"):
            SolveGraph().add("solve", _spd())

    def test_factor_takes_no_rhs(self):
        with pytest.raises(ValueError, match="no right-hand side"):
            SolveGraph().add("factor", _spd(), _rhs())

    def test_mismatched_rhs_rejected(self):
        with pytest.raises(ValueError, match="incompatible"):
            SolveGraph().solve(_spd(8), _rhs(16))

    def test_duplicate_name_rejected(self):
        g = SolveGraph()
        g.factor(_spd(), name="a")
        with pytest.raises(ValueError, match="duplicate node name"):
            g.factor(_spd(), name="a")

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            SolveGraph().factor(_spd(), name="a", after="a")

    def test_duplicate_dependency_rejected(self):
        g = SolveGraph()
        g.factor(_spd(), name="a")
        with pytest.raises(ValueError, match="duplicate dependency"):
            g.factor(_spd(), name="b", after=("a", "a"))


# ----------------------------------------------------------------------
# Linearization (Kahn's waves)
# ----------------------------------------------------------------------


class TestLinearize:
    def test_diamond_waves(self):
        waves = [[n.name for n in w] for w in linearize(diamond_graph())]
        assert waves == [["root"], ["left", "right"], ["join"]]

    def test_chain_is_one_node_per_wave(self):
        g = SolveGraph()
        prev = None
        for i in range(5):
            prev = g.factor(_spd(seed=i), after=() if prev is None else prev)
        assert [len(w) for w in linearize(g)] == [1] * 5

    def test_independent_nodes_share_one_wave(self):
        g = SolveGraph()
        for i in range(4):
            g.factor(_spd(seed=i))
        assert [len(w) for w in linearize(g)] == [4]

    def test_wave_membership_follows_insertion_order(self):
        # Declare edges out of order; the waves still list nodes in
        # insertion order, making the linearization a pure function of
        # the graph.
        g = SolveGraph()
        g.factor(_spd(), name="z")
        g.factor(_spd(), name="a")
        g.factor(_spd(), name="m", after=("a", "z"))
        waves = [[n.name for n in w] for w in linearize(g)]
        assert waves == [["z", "a"], ["m"]]

    def test_dangling_edge_names_node_and_dep(self):
        g = SolveGraph()
        g.factor(_spd(), name="a", after="ghost")
        with pytest.raises(GraphValidationError, match="'a'.*'ghost'"):
            linearize(g)

    def test_cycle_names_members(self):
        g = SolveGraph()
        g.factor(_spd(), name="a", after="b")
        g.factor(_spd(seed=1), name="b", after="a")
        g.factor(_spd(seed=2), name="free")
        with pytest.raises(GraphValidationError, match="cycle"):
            linearize(g)
        try:
            linearize(g)
        except GraphValidationError as exc:
            assert "'a'" in str(exc) and "'b'" in str(exc)
            assert "free" not in str(exc)


# ----------------------------------------------------------------------
# Scheduler end-to-end (inline broker)
# ----------------------------------------------------------------------


async def _submit(graph, policy=FAST_POLICY, **kwargs):
    async with SolveBroker(policy=policy) as broker:
        scheduler = GraphScheduler(broker)
        result = await scheduler.submit(graph, **kwargs)
    return result, scheduler.metrics


class TestGraphScheduler:
    def test_diamond_numerics(self):
        g = diamond_graph()
        result, metrics = asyncio.run(_submit(g))
        assert result.ok
        assert set(result.results) == {"root", "left", "right", "join"}
        for name in ("left", "right", "join"):
            node = g.node(name)
            expected = np.linalg.solve(
                node.a.astype(np.float64), node.b.astype(np.float64)
            )
            np.testing.assert_allclose(
                result.results[name], expected, rtol=5e-2, atol=5e-2
            )
        assert result.waves == [["root"], ["left", "right"], ["join"]]
        assert result.wave_widths == [1, 2, 1]
        assert metrics.counters["nodes_completed"] == 4
        assert metrics.unaccounted == 0
        assert result.critical_path_ms == pytest.approx(result.elapsed_s * 1e3)

    def test_failure_cone_is_exact(self):
        g = diamond_graph(poison_root=True)
        g.factor(_spd(seed=99), name="bystander")
        result, metrics = asyncio.run(_submit(g))
        assert not result.ok
        # The poisoned root fails itself; exactly its descendant cone is
        # dependency-failed; the unrelated node completes.
        assert set(result.results) == {"bystander"}
        assert set(result.failures) == {"root", "left", "right", "join"}
        assert not isinstance(result.failures["root"], DependencyFailed)
        for name in ("left", "right", "join"):
            failure = result.failures[name]
            assert isinstance(failure, DependencyFailed)
            assert failure.node == name
            assert failure.ancestor == "root"
        assert metrics.counters["nodes_failed"] == 1
        assert metrics.counters["nodes_dep_failed"] == 3
        assert metrics.counters["nodes_completed"] == 1
        assert metrics.counters["graphs_failed"] == 1
        assert metrics.unaccounted == 0

    def test_deep_chain_blames_intrinsic_root(self):
        g = SolveGraph()
        g.factor(_nonspd(), name="sick")
        g.solve(_spd(seed=1), _rhs(), name="mid", after="sick")
        g.solve(_spd(seed=2), _rhs(), name="leaf", after="mid")
        result, _ = asyncio.run(_submit(g))
        leaf = result.failures["leaf"]
        assert isinstance(leaf, DependencyFailed)
        # Skip-of-a-skip still names the true culprit, not "mid".
        assert leaf.ancestor == "sick"
        assert leaf.cause is result.failures["sick"]
        assert "sick" in str(leaf)

    def test_result_accessor_reraises(self):
        result, _ = asyncio.run(_submit(diamond_graph(poison_root=True)))
        with pytest.raises(DependencyFailed):
            result.result("join")

    def test_sequential_mode_same_results_one_node_per_wave(self):
        g = diamond_graph()
        wave_result, _ = asyncio.run(_submit(g))
        seq_result, seq_metrics = asyncio.run(_submit(g, sequential=True))
        assert seq_metrics.counters["waves"] == len(g)
        assert all(w == 1 for w in seq_result.wave_widths)
        for name in wave_result.results:
            np.testing.assert_allclose(
                seq_result.results[name], wave_result.results[name]
            )

    def test_shed_nodes_counted_separately(self):
        async def run():
            policy = ServePolicy(
                request_timeout_s=None, backend="inline",
                target_batch=4, max_queue_depth=2,
            )
            async with SolveBroker(policy=policy) as broker:
                scheduler = GraphScheduler(broker)
                g = SolveGraph()
                for i in range(8):
                    g.factor(_spd(seed=i))
                return await scheduler.submit(g), scheduler.metrics

        result, metrics = asyncio.run(run())
        assert metrics.counters["nodes_shed"] > 0
        assert any(
            isinstance(f, ServiceOverloaded) for f in result.failures.values()
        )
        assert metrics.unaccounted == 0

    def test_cross_graph_waves_share_flushes(self):
        """Independent graphs submitted concurrently coalesce in the
        broker's buckets — the whole point of wave release."""
        summary = run_graphs(
            demo_graphs(count=4, chain=3, width=4, ns=(8,), seed=3),
            policy=ServePolicy(
                request_timeout_s=None, backend="inline", target_batch=16
            ),
        )
        assert summary.ok
        assert summary.graph_metrics.counters["nodes_completed"] == 48
        # 48 nodes over 12 graph-waves; cross-graph coalescing must do
        # far better than one flush per node.
        assert summary.metrics.counters["flushes"] <= 12
        assert summary.metrics.histograms["batch_size"].mean > 4

    def test_demo_graphs_rejects_non_positive_knobs(self):
        with pytest.raises(ValueError, match="count must be positive"):
            demo_graphs(count=0)
        with pytest.raises(ValueError, match="chain must be positive"):
            demo_graphs(chain=-1)
        with pytest.raises(ValueError, match="width must be positive"):
            demo_graphs(width=0)
        with pytest.raises(ValueError, match="ns"):
            demo_graphs(ns=())

    def test_demo_graphs_deterministic(self):
        a = demo_graphs(count=2, chain=2, width=2, seed=5)
        b = demo_graphs(count=2, chain=2, width=2, seed=5)
        for ga, gb in zip(a, b):
            assert [n.name for n in ga.nodes] == [n.name for n in gb.nodes]
            for na, nb in zip(ga.nodes, gb.nodes):
                np.testing.assert_array_equal(na.a, nb.a)


# ----------------------------------------------------------------------
# Trace format v2
# ----------------------------------------------------------------------


def graph_trace_events():
    events = []
    t = 0.0
    for g in range(2):
        for pos in range(3):
            events.append(
                RecordedEvent(
                    at=round(t, 6), op="solve", n=8, nrhs=1,
                    seed=700 + g * 10 + pos, graph=g,
                    deps=(pos - 1,) if pos else (),
                )
            )
            t += 1e-4
    events.append(RecordedEvent(at=round(t, 6), op="factor", n=8, seed=999))
    return events


class TestTraceV2:
    def test_version_stamping(self):
        assert trace_version_for(graph_trace_events()) == 2
        flat = [RecordedEvent(at=0.0, op="factor", n=8, seed=1)]
        assert trace_version_for(flat) == 1

    def test_flat_trace_keeps_v1_bytes(self, tmp_path):
        """A dep-free trace written today is byte-identical to the v1
        format: no graph fields, version 1 header."""
        path = tmp_path / "flat.jsonl"
        save_trace(path, [RecordedEvent(at=0.0, op="factor", n=8, seed=1)])
        lines = path.read_text().splitlines()
        assert '"version":1' in lines[0]
        assert "graph" not in lines[1] and "deps" not in lines[1]

    def test_graph_trace_roundtrip_fixed_point(self, tmp_path):
        first = tmp_path / "graph.jsonl"
        second = tmp_path / "again.jsonl"
        events = graph_trace_events()
        save_trace(first, events, meta={"name": "t"})
        loaded = load_trace_file(first)
        assert loaded.version == 2
        assert loaded.events[1].graph == 0
        assert loaded.events[1].deps == (0,)
        assert loaded.events[-1].graph is None
        save_trace(second, loaded.events, meta=loaded.meta)
        assert first.read_bytes() == second.read_bytes()

    def test_v1_header_with_graph_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        save_trace(path, graph_trace_events())
        doctored = path.read_text().replace('"version":2', '"version":1')
        path.write_text(doctored)
        with pytest.raises(ValueError, match="version"):
            load_trace_file(path)

    def test_forward_dep_rejected(self, tmp_path):
        events = [
            RecordedEvent(at=0.0, op="solve", n=8, nrhs=1, seed=1,
                          graph=0, deps=(1,)),
            RecordedEvent(at=1e-4, op="solve", n=8, nrhs=1, seed=2, graph=0),
        ]
        with pytest.raises(ValueError, match="earlier event"):
            save_trace(tmp_path / "fwd.jsonl", events)

    def test_deps_require_graph(self):
        with pytest.raises(ValueError, match="graph"):
            RecordedEvent(at=0.0, op="solve", n=8, nrhs=1, seed=1, deps=(0,))

    def test_negative_and_duplicate_deps_rejected(self):
        with pytest.raises(ValueError):
            RecordedEvent(at=0.0, op="solve", n=8, nrhs=1, seed=1,
                          graph=0, deps=(-1,))
        with pytest.raises(ValueError):
            RecordedEvent(at=0.0, op="solve", n=8, nrhs=1, seed=1,
                          graph=0, deps=(0, 0))

    def test_graph_groups_positions(self):
        groups = graph_groups(graph_trace_events())
        assert set(groups) == {0, 1}
        # Position within each list is the per-graph position deps name.
        for indices in groups.values():
            assert len(indices) == 3
            assert indices == sorted(indices)

    def test_recorder_passes_graph_fields_through(self):
        recorder = TraceRecorder(seed=9)
        recorder.record("solve", 8, nrhs=1, at=0.0, graph=3)
        recorder.record("solve", 8, nrhs=1, at=1e-4, graph=3, deps=(0,))
        assert recorder.events[1].graph == 3
        assert recorder.events[1].deps == (0,)
        redriven = TraceRecorder(seed=9)
        for event in recorder.events:
            redriven.record_event(event)
        assert redriven.events == recorder.events


# ----------------------------------------------------------------------
# Graph-aware replay and the grid/gate plumbing
# ----------------------------------------------------------------------


class TestGraphReplay:
    def test_mixed_trace_outcomes_stay_event_aligned(self):
        events = graph_trace_events()
        summary = replay_trace(events, policy=FAST_POLICY, graph=True)
        assert summary.completed == len(events)
        assert summary.graph_metrics is not None
        assert summary.graph_metrics.counters["graphs"] == 2
        assert summary.graph_metrics.counters["nodes"] == 6
        assert len(summary.graph_results) == 2
        assert all(isinstance(o, np.ndarray) for o in summary.outcomes)

    def test_flat_replay_has_no_graph_plane(self):
        summary = replay_trace(graph_trace_events(), policy=FAST_POLICY)
        assert summary.graph_metrics is None
        assert summary.graph_results is None

    def test_sequential_mode_and_bad_arg(self):
        events = graph_trace_events()
        summary = replay_trace(events, policy=FAST_POLICY, graph="sequential")
        assert summary.completed == len(events)
        with pytest.raises(ValueError, match="graph must be"):
            replay_trace(events, policy=FAST_POLICY, graph="bogus")

    def test_replay_matches_direct_solve(self):
        events = graph_trace_events()
        summary = replay_trace(events, policy=FAST_POLICY, graph=True)
        from repro.serve.trace import event_inputs

        for event, outcome in zip(events, summary.outcomes):
            a, b = event_inputs(event)
            if event.op == "solve":
                expected = np.linalg.solve(
                    a.astype(np.float64), b.astype(np.float64)
                )
                np.testing.assert_allclose(
                    outcome, expected, rtol=5e-2, atol=5e-2
                )

    def test_policy_grid_graph_dimension(self):
        cells = policy_grid(graphs=(False, True))
        assert [c.label for c in cells] == [
            "inline/tb64/d2ms", "inline/tb64/d2ms/graph",
        ]
        assert [c.graph for c in cells] == [False, True]
        # Default grids are untouched.
        assert all(not c.graph for c in policy_grid())

    def test_run_record_offered_and_graph_block(self):
        events = graph_trace_events()
        summary = replay_trace(events, policy=FAST_POLICY, graph=True)
        record = run_record("x/graph", summary, FAST_POLICY)
        assert record["offered"] == summary.metrics.counters["submitted"]
        block = record["graph"]
        assert block["graphs"] == 2
        assert block["nodes"] == 6
        assert block["conservation_ok"]
        assert block["wave_width_mean"] > 0
        assert block["critical_path_ms_mean"] > 0
        flat = replay_trace(events, policy=FAST_POLICY)
        assert run_record("x", flat, FAST_POLICY)["graph"] is None

    def test_grid_and_fill_gate(self):
        events = normalize_events(graph_trace_events())
        cells = policy_grid(graphs=(False, True))
        report = run_replay_grid(events, cells, trace_name="unit")
        labels = [r["label"] for r in report["runs"]]
        assert "inline/tb64/d2ms/graph" in labels
        assert not compare_reports(report, report)
        # A doctored current report whose graph cell's fill collapsed
        # must trip the wave fill-ratio gate.
        import copy

        doctored = copy.deepcopy(report)
        for run in doctored["runs"]:
            run["fill_mean"] -= 0.2
        findings = compare_reports(
            report, doctored, GateTolerances(fill_abs=0.1)
        )
        assert findings
        assert any("fill regressed" in f for f in findings)

    def test_fill_tolerance_validated(self):
        with pytest.raises(ValueError, match="fill_abs"):
            GateTolerances(fill_abs=-0.1)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------


class TestGraphPrometheus:
    def test_render_and_parse(self):
        from repro.obs import parse_prometheus_text, render_graph_prometheus

        summary = run_graphs(
            demo_graphs(count=2, chain=2, width=2), policy=FAST_POLICY
        )
        text = render_graph_prometheus(summary.graph_metrics)
        samples = parse_prometheus_text(text)
        assert samples["repro_graph_graphs_total"] == [({}, 2.0)]
        assert samples["repro_graph_nodes_completed_total"] == [({}, 8.0)]
        assert samples["repro_graph_unaccounted"] == [({}, 0.0)]
        assert "repro_graph_wave_width_count" in samples

    def test_concatenates_with_serve_exposition(self):
        from repro.obs import (
            parse_prometheus_text,
            render_graph_prometheus,
            render_prometheus,
        )

        summary = run_graphs(
            demo_graphs(count=2, chain=2, width=2), policy=FAST_POLICY
        )
        page = render_prometheus(summary.metrics)
        page += render_graph_prometheus(summary.graph_metrics)
        samples = parse_prometheus_text(page)  # one TYPE per family holds
        assert "repro_serve_completed_total" in samples
        assert "repro_graph_waves_total" in samples


# ----------------------------------------------------------------------
# CI matrix cell: environment-shaped end-to-end runs
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    not RUN_GRAPH_MATRIX, reason="graph matrix cell (REPRO_SERVE_GRAPH=1) only"
)
class TestGraphEnvMatrix:
    """Runs under the CI ``graph`` cell, which sweeps
    ``$REPRO_SERVE_BACKEND`` (inline, process) and ``$REPRO_SERVE_SHARDS``
    (1, 2) — the default policy picks both up from the environment."""

    def test_demo_graphs_under_env_policy(self):
        summary = run_graphs(
            demo_graphs(count=4, chain=3, width=4, ns=(8, 16), seed=1),
            policy=ServePolicy(request_timeout_s=None),
        )
        assert summary.ok
        assert summary.graph_metrics.unaccounted == 0
        assert summary.metrics.unaccounted == 0

    def test_failure_cone_under_env_policy(self):
        async def run():
            from repro.serve.shard import make_broker

            async with make_broker(
                policy=ServePolicy(request_timeout_s=None)
            ) as broker:
                scheduler = GraphScheduler(broker)
                return await scheduler.submit(
                    diamond_graph(poison_root=True)
                ), scheduler.metrics

        result, metrics = asyncio.run(run())
        assert set(result.failures) == {"root", "left", "right", "join"}
        assert metrics.counters["nodes_dep_failed"] == 3
        assert metrics.unaccounted == 0

    def test_committed_graph_trace_replays_clean(self):
        trace = load_trace_file("benchmarks/traces/als_graph.jsonl")
        summary = replay_trace(
            trace, policy=ServePolicy(request_timeout_s=None), graph=True
        )
        assert summary.completed == len(trace)
        assert summary.graph_metrics.unaccounted == 0
        assert all(r.ok for r in summary.graph_results)


# ----------------------------------------------------------------------
# Property-based invariants (hypothesis)
# ----------------------------------------------------------------------

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@st.composite
def random_dags(draw):
    """(deps per node, intrinsically-failing node set) for a random DAG.

    Parents always have smaller indices than children, so any draw is
    acyclic by construction; edge density and failure sites vary freely.
    """
    size = draw(st.integers(min_value=1, max_value=10))
    deps = [()]
    for i in range(1, size):
        parents = draw(
            st.sets(st.integers(min_value=0, max_value=i - 1), max_size=3)
        )
        deps.append(tuple(sorted(parents)))
    failing = draw(
        st.sets(st.integers(min_value=0, max_value=size - 1), max_size=2)
    )
    return deps, failing


class FakeBroker:
    """In-memory broker double: records per-node submit-time state.

    ``names`` maps payload identity to node name (payloads are unique
    per node), ``seen_done`` snapshots which nodes had already resolved
    when each node was submitted — the raw material of the ordering
    property.
    """

    def __init__(self, names, failing=()):
        self.names = names
        self.failing = set(failing)
        self.done = set()
        self.seen_done = {}

    async def submit(self, op, a, b=None):
        name = self.names[id(a)]
        self.seen_done[name] = frozenset(self.done)
        await asyncio.sleep(0)
        if name in self.failing:
            raise RuntimeError(f"intrinsic failure at {name}")
        self.done.add(name)
        return np.zeros(1, dtype=np.float32)


def build_graph(deps):
    g = SolveGraph(name="prop")
    names = {}
    for i, parents in enumerate(deps):
        a = np.eye(2, dtype=np.float32) * (i + 2)  # unique payload object
        name = g.factor(a, name=f"n{i}", after=tuple(f"n{p}" for p in parents))
        names[id(g.node(name).a)] = name
    return g, names


def expected_status(deps, failing):
    """Per-node verdict by topo order: ok / fail / dep."""
    status = []
    for i, parents in enumerate(deps):
        if any(status[p] != "ok" for p in parents):
            status.append("dep")
        elif i in failing:
            status.append("fail")
        else:
            status.append("ok")
    return status


class TestGraphProperties:
    @settings(max_examples=60, deadline=None)
    @given(dag=random_dags())
    def test_every_node_runs_after_all_parents(self, dag):
        deps, _ = dag
        g, names = build_graph(deps)
        broker = FakeBroker(names)
        asyncio.run(GraphScheduler(broker).submit(g))
        for i, parents in enumerate(deps):
            seen = broker.seen_done[f"n{i}"]
            for p in parents:
                assert f"n{p}" in seen, (
                    f"n{i} was submitted before its parent n{p} resolved"
                )

    @settings(max_examples=60, deadline=None)
    @given(dag=random_dags())
    def test_conservation(self, dag):
        deps, failing = dag
        g, names = build_graph(deps)
        metrics = GraphMetrics()
        scheduler = GraphScheduler(
            FakeBroker(names, failing={f"n{i}" for i in failing}),
            metrics=metrics,
        )
        asyncio.run(scheduler.submit(g))
        c = metrics.counters
        assert c["nodes"] == len(deps)
        assert metrics.unaccounted == 0
        assert (
            c["nodes_completed"] + c["nodes_failed"] + c["nodes_dep_failed"]
            == len(deps)
        )

    @settings(max_examples=60, deadline=None)
    @given(dag=random_dags())
    def test_failure_cone_exactness(self, dag):
        deps, failing = dag
        status = expected_status(deps, failing)
        g, names = build_graph(deps)
        result = asyncio.run(
            GraphScheduler(
                FakeBroker(names, failing={f"n{i}" for i in failing})
            ).submit(g)
        )
        for i, verdict in enumerate(status):
            name = f"n{i}"
            if verdict == "ok":
                assert name in result.results
            elif verdict == "fail":
                assert not isinstance(result.failures[name], DependencyFailed)
            else:
                failure = result.failures[name]
                assert isinstance(failure, DependencyFailed)
                # The blamed ancestor is always an intrinsic failure.
                blamed = int(failure.ancestor[1:])
                assert status[blamed] == "fail"

    @settings(max_examples=60, deadline=None)
    @given(dag=random_dags())
    def test_linearization_deterministic(self, dag):
        deps, _ = dag
        g1, _ = build_graph(deps)
        g2, _ = build_graph(deps)
        waves1 = [[n.name for n in w] for w in linearize(g1)]
        waves2 = [[n.name for n in w] for w in linearize(g2)]
        assert waves1 == waves2
        assert sorted(n for w in waves1 for n in w) == sorted(
            f"n{i}" for i in range(len(deps))
        )
