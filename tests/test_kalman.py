"""Batched Kalman filters (repro.apps.kalman)."""

import numpy as np
import pytest

from repro.apps.kalman import (
    BatchKalmanFilter,
    constant_velocity_model,
    simulate_tracks,
)
from repro.core.config import KernelConfig


class TestModelConstruction:
    def test_constant_velocity_shapes(self):
        m = constant_velocity_model(dim=3)
        assert m.state_dim == 6
        assert m.measurement_dim == 3

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            BatchKalmanFilter(
                f=np.eye(2), h=np.eye(3), q=np.eye(2), r=np.eye(3)
            )
        with pytest.raises(ValueError):
            constant_velocity_model(dim=0)

    def test_config_dimension_checked(self):
        with pytest.raises(ValueError):
            BatchKalmanFilter(
                f=np.eye(2), h=np.eye(2)[:1], q=np.eye(2), r=np.eye(1),
                config=KernelConfig(n=4),
            )


class TestFiltering:
    def test_tracking_beats_raw_measurements(self):
        """The filtered position error must undercut the measurement noise."""
        model = constant_velocity_model(dim=2, measurement_noise=1.0)
        states, meas = simulate_tracks(model, n_tracks=300, n_steps=40, seed=1)
        n_tracks = states.shape[1]
        x = np.zeros((n_tracks, model.state_dim))
        p = np.tile(np.eye(model.state_dim) * 10.0, (n_tracks, 1, 1))
        errs = []
        for t in range(states.shape[0]):
            x, p = model.step(x, p, meas[t])
            pos_est = x @ model.h.T
            pos_true = states[t] @ model.h.T
            errs.append(np.sqrt(np.mean((pos_est - pos_true) ** 2)))
        meas_rmse = np.sqrt(np.mean((meas[-10:] - states[-10:] @ model.h.T) ** 2))
        assert np.mean(errs[-10:]) < 0.8 * meas_rmse

    def test_covariance_stays_spd(self):
        model = constant_velocity_model(dim=2)
        states, meas = simulate_tracks(model, n_tracks=50, n_steps=15, seed=2)
        x = np.zeros((50, model.state_dim))
        p = np.tile(np.eye(model.state_dim) * 5.0, (50, 1, 1))
        for t in range(15):
            x, p = model.step(x, p, meas[t])
            eig = np.linalg.eigvalsh(p)
            assert eig.min() > 0
            assert np.allclose(p, p.transpose(0, 2, 1))

    def test_matches_scalar_reference_filter(self):
        """The batched update equals a per-track textbook implementation."""
        model = constant_velocity_model(dim=1)
        rng = np.random.default_rng(3)
        n = 12
        x = rng.standard_normal((n, 2))
        p0 = rng.standard_normal((n, 2, 2))
        p = p0 @ p0.transpose(0, 2, 1) + 2 * np.eye(2)
        z = rng.standard_normal((n, 1))

        bx, bp = model.update(x.copy(), p.copy(), z)
        for i in range(n):
            s = model.h @ p[i] @ model.h.T + model.r
            k = p[i] @ model.h.T @ np.linalg.inv(s)
            xi = x[i] + (k @ (z[i] - model.h @ x[i]))
            ikh = np.eye(2) - k @ model.h
            pi = ikh @ p[i] @ ikh.T + k @ model.r @ k.T
            assert np.allclose(bx[i], xi, atol=1e-4)
            assert np.allclose(bp[i], pi, atol=1e-4)

    def test_measurement_shape_checked(self):
        model = constant_velocity_model(dim=2)
        x = np.zeros((5, 4))
        p = np.tile(np.eye(4), (5, 1, 1))
        with pytest.raises(ValueError):
            model.update(x, p, np.zeros((5, 3)))


class TestSimulation:
    def test_shapes_and_determinism(self):
        model = constant_velocity_model(dim=2)
        s1, m1 = simulate_tracks(model, 10, 5, seed=7)
        s2, m2 = simulate_tracks(model, 10, 5, seed=7)
        assert s1.shape == (5, 10, 4)
        assert m1.shape == (5, 10, 2)
        assert np.array_equal(s1, s2) and np.array_equal(m1, m2)

    def test_invalid_args(self):
        model = constant_velocity_model()
        with pytest.raises(ValueError):
            simulate_tracks(model, 0, 5)
