"""Adaptive-batching solve service (repro.serve)."""

import asyncio
import concurrent.futures
import json

import numpy as np
import pytest
import scipy.linalg

from repro.autotune.dispatch import TunedDispatcher
from repro.core.config import KernelConfig
from repro.serve import (
    AdaptiveBatcher,
    BatchExecutor,
    Histogram,
    NotPositiveDefiniteError,
    PendingRequest,
    RequestTimeout,
    ServeClient,
    ServeMetrics,
    ServePolicy,
    ServiceClosed,
    ServiceOverloaded,
    SolveBroker,
    replay_trace,
    run_demo,
    synthetic_trace,
)
from repro.utils.spd import random_spd_batch


def _spd(n: int, seed: int = 0) -> np.ndarray:
    return random_spd_batch(1, n, seed=seed)[0]


def _non_spd(n: int) -> np.ndarray:
    a = _spd(n, seed=99)
    a[n // 2, n // 2] = -100.0
    return a


def _request(seq, a, kind="factor", b=None, enqueued_at=0.0):
    return PendingRequest(
        seq=seq, kind=kind, a=a, b=b, future=None, enqueued_at=enqueued_at
    )


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------


class TestServePolicy:
    def test_defaults_validate(self):
        ServePolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_batch": 0},
            {"max_delay_s": 0.0},
            {"max_queue_depth": -1},
            {"request_timeout_s": 0.0},
            {"tick_s": -1.0},
            {"snapshot_interval_s": 0.0},
            {"snapshot_interval_s": -2.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServePolicy(**kwargs)

    def test_threshold_snaps_down_to_whole_chunks(self):
        policy = ServePolicy(target_batch=300)
        cfg = KernelConfig(n=8, chunked=True, chunk_size=128)
        assert policy.flush_threshold(cfg) == 256

    def test_threshold_never_below_one_chunk(self):
        policy = ServePolicy(target_batch=10)
        cfg = KernelConfig(n=8, chunked=True, chunk_size=64)
        assert policy.flush_threshold(cfg) == 64

    def test_non_chunked_uses_target_directly(self):
        policy = ServePolicy(target_batch=300)
        cfg = KernelConfig(n=8, chunked=False)
        assert policy.flush_threshold(cfg) == 300

    def test_snap_disabled(self):
        policy = ServePolicy(target_batch=300, snap_to_chunk=False)
        cfg = KernelConfig(n=8, chunked=True, chunk_size=128)
        assert policy.flush_threshold(cfg) == 300

    def test_flush_interval_defaults_to_quarter_deadline(self):
        assert ServePolicy(max_delay_s=0.008).flush_interval() == pytest.approx(0.002)
        assert ServePolicy(tick_s=0.5).flush_interval() == 0.5


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestHistogram:
    def test_moments_are_exact(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0 and h.max == 4.0

    def test_percentiles(self):
        h = Histogram()
        for v in range(101):
            h.observe(float(v))
        assert h.percentile(0) == 0.0
        assert h.percentile(50) == pytest.approx(50.0)
        assert h.percentile(100) == 100.0

    def test_decimation_keeps_memory_bounded(self):
        h = Histogram(max_samples=64)
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000
        assert len(h._samples) < 64
        # The thinned sample still spans the distribution.
        assert h.percentile(50) == pytest.approx(5000, rel=0.2)

    def test_empty_histogram(self):
        h = Histogram()
        assert h.mean == 0.0 and h.percentile(95) == 0.0
        assert h.min == 0.0 and h.max == 0.0


class TestHistogramMerge:
    def test_merge_is_exact_for_moments(self):
        a, b = Histogram(), Histogram()
        for v in (1.0, 2.0, 3.0):
            a.observe(v)
        for v in (10.0, 20.0):
            b.observe(v)
        out = a.merge(b)
        assert out is a  # in place, chainable
        assert a.count == 5
        assert a.total == pytest.approx(36.0)
        assert a.min == 1.0 and a.max == 20.0
        assert a.mean == pytest.approx(7.2)

    def test_merge_empty_sides(self):
        a, b = Histogram(), Histogram()
        a.observe(5.0)
        a.merge(b)  # empty right side: nothing changes
        assert a.count == 1 and a.min == 5.0 and a.max == 5.0
        b.merge(a)  # empty left side: adopts the right's extrema
        assert b.count == 1 and b.min == 5.0 and b.max == 5.0

    def test_merge_rejects_non_histograms(self):
        with pytest.raises(TypeError):
            Histogram().merge([1.0, 2.0])

    def test_merge_with_mismatched_strides(self):
        # Left side decimated hard (stride > 1), right side fresh.
        a = Histogram(max_samples=32)
        for v in range(1000):
            a.observe(float(v))
        assert a._stride > 1
        b = Histogram(max_samples=32)
        for v in range(2000, 2010):
            b.observe(float(v))
        assert b._stride == 1
        a.merge(b)
        assert a.count == 1010
        assert a.total == pytest.approx(sum(range(1000)) + sum(range(2000, 2010)))
        assert a.min == 0.0 and a.max == 2009.0
        # Retained sample stays bounded and spans both sources.
        assert len(a._samples) < a.max_samples
        assert a.percentile(100) >= 1000.0

    def test_merge_respects_left_bound_and_keeps_observing(self):
        a = Histogram(max_samples=16)
        b = Histogram(max_samples=4096)
        for v in range(500):
            b.observe(float(v))
        a.merge(b)
        assert len(a._samples) < a.max_samples
        # Post-merge observation still decimates against a's own bound.
        for v in range(5000):
            a.observe(float(v))
        assert len(a._samples) < a.max_samples
        assert a.count == 5500

    def test_multi_shard_aggregation(self):
        # The use case: fold per-shard histograms into a fleet view.
        shards = [Histogram() for _ in range(4)]
        for i, shard in enumerate(shards):
            for v in range(100):
                shard.observe(float(v + i * 100))
        total = Histogram()
        for shard in shards:
            total.merge(shard)
        assert total.count == 400
        assert total.min == 0.0 and total.max == 399.0
        assert total.percentile(50) == pytest.approx(200.0, rel=0.15)


class TestHistogramDecimationEdges:
    def test_percentiles_survive_multiple_halvings(self):
        h = Histogram(max_samples=32)
        for v in range(100_000):
            h.observe(float(v))
        assert h._stride >= 8  # several halvings happened
        assert h.count == 100_000
        assert h.percentile(50) == pytest.approx(50_000, rel=0.25)
        assert h.percentile(0) <= h.percentile(50) <= h.percentile(100)

    def test_minimum_max_samples(self):
        h = Histogram(max_samples=2)
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000
        assert len(h._samples) <= 2
        assert h.min == 0.0 and h.max == 999.0
        assert 0.0 <= h.percentile(50) <= 999.0
        with pytest.raises(ValueError):
            Histogram(max_samples=1)

    @pytest.mark.parametrize("order", ["ascending", "descending", "sawtooth"])
    def test_percentiles_monotone_under_adversarial_orders(self, order):
        values = [float(v) for v in range(20_000)]
        if order == "descending":
            values.reverse()
        elif order == "sawtooth":
            # Alternate extremes so naive thinning would skew badly.
            lo, hi = values[:10_000], values[10_000:][::-1]
            values = [v for pair in zip(lo, hi) for v in pair]
        h = Histogram(max_samples=64)
        for v in values:
            h.observe(v)
        p50, p95 = h.percentile(50), h.percentile(95)
        assert p50 <= p95 <= h.max
        assert h.min <= p50


class TestServeMetrics:
    def test_accounting_balances(self):
        m = ServeMetrics()
        for _ in range(5):
            m.record_submit(0)
        m.record_completion()
        m.record_completion()
        m.record_failure()
        m.record_timeout()
        m.record_shed()
        assert m.counters["submitted"] == 5
        assert m.unaccounted == 0

    def test_report_carries_the_headline_metrics(self):
        m = ServeMetrics()
        m.record_submit(3)
        m.record_flush(size=32, threshold=64, reason="deadline", gflops=12.0,
                       wait_times_s=[0.001, 0.002])
        text = m.report()
        for label in ("queue depth", "batch fill", "coalesce latency",
                      "GFLOP/s", "unaccounted"):
            assert label in text

    def test_as_json_round_trips(self):
        m = ServeMetrics()
        m.record_submit(1)
        m.record_completion()
        data = json.loads(m.as_json())
        assert data["counters"]["submitted"] == 1
        assert data["unaccounted"] == 0
        assert data["histograms"]["queue_depth"]["count"] == 1

    def test_unknown_flush_reason_rejected(self):
        with pytest.raises(ValueError):
            ServeMetrics().record_flush(1, 1, "meteor", 0.0)

    def test_unknown_flush_reason_leaves_counters_consistent(self):
        """Regression: validation must precede every mutation.

        record_flush once bumped ``flushes`` (and the shadow counters)
        before checking ``reason``, so a bad reason left the metrics in a
        state where ``flushes != full + deadline + drain``.
        """
        m = ServeMetrics()
        m.record_flush(size=2, threshold=4, reason="full", gflops=1.0)
        before_counters = dict(m.counters)
        before_hist_counts = {
            name: hist.count for name, hist in m.histograms.items()
        }
        with pytest.raises(ValueError):
            m.record_flush(
                size=8,
                threshold=8,
                reason="meteor",
                gflops=2.0,
                wait_times_s=[0.001],
                service_s=0.002,
                shadow_checked=8,
                shadow_mismatch=1,
            )
        assert m.counters == before_counters
        assert {n: h.count for n, h in m.histograms.items()} == before_hist_counts
        reasons = sum(
            m.counters[k]
            for k in ("flushes_full", "flushes_deadline", "flushes_drain")
        )
        assert m.counters["flushes"] == reasons

    def test_flush_service_time_and_shadow_accounting(self):
        m = ServeMetrics()
        m.record_flush(
            size=4,
            threshold=4,
            reason="full",
            gflops=1.0,
            service_s=0.002,
            shadow_checked=4,
            shadow_mismatch=1,
        )
        assert m.counters["shadow_checked"] == 4
        assert m.counters["shadow_mismatch"] == 1
        assert m.histograms["flush_service_ms"].count == 1
        assert m.histograms["flush_service_ms"].mean == pytest.approx(2.0)
        assert "service time" in m.report()


# ----------------------------------------------------------------------
# Batcher
# ----------------------------------------------------------------------


class TestAdaptiveBatcher:
    def _batcher(self, threshold=4):
        return AdaptiveBatcher(threshold_for=lambda n: threshold)

    def test_buckets_by_matrix_dimension(self):
        b = self._batcher()
        b.add(_request(1, _spd(8)))
        b.add(_request(2, _spd(16)))
        b.add(_request(3, _spd(8, seed=1)))
        assert sorted(b.sizes()) == [8, 16]
        assert b.pending == 3
        assert len(b.pop(8)) == 2
        assert b.pending == 1

    def test_bucket_reports_full_at_threshold(self):
        b = self._batcher(threshold=2)
        bucket = b.add(_request(1, _spd(8)))
        assert not bucket.full
        bucket = b.add(_request(2, _spd(8, seed=1)))
        assert bucket.full

    def test_deadline_due_uses_oldest_request(self):
        b = self._batcher()
        b.add(_request(1, _spd(8), enqueued_at=10.0))
        b.add(_request(2, _spd(8, seed=1), enqueued_at=19.9))
        due = b.pop_due(now=20.0, max_delay_s=5.0)
        assert [bucket.n for bucket in due] == [8]
        assert b.pending == 0

    def test_pop_due_leaves_young_buckets(self):
        b = self._batcher()
        b.add(_request(1, _spd(8), enqueued_at=19.0))
        assert b.pop_due(now=20.0, max_delay_s=5.0) == []
        assert b.pending == 1

    def test_discard_removes_queued_request_once(self):
        b = self._batcher()
        req = _request(1, _spd(8))
        b.add(req)
        assert b.discard(req)
        assert b.pending == 0
        assert not b.discard(req)

    def test_pop_all_drains_everything(self):
        b = self._batcher()
        b.add(_request(1, _spd(8)))
        b.add(_request(2, _spd(16)))
        buckets = b.pop_all()
        assert {bucket.n for bucket in buckets} == {8, 16}
        assert b.pending == 0

    def test_threshold_cached_per_size(self):
        calls = []

        def threshold_for(n):
            calls.append(n)
            return 8

        b = AdaptiveBatcher(threshold_for=threshold_for)
        b.add(_request(1, _spd(8)))
        b.add(_request(2, _spd(8, seed=1)))
        assert calls == [8]

    def test_nonpositive_threshold_rejected(self):
        b = AdaptiveBatcher(threshold_for=lambda n: 0)
        with pytest.raises(ValueError):
            b.add(_request(1, _spd(8)))


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------


class TestBatchExecutor:
    def test_mixed_factor_and_solve_requests(self):
        ex = BatchExecutor()
        n = 8
        a1, a2 = _spd(n, seed=1), _spd(n, seed=2)
        b2 = np.arange(n, dtype=np.float32)
        report = ex.execute(
            [_request(1, a1), _request(2, a2, kind="solve", b=b2)], reason="full"
        )
        (r1, l1), (r2, x2) = report.outcomes
        assert np.allclose(np.tril(l1) @ np.tril(l1).T, a1, atol=1e-3)
        assert np.allclose(a2 @ x2, b2, atol=1e-2)
        assert report.gflops > 0
        assert report.size == 2

    def test_non_spd_fails_only_its_own_request(self):
        ex = BatchExecutor()
        healthy = _spd(8, seed=3)
        report = ex.execute(
            [_request(1, healthy), _request(2, _non_spd(8))], reason="deadline"
        )
        (_, ok), (_, bad) = report.outcomes
        assert isinstance(ok, np.ndarray)
        assert isinstance(bad, NotPositiveDefiniteError)
        assert bad.info > 0
        assert report.retried == 1 and report.rescued == 0

    def test_retry_can_be_disabled(self):
        ex = BatchExecutor(retry_failed_solo=False)
        report = ex.execute([_request(1, _non_spd(8))], reason="full")
        assert report.retried == 0
        assert isinstance(report.outcomes[0][1], NotPositiveDefiniteError)

    def test_solve_groups_by_rhs_shape(self):
        ex = BatchExecutor()
        n = 6
        a1, a2 = _spd(n, seed=4), _spd(n, seed=5)
        b1 = np.ones(n, dtype=np.float32)
        b2 = np.ones((n, 3), dtype=np.float32)
        report = ex.execute(
            [
                _request(1, a1, kind="solve", b=b1),
                _request(2, a2, kind="solve", b=b2),
            ],
            reason="full",
        )
        (_, x1), (_, x2) = report.outcomes
        assert x1.shape == (n,)
        assert x2.shape == (n, 3)
        assert np.allclose(a1 @ x1, b1, atol=1e-2)
        assert np.allclose(a2 @ x2, b2, atol=1e-2)

    def test_failed_factor_interleaved_with_solves_still_batches(self):
        """A failing factor lane must not leave any outcome unresolved."""
        ex = BatchExecutor(retry_failed_solo=False)
        n = 8
        a1, a2, a3 = _spd(n, seed=11), _spd(n, seed=12), _spd(n, seed=13)
        b1 = np.ones(n, dtype=np.float32)
        b3 = np.ones((n, 2), dtype=np.float32)
        report = ex.execute(
            [
                _request(1, a1, kind="solve", b=b1),
                _request(2, _non_spd(n)),
                _request(3, a3, kind="solve", b=b3),
                _request(4, a2),
            ],
            reason="full",
        )
        for _, outcome in report.outcomes:
            assert outcome is not None
        (_, x1), (_, bad), (_, x3), (_, l2) = report.outcomes
        assert np.allclose(a1 @ x1, b1, atol=1e-2)
        assert isinstance(bad, NotPositiveDefiniteError)
        assert np.allclose(a3 @ x3, b3, atol=1e-2)
        assert np.allclose(np.tril(l2) @ np.tril(l2).T, a2, atol=1e-2)

    def test_fill_ratio(self):
        ex = BatchExecutor()
        report = ex.execute([_request(1, _spd(8))], reason="deadline", threshold=4)
        assert report.fill == pytest.approx(0.25)

    def test_empty_bucket_rejected(self):
        with pytest.raises(ValueError):
            BatchExecutor().execute([], reason="full")

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValueError):
            BatchExecutor().execute(
                [_request(1, _spd(8)), _request(2, _spd(16))], reason="full"
            )

    def test_default_config_without_dispatcher(self):
        cfg = BatchExecutor().config_for(12)
        assert cfg.n == 12

    def test_warmup_compiles_without_error(self):
        BatchExecutor().warmup([4, 4, 6])


# ----------------------------------------------------------------------
# Broker (asyncio, end to end)
# ----------------------------------------------------------------------


def _fast_policy(**overrides):
    defaults = dict(target_batch=32, max_delay_s=0.005, request_timeout_s=5.0)
    defaults.update(overrides)
    return ServePolicy(**defaults)


class TestSolveBroker:
    def test_end_to_end_mixed_sizes_against_lapack(self):
        """N concurrent clients, mixed sizes/kinds, scipy ground truth."""

        async def scenario():
            async with SolveBroker(policy=_fast_policy()) as broker:
                jobs = []
                expected = []
                for i in range(24):
                    n = (6, 10, 14)[i % 3]
                    a = _spd(n, seed=i)
                    if i % 2:
                        b = np.linspace(1.0, 2.0, n).astype(np.float32)
                        jobs.append(broker.solve(a, b))
                        expected.append(("solve", a, b))
                    else:
                        jobs.append(broker.factor(a))
                        expected.append(("factor", a, None))
                results = await asyncio.gather(*jobs)
                metrics = broker.metrics
            for (kind, a, b), result in zip(expected, results):
                if kind == "factor":
                    truth = scipy.linalg.cholesky(a.astype(np.float64), lower=True)
                    assert np.allclose(np.tril(result), truth, atol=1e-2)
                else:
                    truth = scipy.linalg.solve(
                        a.astype(np.float64), b.astype(np.float64), assume_a="pos"
                    )
                    assert np.allclose(result, truth, atol=1e-2)
            return metrics

        metrics = asyncio.run(scenario())
        assert metrics.counters["submitted"] == 24
        assert metrics.counters["completed"] == 24
        assert metrics.unaccounted == 0
        assert metrics.histograms["batch_fill"].mean > 0

    def test_non_spd_fails_only_its_own_future(self):
        async def scenario():
            async with SolveBroker(policy=_fast_policy()) as broker:
                good = [broker.factor(_spd(8, seed=i)) for i in range(5)]
                bad = broker.factor(_non_spd(8))
                results = await asyncio.gather(*good, bad, return_exceptions=True)
                return results, broker.metrics

        results, metrics = asyncio.run(scenario())
        *good_results, bad_result = results
        assert all(isinstance(r, np.ndarray) for r in good_results)
        assert isinstance(bad_result, NotPositiveDefiniteError)
        assert metrics.counters["completed"] == 5
        assert metrics.counters["failed"] == 1
        assert metrics.counters["retried"] == 1
        assert metrics.unaccounted == 0

    def test_full_bucket_flushes_without_waiting_for_deadline(self):
        async def scenario():
            policy = _fast_policy(target_batch=32, max_delay_s=30.0)
            async with SolveBroker(policy=policy) as broker:
                jobs = [
                    asyncio.ensure_future(broker.factor(_spd(8, seed=i)))
                    for i in range(32)
                ]
                done, pending = await asyncio.wait(jobs, timeout=10.0)
                assert not pending
                return broker.metrics

        metrics = asyncio.run(scenario())
        assert metrics.counters["flushes_full"] == 1
        assert metrics.histograms["batch_fill"].max == pytest.approx(1.0)

    def test_deadline_flushes_partial_bucket(self):
        async def scenario():
            policy = _fast_policy(target_batch=512, max_delay_s=0.01)
            async with SolveBroker(policy=policy) as broker:
                result = await broker.factor(_spd(8))
                return result, broker.metrics

        result, metrics = asyncio.run(scenario())
        assert isinstance(result, np.ndarray)
        assert metrics.counters["flushes_deadline"] == 1

    def test_overload_sheds_with_service_overloaded(self):
        async def scenario():
            policy = _fast_policy(
                target_batch=512, max_delay_s=30.0, max_queue_depth=2,
                request_timeout_s=None,
            )
            broker = SolveBroker(policy=policy)
            async with broker:
                jobs = [
                    asyncio.ensure_future(broker.factor(_spd(8, seed=i)))
                    for i in range(3)
                ]
                await asyncio.sleep(0.01)  # let all three submit
                shed = [j for j in jobs if j.done() and j.exception()]
                assert len(shed) == 1
                assert isinstance(shed[0].exception(), ServiceOverloaded)
                metrics = broker.metrics
            # close() drains the two queued requests
            await asyncio.gather(
                *(j for j in jobs if not j.done()), return_exceptions=True
            )
            return metrics

        metrics = asyncio.run(scenario())
        assert metrics.counters["shed"] == 1
        assert metrics.counters["flushes_drain"] == 1
        assert metrics.unaccounted == 0

    def test_request_timeout_abandons_queued_request(self):
        async def scenario():
            policy = _fast_policy(
                target_batch=512, max_delay_s=30.0, request_timeout_s=0.02
            )
            async with SolveBroker(policy=policy) as broker:
                with pytest.raises(RequestTimeout):
                    await broker.factor(_spd(8))
                return broker.metrics

        metrics = asyncio.run(scenario())
        assert metrics.counters["timed_out"] == 1
        assert metrics.counters["failed"] == 1
        assert metrics.unaccounted == 0

    def test_closed_broker_rejects_submissions(self):
        async def scenario():
            broker = SolveBroker(policy=_fast_policy())
            await broker.start()
            await broker.close()
            with pytest.raises(ServiceClosed):
                await broker.factor(_spd(8))

        asyncio.run(scenario())

    def test_invalid_inputs_rejected_before_queueing(self):
        async def scenario():
            async with SolveBroker(policy=_fast_policy()) as broker:
                with pytest.raises(ValueError):
                    await broker.factor(np.zeros((3, 4)))
                with pytest.raises(ValueError):
                    await broker.solve(_spd(4), np.ones(5))
                with pytest.raises(ValueError):
                    await broker.submit("factor", _spd(4), np.ones(4))
                with pytest.raises(ValueError):
                    await broker.submit("invert", _spd(4))
                return broker.metrics

        metrics = asyncio.run(scenario())
        assert metrics.counters["submitted"] == 0


class TestDispatcherIntegration:
    @pytest.fixture(scope="class")
    def dispatcher(self):
        return TunedDispatcher.tune((8,), batch=2048, nbs=(2, 4), chunkings=(32,))

    def test_executor_routes_through_tuned_table(self, dispatcher):
        ex = BatchExecutor(dispatcher=dispatcher)
        assert ex.config_for(8).nb == dispatcher.entries[8].nb

    def test_served_results_match_for_interpolated_size(self, dispatcher):
        # n=12 is not in the table; the nearest winner's parameters apply.
        with ServeClient(policy=_fast_policy(), dispatcher=dispatcher) as client:
            a = _spd(12, seed=6)
            l = client.factor(a)
        assert np.allclose(np.tril(l) @ np.tril(l).T, a, atol=1e-2)

    def test_threshold_snaps_to_tuned_chunk(self, dispatcher):
        broker = SolveBroker(
            policy=ServePolicy(target_batch=100), dispatcher=dispatcher
        )
        chunk = dispatcher.config_for(8).chunk_size
        assert broker.batcher.threshold(8) == (100 // chunk) * chunk


# ----------------------------------------------------------------------
# Synchronous client
# ----------------------------------------------------------------------


class TestServeClient:
    def test_threaded_clients_share_batches(self):
        policy = _fast_policy(target_batch=32, max_delay_s=0.05)
        with ServeClient(policy=policy) as client:
            def one(i):
                n = 8 if i % 2 else 12
                a = _spd(n, seed=i)
                if i % 3:
                    return a, None, client.factor(a)
                b = np.ones(n, dtype=np.float32)
                return a, b, client.solve(a, b)

            with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
                outcomes = list(pool.map(one, range(16)))
            metrics = client.metrics

        for a, b, result in outcomes:
            if b is None:
                assert np.allclose(np.tril(result) @ np.tril(result).T, a, atol=1e-2)
            else:
                assert np.allclose(a @ result, b, atol=1e-2)
        assert metrics.counters["completed"] == 16
        assert metrics.unaccounted == 0
        # Concurrent submissions coalesced: fewer flushes than requests.
        assert metrics.counters["flushes"] < 16

    def test_submit_returns_concurrent_future(self):
        with ServeClient(policy=_fast_policy()) as client:
            fut = client.submit("factor", _spd(8))
            assert isinstance(fut, concurrent.futures.Future)
            result = fut.result(timeout=10)
            assert result.shape == (8, 8)

    def test_close_is_idempotent(self):
        client = ServeClient(policy=_fast_policy())
        client.close()
        client.close()

    def test_use_after_close_raises_service_closed(self):
        client = ServeClient(policy=_fast_policy())
        client.close()
        with pytest.raises(ServiceClosed):
            client.factor(_spd(8))


# ----------------------------------------------------------------------
# Synthetic traffic
# ----------------------------------------------------------------------


class TestSyntheticTraffic:
    def test_trace_is_deterministic_and_sorted(self):
        t1 = synthetic_trace(requests=50, seed=5)
        t2 = synthetic_trace(requests=50, seed=5)
        assert t1 == t2
        assert all(a.at <= b.at for a, b in zip(t1, t1[1:]))
        assert t1[0].at == 0.0

    def test_trace_respects_size_palette(self):
        trace = synthetic_trace(requests=64, ns=(4, 6), seed=1)
        assert {e.n for e in trace} <= {4, 6}

    def test_replay_accounts_for_every_request(self):
        trace = synthetic_trace(
            requests=60, ns=(6, 10), rate_hz=50000.0, nonspd_fraction=0.05, seed=2
        )
        policy = ServePolicy(target_batch=32, max_delay_s=0.003)
        summary = replay_trace(trace, policy=policy)
        m = summary.metrics
        assert m.counters["submitted"] == 60
        assert m.unaccounted == 0
        assert summary.completed + summary.failed == 60
        assert m.histograms["batch_fill"].mean > 0

    def test_run_demo_report_has_headline_metrics(self):
        report, summary = run_demo(requests=40, ns=(6, 8), rate_hz=50000.0, seed=4)
        for label in ("queue depth", "batch fill", "coalesce latency",
                      "GFLOP/s", "unaccounted"):
            assert label in report
        assert summary.metrics.unaccounted == 0

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            synthetic_trace(requests=0)
        with pytest.raises(ValueError):
            synthetic_trace(rate_hz=0.0)


# ----------------------------------------------------------------------
# Property-based invariants (hypothesis)
# ----------------------------------------------------------------------

from hypothesis import given, settings, strategies as st  # noqa: E402


def _tiny_request(seq, n, enqueued_at=0.0):
    return PendingRequest(
        seq=seq,
        kind="factor",
        a=np.zeros((n, n), dtype=np.float32),
        b=None,
        future=None,
        enqueued_at=enqueued_at,
    )


#: One batcher operation: (op, operand, matrix size).  The operand picks
#: which live request to discard or which bucket to pop.
_BATCHER_OPS = st.lists(
    st.tuples(
        st.sampled_from(["add", "pop", "pop_due", "discard"]),
        st.integers(0, 7),
        st.sampled_from([4, 6, 8]),
    ),
    max_size=80,
)


class TestBatcherProperties:
    @given(ops=_BATCHER_OPS)
    def test_no_request_lost_or_duplicated(self, ops):
        """Conservation: every queued seq leaves the batcher exactly once.

        Drives the batcher through an arbitrary interleaving of
        add/pop/pop_due/discard and checks the model (a dict of live
        seqs) stays in lockstep — nothing vanishes, nothing doubles.
        """
        batcher = AdaptiveBatcher(lambda n: 3)
        live = {}
        removed = []
        next_seq = 0
        t = 0.0

        def _remove(request):
            assert request.seq in live, "request popped twice"
            del live[request.seq]
            removed.append(request.seq)

        for op, operand, n in ops:
            t += 1.0
            if op == "add":
                request = _tiny_request(next_seq, n, enqueued_at=t)
                batcher.add(request)
                live[next_seq] = request
                next_seq += 1
            elif op == "pop":
                for request in batcher.pop(n):
                    _remove(request)
            elif op == "pop_due":
                # A zero deadline makes every non-empty bucket due.
                for bucket in batcher.pop_due(t, 0.0):
                    for request in bucket.requests:
                        _remove(request)
            elif op == "discard" and live:
                target = list(live.values())[operand % len(live)]
                if batcher.discard(target):
                    _remove(target)
            assert batcher.pending == len(live)

        for bucket in batcher.pop_all():
            for request in bucket.requests:
                _remove(request)
        assert batcher.pending == 0
        assert live == {}
        assert sorted(removed) == list(range(next_seq))

    @given(ops=_BATCHER_OPS)
    def test_buckets_stay_size_pure(self, ops):
        """Every flush the batcher hands out is single-dimension."""
        batcher = AdaptiveBatcher(lambda n: 4)
        next_seq = 0
        t = 0.0
        for op, _, n in ops:
            t += 1.0
            if op == "add":
                batcher.add(_tiny_request(next_seq, n, enqueued_at=t))
                next_seq += 1
            elif op == "pop":
                assert all(r.n == n for r in batcher.pop(n))
            elif op == "pop_due":
                for bucket in batcher.pop_due(t, 0.5):
                    assert all(r.n == bucket.n for r in bucket.requests)
        for bucket in batcher.pop_all():
            assert all(r.n == bucket.n for r in bucket.requests)

    @given(
        target=st.integers(min_value=1, max_value=1024),
        chunk=st.sampled_from([32, 64, 128, 256, 512]),
    )
    def test_flush_threshold_snaps_to_whole_chunks(self, target, chunk):
        """Snapped thresholds are whole chunks, never below one chunk."""
        policy = ServePolicy(target_batch=target)
        cfg = KernelConfig(n=8, chunked=True, chunk_size=chunk)
        threshold = policy.flush_threshold(cfg)
        assert threshold % chunk == 0
        assert threshold >= chunk
        assert threshold <= max(target, chunk)
        # Snapping never rounds *up* past the target once a full chunk fits.
        if target >= chunk:
            assert threshold <= target

    @given(
        offsets=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        delay=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    )
    def test_pop_due_takes_exactly_the_expired_buckets(self, offsets, delay):
        """Deadline ordering: due iff the bucket's *oldest* wait >= delay."""
        batcher = AdaptiveBatcher(lambda n: 10_000)
        oldest = {}
        for i, offset in enumerate(sorted(offsets)):
            n = 4 + 2 * (i % 3)  # spread across a few buckets
            batcher.add(_tiny_request(i, n, enqueued_at=offset))
            oldest.setdefault(n, offset)
        now = 10.0
        due = {bucket.n for bucket in batcher.pop_due(now, delay)}
        expected = {n for n, at in oldest.items() if now - at >= delay}
        assert due == expected
        assert set(batcher.sizes()) == set(oldest) - due


class TestReplayProperties:
    @settings(max_examples=5, deadline=None)
    @given(
        shape=st.lists(
            st.tuples(
                st.sampled_from([4, 6]),
                st.booleans(),  # solve?
                st.booleans(),  # nonspd?
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_replay_conserves_every_request(self, shape):
        """End to end: submitted == completed + failed + shed, any trace."""
        from repro.serve.trace import RecordedEvent, derive_seed

        events = [
            RecordedEvent(
                at=round(i * 1e-4, 6),
                op="solve" if solve else "factor",
                n=n,
                nrhs=1 if solve else 0,
                seed=derive_seed(13, i),
                nonspd=nonspd,
            )
            for i, (n, solve, nonspd) in enumerate(shape)
        ]
        policy = ServePolicy(
            target_batch=4, max_delay_s=0.002, request_timeout_s=None
        )
        summary = replay_trace(events, policy=policy)
        m = summary.metrics
        assert m.counters["submitted"] == len(events)
        assert summary.completed + summary.failed + summary.shed == len(events)
        assert m.unaccounted == 0
