"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune.space import ParameterSpace
from repro.autotune.sweep import run_sweep


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def tiny_sweep():
    """A small but fully crossed sweep dataset shared across analysis tests.

    Covers every tuning dimension (including both cache preferences) over
    three sizes so importance and forest tests have signal to find.
    """
    space = ParameterSpace(
        ns=(4, 8, 16, 24),
        nbs=(1, 2, 4, 8),
        chunkings=(None, 32, 64, 512),
        cache_prefs=("l1", "shared"),
    )
    return run_sweep(space, batch=4096)
