"""Tuned dispatch (repro.autotune.dispatch)."""

import numpy as np
import pytest

from repro.autotune.dispatch import TableEntry, TunedDispatcher
from repro.autotune.space import ParameterSpace
from repro.autotune.sweep import run_sweep
from repro.utils.errors import factorization_error
from repro.utils.spd import random_spd_batch


@pytest.fixture(scope="module")
def dispatcher():
    space = ParameterSpace(
        ns=(8, 16, 32),
        nbs=(1, 2, 4, 8),
        chunkings=(None, 32, 512),
        cache_prefs=("l1",),
    )
    return TunedDispatcher.from_dataset(run_sweep(space, batch=16384))


class TestTableConstruction:
    def test_entries_are_the_sweep_winners(self, dispatcher):
        assert set(dispatcher.entries) == {8, 16, 32}
        for entry in dispatcher.entries.values():
            assert entry.gflops > 0

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            TunedDispatcher({})

    def test_tune_convenience(self):
        d = TunedDispatcher.tune((8,), batch=2048, nbs=(2, 4), chunkings=(32,))
        assert 8 in d.entries


class TestLookup:
    def test_exact_size(self, dispatcher):
        cfg = dispatcher.config_for(16)
        assert cfg.n == 16
        assert cfg.nb == dispatcher.entries[16].nb

    def test_interpolates_unmeasured_size(self, dispatcher):
        cfg = dispatcher.config_for(12)
        assert cfg.n == 12
        assert cfg.effective_nb <= 12

    def test_extrapolates_beyond_table(self, dispatcher):
        cfg = dispatcher.config_for(48)
        assert cfg.n == 48

    def test_fast_math_flag(self, dispatcher):
        assert dispatcher.config_for(8, fast_math=True).fast_math

    def test_invalid_n(self, dispatcher):
        with pytest.raises(ValueError):
            dispatcher.config_for(0)


class TestDispatchedFactorization:
    def test_correct_for_tuned_size(self, dispatcher):
        a = random_spd_batch(64, 16, seed=1)
        l = dispatcher.batch_cholesky(a)
        assert factorization_error(a, l) < 1e-5

    def test_correct_for_interpolated_size(self, dispatcher):
        a = random_spd_batch(64, 11, seed=2)
        l = dispatcher.batch_cholesky(a)
        assert factorization_error(a, l) < 1e-5

    def test_tuned_beats_default_where_it_matters(self, dispatcher):
        # At n=32 tuning matters (nb, layout); the tuned config must not
        # lose to the library default in the model.
        assert dispatcher.speedup_over_default(32) >= 1.0

    def test_shape_validation(self, dispatcher):
        with pytest.raises(ValueError):
            dispatcher.batch_cholesky(np.zeros((4, 4), np.float32))


class TestPersistence:
    def test_save_load_round_trip(self, dispatcher, tmp_path):
        path = tmp_path / "table.json"
        dispatcher.save(path)
        loaded = TunedDispatcher.load(path)
        assert loaded.entries == dispatcher.entries

    def test_summary_renders(self, dispatcher):
        text = dispatcher.summary()
        assert "gflops" in text
        assert "16" in text


class TestTableEntry:
    def test_config_round_trip(self):
        entry = TableEntry(n=8, nb=4, looking="left", chunked=True,
                           chunk_size=64, unroll="full", gflops=123.0)
        cfg = entry.config()
        assert cfg.n == 8 and cfg.chunk_size == 64
        assert cfg.looking.value == "left"
