"""Tuned dispatch (repro.autotune.dispatch)."""

import json

import numpy as np
import pytest

from repro.autotune.dispatch import SCHEMA_VERSION, TableEntry, TunedDispatcher
from repro.autotune.space import ParameterSpace
from repro.autotune.sweep import run_sweep
from repro.utils.errors import factorization_error
from repro.utils.spd import random_spd_batch


@pytest.fixture(scope="module")
def dispatcher():
    space = ParameterSpace(
        ns=(8, 16, 32),
        nbs=(1, 2, 4, 8),
        chunkings=(None, 32, 512),
        cache_prefs=("l1",),
    )
    return TunedDispatcher.from_dataset(run_sweep(space, batch=16384))


class TestTableConstruction:
    def test_entries_are_the_sweep_winners(self, dispatcher):
        assert set(dispatcher.entries) == {8, 16, 32}
        for entry in dispatcher.entries.values():
            assert entry.gflops > 0

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            TunedDispatcher({})

    def test_tune_convenience(self):
        d = TunedDispatcher.tune((8,), batch=2048, nbs=(2, 4), chunkings=(32,))
        assert 8 in d.entries


class TestLookup:
    def test_exact_size(self, dispatcher):
        cfg = dispatcher.config_for(16)
        assert cfg.n == 16
        assert cfg.nb == dispatcher.entries[16].nb

    def test_interpolates_unmeasured_size(self, dispatcher):
        cfg = dispatcher.config_for(12)
        assert cfg.n == 12
        assert cfg.effective_nb <= 12

    def test_extrapolates_beyond_table(self, dispatcher):
        cfg = dispatcher.config_for(48)
        assert cfg.n == 48

    def test_fast_math_flag(self, dispatcher):
        assert dispatcher.config_for(8, fast_math=True).fast_math

    def test_invalid_n(self, dispatcher):
        with pytest.raises(ValueError):
            dispatcher.config_for(0)


def _entry(n: int, nb: int, **overrides) -> TableEntry:
    fields = dict(
        n=n, nb=nb, looking="top", chunked=True, chunk_size=32,
        unroll="partial", gflops=100.0,
    )
    fields.update(overrides)
    return TableEntry(**fields)


class TestInterpolationEdges:
    """Nearest-entry borrowing at and beyond the table's boundaries."""

    @pytest.fixture()
    def hand_table(self):
        # Distinct parameters per entry so tests can tell whose config
        # an interpolated size borrowed.
        return TunedDispatcher({
            8: _entry(8, nb=2, looking="left"),
            16: _entry(16, nb=8, looking="right", chunked=False),
        })

    def test_below_smallest_entry_borrows_it(self, hand_table):
        cfg = hand_table.config_for(3)
        assert cfg.n == 3
        assert cfg.looking.value == "left"  # came from the n=8 entry

    def test_below_smallest_clips_nb_to_n(self, hand_table):
        cfg = hand_table.config_for(1)
        assert cfg.nb == 1  # n=8 entry has nb=2, clipped to n

    def test_above_largest_entry_borrows_it(self, hand_table):
        cfg = hand_table.config_for(64)
        assert cfg.n == 64
        assert cfg.looking.value == "right"  # came from the n=16 entry
        assert not cfg.chunked

    def test_above_largest_keeps_entry_nb(self, hand_table):
        # Clipping only shrinks: a larger n keeps the borrowed tile size.
        assert hand_table.config_for(64).nb == 8

    def test_equidistant_tie_breaks_to_smaller_n(self, hand_table):
        # n=12 is 4 away from both 8 and 16; the (distance, n) key makes
        # the tie deterministic in favour of the smaller entry.
        cfg = hand_table.config_for(12)
        assert cfg.looking.value == "left"
        assert cfg.nb == 2

    def test_exact_entry_is_not_interpolated(self, hand_table):
        cfg = hand_table.config_for(16)
        assert cfg.nb == 8 and cfg.looking.value == "right"


class TestDispatchedFactorization:
    def test_correct_for_tuned_size(self, dispatcher):
        a = random_spd_batch(64, 16, seed=1)
        l = dispatcher.batch_cholesky(a)
        assert factorization_error(a, l) < 1e-5

    def test_correct_for_interpolated_size(self, dispatcher):
        a = random_spd_batch(64, 11, seed=2)
        l = dispatcher.batch_cholesky(a)
        assert factorization_error(a, l) < 1e-5

    def test_tuned_beats_default_where_it_matters(self, dispatcher):
        # At n=32 tuning matters (nb, layout); the tuned config must not
        # lose to the library default in the model.
        assert dispatcher.speedup_over_default(32) >= 1.0

    def test_shape_validation(self, dispatcher):
        with pytest.raises(ValueError):
            dispatcher.batch_cholesky(np.zeros((4, 4), np.float32))


class TestPersistence:
    def test_save_load_round_trip(self, dispatcher, tmp_path):
        path = tmp_path / "table.json"
        dispatcher.save(path)
        loaded = TunedDispatcher.load(path)
        assert loaded.entries == dispatcher.entries

    def test_summary_renders(self, dispatcher):
        text = dispatcher.summary()
        assert "gflops" in text
        assert "16" in text

    def test_save_is_atomic_and_leaves_no_temp_files(self, dispatcher, tmp_path):
        path = tmp_path / "table.json"
        dispatcher.save(path)
        dispatcher.save(path)  # overwrite goes through the same rename
        assert [p.name for p in tmp_path.iterdir()] == ["table.json"]
        assert TunedDispatcher.load(path).entries == dispatcher.entries

    def test_saved_table_carries_schema_version(self, dispatcher, tmp_path):
        path = tmp_path / "table.json"
        dispatcher.save(path)
        data = json.loads(path.read_text())
        assert data["schema_version"] == SCHEMA_VERSION

    def test_load_rejects_unversioned_legacy_table(self, dispatcher, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps([e.__dict__ for e in dispatcher.entries.values()]))
        with pytest.raises(ValueError, match="schema_version"):
            TunedDispatcher.load(path)

    def test_load_rejects_future_schema_version(self, dispatcher, tmp_path):
        path = tmp_path / "table.json"
        dispatcher.save(path)
        data = json.loads(path.read_text())
        data["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="not\\s+supported"):
            TunedDispatcher.load(path)

    def test_load_rejects_malformed_entries(self, tmp_path):
        path = tmp_path / "table.json"
        path.write_text(json.dumps({
            "schema_version": SCHEMA_VERSION,
            "entries": [{"n": 8, "surprise": True}],
        }))
        with pytest.raises(ValueError, match="malformed"):
            TunedDispatcher.load(path)


class TestTableEntry:
    def test_config_round_trip(self):
        entry = TableEntry(n=8, nb=4, looking="left", chunked=True,
                           chunk_size=64, unroll="full", gflops=123.0)
        cfg = entry.config()
        assert cfg.n == 8 and cfg.chunk_size == 64
        assert cfg.looking.value == "left"
