"""SLA tiers, admission control, fair queuing, hedging — and their gates.

Covers ``repro.serve.admission`` end to end: tier policy parsing, token
buckets, cost-based tier-ordered shedding, weighted fair queuing, quota
recovery, gold-tier hedging on the sharded fabric (including a shard
kill mid-hedge), the v3 trace fields, the per-tier Prometheus page, the
tier-aware SLO/control plumbing, and the ``replay-check --tiers`` gate
with its committed baseline.
"""

import asyncio
import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.obs import (
    FlightRecorder,
    InMemorySink,
    Tracer,
    render_tier_prometheus,
    set_tracer,
)
from repro.serve import (
    SHED_ORDER,
    TIERS,
    AdmissionController,
    PendingRequest,
    QuotaExceeded,
    ServeMetrics,
    ServePolicy,
    ShardedBroker,
    SolveBroker,
    TierGate,
    TierPolicy,
    TierSpec,
    TokenBucket,
    compare_tiers,
    default_tier_policy,
    jain_index,
    load_report,
    make_admission,
    replay_trace,
    shed_rank,
    synthetic_trace,
    trace_sha256,
)
from repro.serve.admission import DEFAULT_TENANT
from repro.serve.batcher import AdaptiveBatcher
from repro.serve.trace import RecordedEvent, load_trace_file, save_trace
from repro.utils.spd import random_spd_batch

REPO = pathlib.Path(__file__).resolve().parent.parent
TRACES_DIR = REPO / "benchmarks" / "traces"
TIERS_BASELINE = REPO / "benchmarks" / "baselines" / "serve_replay_tiers_baseline.json"


def _spd(n: int, seed: int = 0) -> np.ndarray:
    return random_spd_batch(1, n, seed=seed)[0]


def _policy(**overrides) -> ServePolicy:
    defaults = dict(target_batch=16, max_delay_s=0.002, request_timeout_s=None)
    defaults.update(overrides)
    return ServePolicy(**defaults)


def _request(seq, n=8, tier="silver", tenant="default", vft=0.0) -> PendingRequest:
    return PendingRequest(
        seq=seq,
        kind="factor",
        a=np.zeros((n, n)),
        b=None,
        future=None,
        enqueued_at=0.0,
        tier=tier,
        tenant=tenant,
        vft=vft,
    )


# ----------------------------------------------------------------------
# Tier policy and specs
# ----------------------------------------------------------------------


class TestTierPolicy:
    def test_default_policy_names_and_shed_order(self):
        policy = default_tier_policy()
        assert policy.names() == TIERS == ("gold", "silver", "best_effort")
        assert SHED_ORDER == ("best_effort", "silver", "gold")
        assert shed_rank("best_effort") < shed_rank("silver") < shed_rank("gold")

    def test_default_gold_has_deadline_hedge_and_budget(self):
        gold = default_tier_policy().spec("gold")
        assert gold.deadline_ms == 2.0
        assert gold.hedge_ms == 250.0
        assert gold.p99_budget_ms == 250.0
        assert default_tier_policy().spec("best_effort").rate == 120.0

    def test_parse_round_trips_through_to_dict(self):
        spec = "gold:weight=4,deadline_ms=1.5;best_effort:rate=5,burst=2;default=best_effort"
        policy = TierPolicy.parse(spec)
        assert policy.default_tier == "best_effort"
        assert policy.spec("gold").deadline_ms == 1.5
        assert policy.spec("best_effort").burst == 2.0
        again = TierPolicy(
            tiers=tuple(TierSpec(**t) for t in policy.to_dict()["tiers"]),
            default_tier=policy.to_dict()["default_tier"],
        )
        assert again.to_dict() == policy.to_dict()

    def test_parse_none_clears_a_field(self):
        policy = TierPolicy.parse("gold:hedge_ms=none")
        assert policy.spec("gold").hedge_ms is None

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            default_tier_policy().spec("platinum")
        with pytest.raises(ValueError):
            TierPolicy.parse("default=platinum")

    @pytest.mark.parametrize(
        "kwargs",
        [{"weight": 0.0}, {"rate": -1.0}, {"deadline_ms": 0.0}],
    )
    def test_invalid_spec_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TierSpec(name="gold", **kwargs)

    def test_make_admission_normalizes_every_shape(self):
        assert make_admission("off") is None
        assert make_admission("0") is None
        ctl = make_admission("1")
        assert isinstance(ctl, AdmissionController)
        assert make_admission(ctl) is ctl
        assert isinstance(make_admission(default_tier_policy()), AdmissionController)
        with pytest.raises(TypeError):
            make_admission(42)

    def test_env_knob_resolves_when_tiers_is_none(self, monkeypatch):
        from repro.serve.admission import TIERS_ENV

        monkeypatch.setenv(TIERS_ENV, "off")
        assert make_admission(None) is None
        monkeypatch.setenv(TIERS_ENV, "1")
        assert isinstance(make_admission(None), AdmissionController)
        monkeypatch.setenv(TIERS_ENV, "best_effort:rate=5")
        assert make_admission(None).policy.spec("best_effort").rate == 5.0


class TestJainIndex:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_index([10, 10, 10]) == pytest.approx(1.0)

    def test_single_or_empty_population_is_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([7]) == pytest.approx(1.0)

    def test_starvation_lowers_the_index_toward_one_over_n(self):
        assert jain_index([100, 0, 0, 0]) == pytest.approx(0.25)

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=16))
    def test_index_is_always_in_unit_interval(self, xs):
        assert 0.0 <= jain_index(xs) <= 1.0 + 1e-12


# ----------------------------------------------------------------------
# Token buckets and quota conservation
# ----------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, capacity=3.0, now=0.0)
        assert [bucket.consume(0.0) for _ in range(4)] == [True] * 3 + [False]
        assert bucket.consume(0.1) is True  # one token refilled
        assert bucket.available(10.0) == pytest.approx(3.0)  # capped

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate=1.0, capacity=1.0, now=5.0)
        assert bucket.consume(5.0)
        # A stale timestamp must not mint tokens or corrupt the clock.
        assert not bucket.consume(4.0)
        assert bucket.updated == 5.0

    @given(
        rate=st.floats(min_value=0.5, max_value=100.0),
        capacity=st.floats(min_value=1.0, max_value=50.0),
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=60
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_quota_conservation_property(self, rate, capacity, gaps):
        # Grants over any consume schedule never exceed the initial
        # burst plus what the refill rate minted over elapsed time.
        bucket = TokenBucket(rate=rate, capacity=capacity, now=0.0)
        t, granted = 0.0, 0
        for gap in gaps:
            t += gap
            if bucket.consume(t):
                granted += 1
        assert granted <= capacity + rate * t + 1e-6
        assert 0.0 <= bucket.tokens <= capacity + 1e-9


class TestQuotaRecovery:
    def _controller(self):
        clock = {"t": 0.0}
        policy = TierPolicy(
            tiers=(
                TierSpec(name="gold"),
                TierSpec(name="silver"),
                TierSpec(name="best_effort", rate=10.0, burst=2.0),
            )
        )
        return AdmissionController(policy, time_fn=lambda: clock["t"]), clock

    def test_exhausted_tenant_recovers_after_refill(self):
        ctl, clock = self._controller()
        ctl.check_quota("best_effort", "hot")
        ctl.check_quota("best_effort", "hot")
        with pytest.raises(QuotaExceeded, match="'hot' exhausted"):
            ctl.check_quota("best_effort", "hot")
        clock["t"] = 0.1  # 10/s refill: one token back
        ctl.check_quota("best_effort", "hot")  # recovered

    def test_quota_is_per_tenant(self):
        ctl, _ = self._controller()
        ctl.check_quota("best_effort", "hot")
        ctl.check_quota("best_effort", "hot")
        with pytest.raises(QuotaExceeded):
            ctl.check_quota("best_effort", "hot")
        # A different tenant's bucket is untouched.
        ctl.check_quota("best_effort", "cold")

    def test_unmetered_tiers_never_raise(self):
        ctl, _ = self._controller()
        for _ in range(100):
            ctl.check_quota("gold", "vip")

    def test_quota_exhaustion_is_a_shed_in_broker_accounting(self, tmp_path):
        # Fault-injection drill: a quota-exhausted tenant's refusals
        # must land in the shed counters (conservation stays exact), the
        # flight record must name the tier, and the tenant must be
        # admitted again after the bucket refills.
        flight = FlightRecorder(capacity=64)
        previous = set_tracer(Tracer([flight]))
        admission = make_admission("best_effort:rate=5,burst=2")

        async def scenario():
            broker = SolveBroker(_policy(target_batch=4), admission=admission)
            await broker.start()
            # Submit concurrently: admission is decided at submit time,
            # and awaiting each result in turn would let slow first
            # flushes (process/arena pools spinning up) refill tokens
            # between submits.
            outcomes = await asyncio.gather(
                *(
                    broker.submit(
                        "factor", _spd(8, seed=i),
                        tier="best_effort", tenant="hot",
                    )
                    for i in range(4)
                ),
                return_exceptions=True,
            )
            for o in outcomes:
                if isinstance(o, Exception) and not isinstance(o, QuotaExceeded):
                    raise o
            await asyncio.sleep(0.25)  # 5/s refill: a token is back
            recovered = await broker.submit(
                "factor", _spd(8, seed=9), tier="best_effort", tenant="hot"
            )
            await broker.close()
            return outcomes, recovered, broker.metrics

        try:
            outcomes, recovered, m = asyncio.run(scenario())
        finally:
            set_tracer(previous)
        shed = [o for o in outcomes if isinstance(o, QuotaExceeded)]
        assert len(shed) == 2
        assert isinstance(recovered, np.ndarray)
        assert m.counters["shed"] == 2
        assert m.unaccounted == 0
        assert m.tier_counter("best_effort", "shed") == 2
        assert (
            m.tier_counter("best_effort", "submitted")
            == m.tier_counter("best_effort", "completed") + 2
        )
        dump = tmp_path / "flight.jsonl"
        flight.dump(dump)
        text = dump.read_text()
        assert '"shed"' in text
        assert '"tier": "best_effort"' in text
        assert '"tenant": "hot"' in text


# ----------------------------------------------------------------------
# Cost model and tier-ordered shedding
# ----------------------------------------------------------------------


class TestCostModel:
    def test_fallback_cost_is_cholesky_flops(self):
        ctl = AdmissionController()
        assert ctl.cost(8) == pytest.approx(8**3 / 3.0)
        assert ctl.cost(8) < ctl.cost(16) < ctl.cost(32)

    def test_bound_executor_cost_is_modelled_seconds(self):
        from repro.serve import BatchExecutor

        ctl = AdmissionController()
        ctl.bind_executor(BatchExecutor())
        # Modelled seconds per matrix: tiny, positive, monotone in n.
        assert 0.0 < ctl.cost(8) < ctl.cost(32) < 1.0

    def test_explicit_cost_fn_survives_bind(self):
        ctl = AdmissionController(cost_fn=lambda n: float(n))
        ctl.bind_executor(object())  # never consulted
        assert ctl.cost(16) == 16.0


class TestTierOrderedShedding:
    @given(
        queued=st.lists(
            st.tuples(
                st.sampled_from(TIERS), st.sampled_from((4, 8, 16, 32))
            ),
            max_size=24,
        ),
        incoming=st.sampled_from(TIERS),
    )
    @settings(max_examples=120, deadline=None)
    def test_victim_is_cheapest_of_strictly_lower_tiers(self, queued, incoming):
        ctl = AdmissionController()
        requests = [
            _request(seq=i, n=n, tier=tier) for i, (tier, n) in enumerate(queued)
        ]
        victim = ctl.victim(requests, incoming)
        lower = [r for r in requests if shed_rank(r.tier) < shed_rank(incoming)]
        if not lower:
            assert victim is None
        else:
            assert victim in lower
            min_rank = min(shed_rank(r.tier) for r in lower)
            cheapest = min(
                ctl.cost(r.n) for r in lower if shed_rank(r.tier) == min_rank
            )
            assert shed_rank(victim.tier) == min_rank
            assert ctl.cost(victim.n) == cheapest

    def test_gold_never_shed_while_best_effort_queued(self):
        # The broker-level guarantee: under backpressure a gold arrival
        # preempts queued best-effort work instead of being refused.
        async def scenario():
            broker = SolveBroker(
                _policy(target_batch=64, max_delay_s=0.5, max_queue_depth=2),
                admission=make_admission("1"),
            )
            await broker.start()
            filler = [
                asyncio.ensure_future(
                    broker.submit("factor", _spd(8, seed=i), tier="best_effort")
                )
                for i in range(2)
            ]
            await asyncio.sleep(0)  # fillers reach the bucket
            gold = await broker.submit("factor", _spd(8, seed=7), tier="gold")
            shed = await asyncio.gather(*filler, return_exceptions=True)
            await broker.close()
            return gold, shed, broker.metrics

        gold, shed, m = asyncio.run(scenario())
        assert isinstance(gold, np.ndarray)
        assert sum(1 for o in shed if isinstance(o, Exception)) == 1
        assert m.tier_counter("gold", "shed") == 0
        assert m.tier_counter("best_effort", "shed") == 1
        assert m.unaccounted == 0

    def test_best_effort_arrival_into_full_queue_sheds_itself(self):
        async def scenario():
            broker = SolveBroker(
                _policy(target_batch=64, max_delay_s=0.5, max_queue_depth=1),
                admission=make_admission("1"),
            )
            await broker.start()
            holder = asyncio.ensure_future(
                broker.submit("factor", _spd(8), tier="silver")
            )
            await asyncio.sleep(0)
            with pytest.raises(Exception) as excinfo:
                await broker.submit("factor", _spd(8, seed=1), tier="best_effort")
            holder.cancel()
            await broker.close(drain=False)
            return excinfo.value, broker.metrics

        exc, m = asyncio.run(scenario())
        assert "best_effort" not in type(exc).__name__
        assert m.tier_counter("best_effort", "shed") == 1
        assert m.tier_counter("silver", "shed") == 0


class TestPlainBrokerShedRecordsBucket:
    def test_untiered_shed_records_the_size_bucket(self):
        # Regression: the plain (no-admission) shed path must tag the
        # refused request's size bucket in the shed metrics before
        # rejecting, like every other outcome path does.
        from repro.serve import ServiceOverloaded

        async def scenario():
            broker = SolveBroker(
                _policy(target_batch=64, max_delay_s=0.5, max_queue_depth=1)
            )
            await broker.start()
            holder = asyncio.ensure_future(broker.submit("factor", _spd(8)))
            await asyncio.sleep(0)
            with pytest.raises(ServiceOverloaded):
                await broker.submit("factor", _spd(16, seed=1))
            holder.cancel()
            await broker.close(drain=False)
            return broker.metrics

        m = asyncio.run(scenario())
        assert m.shed_by_bucket == {16: 1}
        assert m.counters["shed"] == 1
        # No admission layer: the tier planes must stay untouched.
        assert m.tier_names == {}


# ----------------------------------------------------------------------
# Weighted fair queuing
# ----------------------------------------------------------------------


class TestWeightedFairQueue:
    def test_stamp_sets_vft_and_tier_deadline(self):
        ctl = AdmissionController()
        request = _request(seq=1, tier="gold", tenant="vip")
        ctl.stamp(request)
        assert request.vft > 0.0
        assert request.delay_s == pytest.approx(0.002)
        silver = _request(seq=2, tier="silver")
        ctl.stamp(silver)
        assert silver.delay_s is None

    def test_idle_tenant_reenters_at_global_virtual_time(self):
        ctl = AdmissionController(cost_fn=lambda n: 1.0)
        first = _request(seq=1, tenant="busy")
        ctl.stamp(first)
        ctl.advance(100.0)
        late = _request(seq=2, tenant="idle")
        ctl.stamp(late)
        # No banked credit: the idle tenant starts at the global clock.
        assert late.vft > 100.0

    @given(
        weights=st.tuples(
            st.integers(min_value=1, max_value=8),
            st.integers(min_value=1, max_value=8),
            st.integers(min_value=1, max_value=8),
        ),
        limit=st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_wfq_drain_is_weight_proportional(self, weights, limit):
        # One tenant per tier, equal-cost requests: a limited pop drains
        # each tenant proportionally to its tier weight, within one
        # flush slot per tenant of the ideal share.
        specs = tuple(
            TierSpec(name=name, weight=float(w))
            for name, w in zip(TIERS, weights)
        )
        ctl = AdmissionController(
            TierPolicy(tiers=specs), cost_fn=lambda n: 1.0
        )
        batcher = AdaptiveBatcher(threshold_for=lambda n: 4096)
        seq = 0
        for k in range(64):
            for name in TIERS:
                request = _request(seq=seq, n=8, tier=name, tenant=name)
                ctl.stamp(request)
                batcher.add(request)
                seq += 1
        taken = batcher.pop(8, limit=limit)
        assert len(taken) == limit
        total_weight = sum(weights)
        counts = dict.fromkeys(TIERS, 0)
        for request in taken:
            counts[request.tenant] += 1
        for name, w in zip(TIERS, weights):
            ideal = limit * w / total_weight
            assert abs(counts[name] - ideal) <= len(TIERS), (
                weights, limit, counts,
            )

    def test_pop_without_limit_keeps_fifo(self):
        batcher = AdaptiveBatcher(threshold_for=lambda n: 4)
        requests = [_request(seq=i, vft=float(10 - i)) for i in range(3)]
        for request in requests:
            batcher.add(request)
        assert batcher.pop(8) == requests  # arrival order, not vft order


# ----------------------------------------------------------------------
# Hedging on the sharded fabric
# ----------------------------------------------------------------------


def _hedge_admission() -> AdmissionController:
    """Gold hedges as soon as the primary has any service history."""
    return AdmissionController(
        TierPolicy(
            tiers=(
                TierSpec(name="gold", weight=4.0, deadline_ms=3.0, hedge_ms=1e-4),
                TierSpec(name="silver", weight=2.0),
                TierSpec(name="best_effort"),
            )
        )
    )


class TestHedging:
    def test_hedge_returns_exactly_one_result_and_conserves(self):
        async def scenario():
            broker = ShardedBroker(
                _policy(target_batch=4096, max_delay_s=0.003),
                shards=2,
                placement="size",
                admission=_hedge_admission(),
            )
            await broker.start()
            first = await broker.factor(_spd(8, seed=0), tier="gold")
            assert broker.hedges["attempted"] == 0  # no history yet
            second = await broker.factor(_spd(8, seed=1), tier="gold")
            await broker.close(drain=True)
            return first, second, broker

        first, second, broker = asyncio.run(scenario())
        assert isinstance(first, np.ndarray) and isinstance(second, np.ndarray)
        assert broker.hedges["attempted"] == 1
        assert (
            broker.hedges["won_primary"] + broker.hedges["won_hedge"]
            == broker.hedges["attempted"]
        )
        m = broker.metrics
        # Both copies of the hedged request complete on their shards;
        # fabric-wide conservation stays exact with no double-count gaps.
        assert m.unaccounted == 0
        assert m.counters["submitted"] == 3  # 2 requests + 1 hedge copy
        assert m.counters["completed"] == 3

    def test_silver_never_hedges(self):
        async def scenario():
            broker = ShardedBroker(
                _policy(target_batch=4096, max_delay_s=0.003),
                shards=2,
                placement="size",
                admission=_hedge_admission(),
            )
            await broker.start()
            for i in range(3):
                await broker.factor(_spd(8, seed=i), tier="silver")
            await broker.close(drain=True)
            return broker.hedges

        assert asyncio.run(scenario())["attempted"] == 0

    def test_kill_primary_mid_hedge_winner_from_survivor(self, tmp_path):
        # Fault injection: the primary shard dies while a hedged gold
        # request is in flight on both shards.  The hedge copy must win,
        # the caller sees exactly one result, accounting stays exact,
        # and the flight record names the hedged tier.
        flight = FlightRecorder(capacity=256)
        previous = set_tracer(Tracer([flight]))

        async def scenario():
            broker = ShardedBroker(
                _policy(target_batch=4096, max_delay_s=0.05),
                shards=2,
                placement="size",
                admission=_hedge_admission(),
            )
            await broker.start()
            primary = broker.router.place(8, 0)
            await broker.factor(_spd(8, seed=0), tier="gold")  # service history
            hedged = asyncio.ensure_future(
                broker.factor(_spd(8, seed=1), tier="gold")
            )
            while broker.hedges["attempted"] == 0:  # hedge dispatched
                await asyncio.sleep(0.0005)
            broker.kill_shard(primary)
            result = await hedged
            await broker.close(drain=True)
            return primary, result, broker

        try:
            primary, result, broker = asyncio.run(scenario())
        finally:
            set_tracer(previous)
        assert isinstance(result, np.ndarray)
        assert broker.hedges == {
            "attempted": 1, "won_primary": 0, "won_hedge": 1,
        }
        assert primary not in broker.router.alive
        assert broker.metrics.unaccounted == 0
        dump = tmp_path / "flight.jsonl"
        flight.dump(dump)
        text = dump.read_text()
        assert '"hedge"' in text and '"tier": "gold"' in text
        assert '"shard_down"' in text


# ----------------------------------------------------------------------
# v3 traces and the tiered synthetic workload
# ----------------------------------------------------------------------


class TestTraceV3:
    def test_tiered_events_round_trip_as_v3(self, tmp_path):
        events = [
            RecordedEvent(at=0.0, op="factor", n=8, seed=1,
                          tier="gold", tenant="vip"),
            RecordedEvent(at=0.001, op="factor", n=8, seed=2),
        ]
        path = tmp_path / "t.jsonl"
        save_trace(path, events)
        trace = load_trace_file(path)
        assert trace.version == 3
        assert trace.events[0].tier == "gold"
        assert trace.events[0].tenant == "vip"
        assert trace.events[1].tier is None

    @pytest.mark.parametrize(
        "name", ["uniform_small", "als_graph", "multi_tenant"]
    )
    def test_committed_traces_resave_byte_identically(self, name, tmp_path):
        # v1 and v2 traces must stay byte fixed points of their own
        # format after the v3 fields landed; v3 must round-trip too.
        committed = TRACES_DIR / f"{name}.jsonl"
        trace = load_trace_file(committed)
        out = tmp_path / "again.jsonl"
        save_trace(out, trace.events, meta=trace.meta)
        assert out.read_bytes() == committed.read_bytes()

    def test_synthetic_trace_tier_mix_is_seeded_and_additive(self):
        tiered = synthetic_trace(requests=200, seed=5, tiers=True)
        again = synthetic_trace(requests=200, seed=5, tiers=True)
        assert [(e.tier, e.tenant) for e in tiered] == [
            (e.tier, e.tenant) for e in again
        ]
        tiers_seen = {e.tier for e in tiered}
        assert tiers_seen == {"gold", "silver", "best_effort"}
        # The tier draws ride after the base draws: untiered synthesis
        # for the same seed is unchanged by the tiers feature.
        plain = synthetic_trace(requests=200, seed=5)
        assert [(e.at, e.kind, e.n) for e in plain] == [
            (e.at, e.kind, e.n) for e in tiered
        ]
        assert all(e.tier is None for e in plain)


class TestMultiTenantTrace:
    def test_committed_trace_shape(self):
        trace = load_trace_file(TRACES_DIR / "multi_tenant.jsonl")
        assert trace.version == 3
        tenants = {e.tenant for e in trace.events}
        assert tenants == {"vip", "team0", "team1", "team2", "hot"}
        by_tier = {}
        for e in trace.events:
            by_tier[e.tier] = by_tier.get(e.tier, 0) + 1
        assert by_tier == {"gold": 60, "silver": 180, "best_effort": 250}

    def test_tiered_replay_meets_the_acceptance_floors(self):
        trace = load_trace_file(TRACES_DIR / "multi_tenant.jsonl")
        summary = replay_trace(
            trace, policy=ServePolicy(request_timeout_s=None), tiers="1"
        )
        m = summary.metrics
        assert m.unaccounted == 0
        tiers = m.tier_summary()
        best_effort = tiers["by_tier"]["best_effort"]
        assert best_effort["shed"] / best_effort["submitted"] >= 0.30
        assert tiers["by_tier"]["gold"]["shed"] == 0
        fairness = jain_index(tiers["completed_by_tenant"].values())
        assert fairness >= 0.9
        budget = default_tier_policy().spec("gold").p99_budget_ms
        assert tiers["by_tier"]["gold"]["coalesce_p99_ms"] <= budget


# ----------------------------------------------------------------------
# Per-tier observability: Prometheus, SLO streams, control
# ----------------------------------------------------------------------


class TestTierPrometheus:
    def test_untiered_metrics_render_empty(self):
        assert render_tier_prometheus(ServeMetrics()) == ""

    def test_tiered_page_carries_counters_fairness_and_tails(self):
        m = ServeMetrics()
        m.record_tier_submit("gold", "vip")
        m.record_tier_completion("gold", "vip", 1.5, 0.5)
        m.record_tier_submit("best_effort", "hot")
        m.record_shed(None, n=8, tier="best_effort", tenant="hot")
        page = render_tier_prometheus(m)
        assert 'repro_tier_submitted_total{tier="gold"} 1' in page
        assert 'repro_tier_shed_total{tier="best_effort"} 1' in page
        assert 'repro_tier_tenant_completed_total{tenant="vip"} 1' in page
        assert "repro_tier_fairness_jain" in page
        assert 'quantile="0.99"' in page
        # One TYPE line per family, no duplicates.
        type_lines = [l for l in page.splitlines() if l.startswith("# TYPE")]
        assert len(type_lines) == len(set(type_lines))


class TestTierSloStreams:
    def test_per_tier_objective_resolves_to_sketch_family(self):
        from repro.obs.slo import parse_objectives

        (obj,) = parse_objectives("tier_gold_coalesce_p99_ms<50")
        assert obj.stream == "tier_gold_coalesce_latency_ms"
        (obj,) = parse_objectives("tier_best_effort_service_p95_ms<100")
        assert obj.stream == "tier_best_effort_flush_service_ms"

    def test_per_tier_objective_evaluates_against_tier_family(self):
        from repro.obs.slo import evaluate_objectives, parse_objectives

        m = ServeMetrics()
        for wait in (1.0, 2.0, 100.0):
            m.record_tier_completion("gold", "vip", wait, None)
        results = evaluate_objectives(
            m, parse_objectives("tier_gold_coalesce_p99_ms<50")
        )
        assert results[0]["ok"] is False  # the 100ms tail blows the budget


class TestControlTierAwareness:
    def _window(self, slo):
        from repro.serve.metrics import SnapshotDelta

        return SnapshotDelta(
            dt=0.1,
            counters={"submitted": 10, "completed": 10},
            hists={},
            slo=slo,
        )

    def test_best_effort_only_burn_softens_instead_of_tightening(self):
        from repro.serve.control import AIMDStrategy, Knobs

        s = AIMDStrategy()
        knobs = Knobs(64, 2.0)
        proposed, reason = s.propose(
            self._window({"tier_best_effort_coalesce_p99_ms<250": 5.0}), knobs
        )
        assert reason == "slo_burn_best_effort"
        assert proposed.max_delay_ms == pytest.approx(2.0 - s.shrink_ms)

    def test_gold_burn_still_tightens_the_deadline(self):
        from repro.serve.control import AIMDStrategy, Knobs

        s = AIMDStrategy()
        proposed, reason = s.propose(
            self._window(
                {
                    "tier_gold_coalesce_p99_ms<50": 5.0,
                    "tier_best_effort_coalesce_p99_ms<250": 5.0,
                }
            ),
            Knobs(64, 2.0),
        )
        assert reason == "slo_burn"
        assert proposed.max_delay_ms < 2.0


# ----------------------------------------------------------------------
# The replay-check --tiers gate and its committed baseline
# ----------------------------------------------------------------------


def _tier_run(label="inline/tb64/d2ms/tiers", **overrides):
    by_tier = {
        "gold": {"submitted": 60, "completed": 60, "failed": 0, "shed": 0,
                 "coalesce_p99_ms": 30.0},
        "silver": {"submitted": 180, "completed": 180, "failed": 0, "shed": 0},
        "best_effort": {"submitted": 250, "completed": 70, "failed": 0,
                        "shed": 180},
    }
    run = {
        "label": label,
        "ok": True,
        "conservation_ok": True,
        "tiers": {
            "policy": default_tier_policy().to_dict(),
            "jain_fairness": 0.99,
            "hedges": None,
            "by_tier": by_tier,
            "completed_by_tenant": {"vip": 60, "hot": 70},
        },
    }
    run["tiers"].update(
        {k: v for k, v in overrides.items() if k != "label"}
    )
    return run


def _tier_report(*runs):
    return {"schema": "repro.bench_serve_replay/v3", "runs": list(runs)}


class TestCompareTiers:
    def test_clean_report_passes_against_itself(self):
        report = _tier_report(_tier_run())
        assert compare_tiers(report, report) == []

    def test_no_tiered_runs_is_a_finding(self):
        empty = _tier_report({"label": "x", "ok": True})
        findings = compare_tiers(empty, empty)
        assert any("no tiered runs" in f for f in findings)

    def test_budget_violation_flagged(self):
        bad = _tier_run()
        bad["tiers"]["by_tier"]["gold"]["coalesce_p99_ms"] = 10_000.0
        findings = compare_tiers(_tier_report(_tier_run()), _tier_report(bad))
        assert any("over its" in f and "gold" in f for f in findings)

    def test_fairness_floor_flagged(self):
        bad = _tier_run(jain_fairness=0.5)
        findings = compare_tiers(_tier_report(bad), _tier_report(bad))
        assert any("below the 0.9 floor" in f for f in findings)

    def test_best_effort_shed_floor_flagged(self):
        bad = _tier_run()
        bad["tiers"]["by_tier"]["best_effort"].update(
            {"completed": 240, "shed": 10}
        )
        findings = compare_tiers(_tier_report(bad), _tier_report(bad))
        assert any("not metering the flood" in f for f in findings)

    def test_gold_shed_growth_vs_baseline_flagged(self):
        current = _tier_run()
        current["tiers"]["by_tier"]["gold"].update(
            {"completed": 50, "shed": 10}
        )
        findings = compare_tiers(
            _tier_report(_tier_run()), _tier_report(current)
        )
        assert any("gold shed fraction" in f for f in findings)

    def test_doctored_baseline_fairness_trips_the_gate(self):
        doctored = _tier_run(jain_fairness=1.0)
        current = _tier_run(jain_fairness=0.93)
        findings = compare_tiers(_tier_report(doctored), _tier_report(current))
        assert any("regressed vs baseline" in f for f in findings)

    def test_missing_tiered_run_flagged(self):
        baseline = _tier_report(_tier_run())
        current = _tier_report(_tier_run(label="other/tiers"))
        findings = compare_tiers(baseline, current)
        assert any("missing from report" in f for f in findings)

    def test_gate_floors_validate(self):
        gate = TierGate(min_jain=0.8)
        assert gate.min_best_effort_shed_frac == 0.30


class TestCommittedTiersBaseline:
    def test_baseline_matches_schema_and_trace_fingerprint(self):
        report = load_report(TIERS_BASELINE)
        assert report["trace"]["sha256"] == trace_sha256(
            TRACES_DIR / "multi_tenant.jsonl"
        )
        labels = [r["label"] for r in report["runs"]]
        assert labels == ["inline/tb64/d2ms", "inline/tb64/d2ms/tiers"]
        assert all(r["ok"] and r["conservation_ok"] for r in report["runs"])
        untiered, tiered = report["runs"]
        assert untiered["tiers"] is None
        tiers = tiered["tiers"]
        assert tiers["jain_fairness"] >= 0.9
        best_effort = tiers["by_tier"]["best_effort"]
        assert best_effort["shed"] / best_effort["submitted"] >= 0.30
        assert tiers["by_tier"]["gold"]["shed"] == 0

    def test_replay_check_passes_on_committed_tiers_baseline(self, capsys):
        rc = cli_main(
            [
                "replay-check",
                "--baseline", str(TIERS_BASELINE),
                "--report", str(TIERS_BASELINE),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "tiered run(s) within budget" in out

    def test_replay_check_fails_on_doctored_tiers_baseline(
        self, tmp_path, capsys
    ):
        doctored = json.loads(TIERS_BASELINE.read_text())
        for run in doctored["runs"]:
            if run.get("tiers"):
                run["tiers"]["jain_fairness"] = 1.0
                run["tiers"]["by_tier"]["gold"]["coalesce_p99_ms"] = 0.001
        path = tmp_path / "doctored.json"
        path.write_text(json.dumps(doctored))
        rc = cli_main(
            [
                "replay-check",
                "--baseline", str(path),
                "--report", str(TIERS_BASELINE),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "regressed vs baseline" in out


class TestReplayGridTiers:
    def test_tiers_dimension_is_label_additive(self):
        from repro.serve.replay import policy_grid

        plain = [c.label for c in policy_grid()]
        tiered = policy_grid(tiers=(None, "1"))
        assert [c.label for c in tiered if c.tiers is None] == plain
        assert [c.label for c in tiered if c.tiers] == [
            f"{label}/tiers" for label in plain
        ]

    def test_untiered_cell_ignores_the_env_knob(self, monkeypatch):
        from repro.serve.admission import TIERS_ENV
        from repro.serve.replay import policy_grid, run_replay_cell

        monkeypatch.setenv(TIERS_ENV, "1")
        events = synthetic_trace(requests=12, rate_hz=20000, seed=3)
        (cell,) = policy_grid()
        run = run_replay_cell(events, cell, warmup=False)
        assert run["ok"]
        assert run["tiers"] is None


class TestServeDemoTiers:
    def test_demo_reports_tiers_and_prometheus_page(self, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        rc = cli_main(
            [
                "serve-demo",
                "--requests", "80",
                "--rate", "30000",
                "--seed", "3",
                "--timeout-ms", "0",
                "--tiers", "best_effort:rate=40,burst=4",
                "--prom-out", str(prom),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "tiers   :" in out
        assert "best_effort" in out
        page = prom.read_text()
        assert "repro_tier_submitted_total" in page
        assert "repro_tier_fairness_jain" in page
        assert 'repro_tier_shed_total{tier="best_effort"}' in page
