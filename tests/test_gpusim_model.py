"""GPU performance model components and end-to-end estimates."""

import pytest

from repro.core.config import KernelConfig
from repro.gpusim.arch import P100
from repro.gpusim.coalescing import coalescing_multiplier, worst_case_multiplier
from repro.gpusim.dram import FAR_STRIDE_BYTES, layout_locality_factor, row_locality_factor
from repro.gpusim.icache import code_bytes, icache_throughput_factor
from repro.gpusim.model import estimate_performance
from repro.gpusim.occupancy import compute_occupancy
from repro.gpusim.pipeline import issue_efficiency, thread_cycles
from repro.layouts.base import BatchSpec
from repro.layouts.canonical import CanonicalLayout
from repro.layouts.chunked import ChunkedInterleavedLayout
from repro.layouts.interleaved import InterleavedLayout
from repro.utils.opmix import OpMixCounter


class TestArch:
    def test_p100_peak(self):
        assert P100.peak_fp32_gflops == pytest.approx(9339.9, abs=1.0)

    def test_fast_math_cheaper(self):
        assert P100.div_cycles(True) < P100.div_cycles(False)
        assert P100.sqrt_cycles(True) < P100.sqrt_cycles(False)


class TestCoalescing:
    def test_interleaved_perfect(self):
        spec = BatchSpec(batch=16384, n=8)
        assert coalescing_multiplier(InterleavedLayout(), spec) == pytest.approx(1.0)

    @pytest.mark.parametrize("chunk", [32, 64, 512])
    def test_chunked_perfect(self, chunk):
        spec = BatchSpec(batch=16384, n=5)
        layout = ChunkedInterleavedLayout(chunk)
        assert coalescing_multiplier(layout, spec) == pytest.approx(1.0)

    def test_canonical_tiny_matrices_worst_case(self):
        spec = BatchSpec(batch=16384, n=6)  # 6*6*4 = 144 B per matrix > 128
        mult = coalescing_multiplier(CanonicalLayout(), spec)
        assert mult == pytest.approx(worst_case_multiplier(), rel=0.05)

    def test_canonical_never_coalesces_past_line_size(self):
        """Batched same-element access across canonical matrices stays
        worst-case for every n with a matrix footprint beyond one line —
        which is why the traditional kernels access memory column-wise
        per block instead (modelled in baselines.magma)."""
        small = coalescing_multiplier(CanonicalLayout(), BatchSpec(batch=1024, n=8))
        large = coalescing_multiplier(CanonicalLayout(), BatchSpec(batch=1024, n=64))
        assert small == large == pytest.approx(worst_case_multiplier())
        tiny = coalescing_multiplier(CanonicalLayout(), BatchSpec(batch=1024, n=2))
        assert tiny < small  # 16-byte matrices share lines across lanes


class TestDram:
    def test_line_stride_streams(self):
        assert row_locality_factor(128, P100) == 1.0

    def test_monotone_decay(self):
        factors = [row_locality_factor(s, P100) for s in (128, 256, 512, 1024, 2048)]
        assert factors == sorted(factors, reverse=True)

    def test_far_stride_floor(self):
        assert row_locality_factor(FAR_STRIDE_BYTES, P100) == P100.far_stride_efficiency

    def test_layouts_ordering(self):
        """chunked(32) > chunked(512) > simple interleave at a large batch."""
        spec = BatchSpec(batch=16384, n=8)
        f32 = layout_locality_factor(ChunkedInterleavedLayout(32), spec, P100)
        f512 = layout_locality_factor(ChunkedInterleavedLayout(512), spec, P100)
        fsimple = layout_locality_factor(InterleavedLayout(), spec, P100)
        assert f32 > f512 >= fsimple
        assert layout_locality_factor(CanonicalLayout(), spec, P100) == 1.0

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            row_locality_factor(0, P100)


class TestIcache:
    def test_small_code_free(self):
        assert icache_throughput_factor(100, P100) == 1.0

    def test_large_code_penalised_with_floor(self):
        f = icache_throughput_factor(1_000_000, P100)
        assert 0.3 <= f < 0.5

    def test_monotone(self):
        fs = [icache_throughput_factor(s, P100) for s in (1000, 10_000, 50_000, 200_000)]
        assert fs == sorted(fs, reverse=True)

    def test_code_bytes(self):
        assert code_bytes(100, P100) == 100 * P100.sass_bytes_per_statement


class TestOccupancy:
    def test_small_blocks_many_per_sm(self):
        occ = compute_occupancy(P100, regs_per_thread=64, block_threads=32, total_blocks=10_000)
        assert occ.blocks_per_sm == 32  # block-slot limited
        assert occ.limited_by in ("blocks", "work")

    def test_register_limited(self):
        occ = compute_occupancy(P100, regs_per_thread=255, block_threads=256, total_blocks=10_000)
        assert occ.blocks_per_sm == 65536 // (256 * 256)

    def test_oversized_block_spills(self):
        occ = compute_occupancy(P100, regs_per_thread=255, block_threads=512, total_blocks=64)
        assert occ.spilled_regs > 0
        assert occ.regs_per_thread * 512 <= P100.register_file_per_sm

    def test_work_limited_batch(self):
        """16384 matrices at one warp per block: ~9 warps per SM."""
        occ = compute_occupancy(P100, regs_per_thread=64, block_threads=32, total_blocks=512)
        assert occ.limited_by == "work"
        assert 9 <= occ.warps_per_sm <= 10

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            compute_occupancy(P100, 64, 48, 100)


class TestPipeline:
    def test_fast_math_cheaper(self):
        mix = OpMixCounter(fma=100, div=50, sqrt=10)
        assert thread_cycles(mix, 0, True, P100) < thread_cycles(mix, 0, False, P100)

    def test_memory_instructions_counted(self):
        mix = OpMixCounter(fma=10)
        base = thread_cycles(mix, 0, False, P100)
        assert thread_cycles(mix, 100, False, P100) == base + 100 * P100.mem_issue_cycles

    def test_issue_efficiency_saturates(self):
        assert issue_efficiency(64, P100) == 1.0
        assert issue_efficiency(4, P100) < issue_efficiency(16, P100)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            thread_cycles(OpMixCounter(), -1, False, P100)


class TestEndToEndModel:
    def test_estimate_fields_consistent(self):
        e = estimate_performance(KernelConfig(n=16, nb=4), batch=16384)
        assert e.seconds > 0
        assert e.gflops > 0
        assert e.seconds >= max(e.mem_seconds, e.compute_seconds)
        assert e.bound in ("memory", "compute")

    def test_gflops_uses_paper_formula(self):
        e = estimate_performance(KernelConfig(n=12, nb=4), batch=1024)
        expected = (12**3 / 3) * 1024 / e.seconds / 1e9
        assert e.gflops == pytest.approx(expected)

    def test_fast_math_never_slower(self):
        for n in (8, 16, 24, 32):
            cfg = KernelConfig(n=n, nb=4, unroll="full")
            ieee = estimate_performance(cfg)
            fast = estimate_performance(cfg.with_(fast_math=True))
            assert fast.gflops >= ieee.gflops * 0.999

    def test_bigger_batch_amortises_overhead(self):
        cfg = KernelConfig(n=8, nb=4)
        small = estimate_performance(cfg, batch=128)
        big = estimate_performance(cfg, batch=65536)
        assert big.gflops > small.gflops

    def test_chunked_beats_simple_interleave_when_memory_bound(self):
        cfg = KernelConfig(n=32, nb=8, chunked=True, chunk_size=32)
        chunked = estimate_performance(cfg)
        simple = estimate_performance(cfg.with_(chunked=False))
        assert chunked.gflops > simple.gflops

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            estimate_performance(KernelConfig(n=8), batch=0)
