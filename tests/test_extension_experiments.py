"""Extension experiment harnesses (batch scaling, sensitivity, portability)."""


from repro.experiments import batch_scaling, sensitivity_study
from repro.gpusim.arch import P100, V100


class TestBatchScaling:
    def test_runs_and_passes(self):
        result = batch_scaling.run()
        assert result.all_checks_pass, result.render()

    def test_series_monotone_up_to_saturation(self):
        result = batch_scaling.run()
        for label, points in result.series.items():
            xs = sorted(points)
            values = [points[x] for x in xs]
            assert values == sorted(values), f"{label} not monotone"


class TestSensitivity:
    def test_runs_and_passes(self):
        result = sensitivity_study.run()
        assert result.all_checks_pass, result.render()

    def test_covers_all_soft_constants(self):
        from repro.experiments.sensitivity_study import PERTURBED_FIELDS

        for field in PERTURBED_FIELDS:
            assert hasattr(P100, field)


class TestArchitectures:
    def test_v100_is_a_bigger_machine(self):
        assert V100.sms > P100.sms
        assert V100.dram_bandwidth_gbs > P100.dram_bandwidth_gbs
        assert V100.peak_fp32_gflops > P100.peak_fp32_gflops

    def test_v100_usable_by_the_model(self):
        from repro.core.config import KernelConfig
        from repro.gpusim.model import estimate_performance

        p = estimate_performance(KernelConfig(n=32, nb=8), batch=16384, arch=P100)
        v = estimate_performance(KernelConfig(n=32, nb=8), batch=16384, arch=V100)
        assert v.gflops > p.gflops
