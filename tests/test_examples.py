"""Smoke tests: the runnable examples must actually run.

Each fast example's ``main()`` is executed end to end (stdout captured by
pytest).  The slow ones (`als_recommender`, `autotune_explore`,
`tuned_dispatch`) are exercised piecewise by the app/autotune tests
instead — their building blocks are all covered.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart",
    "layout_coalescing",
    "batchblas_pipeline",
    "kalman_tracking",
    "fem_batch_solve",
    "serving_traffic",
]


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report
    assert "Traceback" not in out


def test_examples_directory_complete():
    """Every example advertised in the README exists and has a main()."""
    advertised = [
        "quickstart",
        "als_recommender",
        "fem_batch_solve",
        "autotune_explore",
        "layout_coalescing",
        "tuned_dispatch",
        "batchblas_pipeline",
        "kalman_tracking",
        "serving_traffic",
    ]
    for name in advertised:
        path = EXAMPLES_DIR / f"{name}.py"
        assert path.exists(), f"missing example {name}"
        assert "def main(" in path.read_text()
