"""Reference implementations (repro.core.reference)."""


import numpy as np
import pytest

from repro.core.config import KernelConfig
from repro.core.reference import (
    batch_cholesky_reference,
    cholesky_blocked,
    cholesky_unblocked,
)
from repro.utils.spd import make_spd, random_spd_batch


class TestUnblocked:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 12])
    def test_matches_numpy(self, n, rng):
        a = make_spd(n, rng, dtype=np.float64)
        got = np.tril(cholesky_unblocked(a))
        assert np.allclose(got, np.linalg.cholesky(a), rtol=1e-12)

    def test_upper_triangle_untouched(self, rng):
        a = make_spd(5, rng, dtype=np.float64)
        got = cholesky_unblocked(a)
        assert np.array_equal(np.triu(got, 1), np.triu(a, 1))

    def test_non_spd_raises(self):
        a = -np.eye(3)
        with pytest.raises(np.linalg.LinAlgError):
            cholesky_unblocked(a)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            cholesky_unblocked(np.zeros((2, 3)))

    def test_input_not_modified(self, rng):
        a = make_spd(4, rng, dtype=np.float64)
        backup = a.copy()
        cholesky_unblocked(a)
        assert np.array_equal(a, backup)


class TestBatchReference:
    def test_matches_numpy_per_matrix(self):
        a = random_spd_batch(20, 9, seed=0).astype(np.float64)
        got = np.tril(batch_cholesky_reference(a))
        assert np.allclose(got, np.linalg.cholesky(a), rtol=1e-12)

    def test_non_spd_mentions_which_matrix(self):
        a = random_spd_batch(4, 3, seed=0).astype(np.float64)
        a[2] = -np.eye(3)
        with pytest.raises(np.linalg.LinAlgError, match="matrix 2"):
            batch_cholesky_reference(a)

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            batch_cholesky_reference(np.zeros((3, 3)))


class TestBlockedScheduleExecutor:
    """cholesky_blocked interprets the tile schedules on dense matrices —
    an independent check of schedule semantics for all variants."""

    @pytest.mark.parametrize(
        "n,nb,looking",
        [
            (n, nb, lk)
            for (n, nb) in [(6, 2), (8, 4), (9, 4), (10, 3), (5, 5), (13, 4), (7, 1)]
            for lk in ("right", "left", "top")
        ],
    )
    def test_matches_numpy(self, n, nb, looking, rng):
        a = make_spd(n, rng, dtype=np.float64)
        cfg = KernelConfig(n=n, nb=nb, looking=looking)
        got = np.tril(cholesky_blocked(a, cfg))
        assert np.allclose(got, np.linalg.cholesky(a), rtol=1e-10)

    def test_all_variants_agree_bitwise_structure(self, rng):
        """Different lookings perform the same arithmetic, so results agree
        to tight tolerance even in the presence of rounding."""
        a = make_spd(12, rng, dtype=np.float64)
        results = [
            np.tril(cholesky_blocked(a, KernelConfig(n=12, nb=4, looking=lk)))
            for lk in ("right", "left", "top")
        ]
        for r in results[1:]:
            assert np.allclose(r, results[0], rtol=1e-13)

    def test_dimension_mismatch(self, rng):
        a = make_spd(6, rng, dtype=np.float64)
        with pytest.raises(ValueError):
            cholesky_blocked(a, KernelConfig(n=8, nb=4))
