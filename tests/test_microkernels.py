"""Compute micro-op generation (repro.codegen.microkernels).

Each generated block is exec'd against NumPy scalars and checked against
dense linear algebra — the micro-ops are tiny programs, so we test them
as programs.
"""

import numpy as np
import pytest

from repro.codegen.microkernels import (
    OpMixCounter,
    sgemm_tile_ops,
    sgemm_tile_source,
    spotrf_tile_ops,
    spotrf_tile_source,
    ssyrk_tile_ops,
    ssyrk_tile_source,
    strsm_tile_ops,
    strsm_tile_source,
)


def bind_tile(ns: dict, reg: str, tile: np.ndarray, lower_only: bool = False) -> None:
    rows, cols = tile.shape
    for i in range(rows):
        for j in range(cols):
            if lower_only and j > i:
                continue
            ns[f"{reg}_{i}_{j}"] = np.float64(tile[i, j])


def read_tile(ns: dict, reg: str, rows: int, cols: int, lower_only: bool = False) -> np.ndarray:
    out = np.zeros((rows, cols))
    for i in range(rows):
        for j in range(cols):
            if lower_only and j > i:
                continue
            out[i, j] = ns[f"{reg}_{i}_{j}"]
    return out


def run_block(source: str, ns: dict) -> None:
    ns.setdefault("_sqrt", np.sqrt)
    ns.setdefault("_one", np.float64(1.0))
    exec(compile(source, "<microkernel>", "exec"), ns)  # noqa: S102


def spd_tile(kb: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((kb, kb))
    return g @ g.T + kb * np.eye(kb)


class TestSpotrfTile:
    @pytest.mark.parametrize("kb", [1, 2, 3, 5, 8])
    def test_matches_numpy_cholesky(self, kb):
        a = spd_tile(kb, seed=kb)
        ns: dict = {}
        bind_tile(ns, "rA", a, lower_only=True)
        run_block(spotrf_tile_source("rA", kb), ns)
        got = read_tile(ns, "rA", kb, kb, lower_only=True)
        assert np.allclose(got, np.linalg.cholesky(a), rtol=1e-10)

    def test_op_mix_matches_statement_count(self):
        for kb in (1, 2, 4, 7):
            src = spotrf_tile_source("rA", kb)
            ops = spotrf_tile_ops(kb)
            assert src.count("_sqrt(") == ops.sqrt
            assert src.count("_one /") == ops.div
            assert src.count("* _inv") == ops.mul
            # every FMA line is 'x = x - a * b'
            assert sum(" - " in line for line in src.splitlines()) == ops.fma

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            spotrf_tile_source("rA", 0)


class TestStrsmTile:
    @pytest.mark.parametrize("mb,kb", [(1, 1), (2, 2), (3, 2), (2, 5), (4, 4)])
    def test_solves_x_lt_equals_a(self, mb, kb):
        """strsm computes X = A * L^{-T} for a factored diagonal tile L."""
        l = np.linalg.cholesky(spd_tile(kb, seed=3))
        a = np.random.default_rng(4).standard_normal((mb, kb))
        ns: dict = {}
        bind_tile(ns, "rA1", l, lower_only=True)
        bind_tile(ns, "rA2", a)
        run_block(strsm_tile_source("rA1", "rA2", mb, kb), ns)
        got = read_tile(ns, "rA2", mb, kb)
        assert np.allclose(got @ l.T, a, rtol=1e-10)

    def test_op_mix(self):
        ops = strsm_tile_ops(3, 4)
        assert ops.div == 12
        assert ops.fma == 3 * 4 * 3 // 2


class TestSsyrkTile:
    @pytest.mark.parametrize("mb,kb", [(1, 1), (2, 3), (4, 2), (5, 5)])
    def test_lower_rank_k_update(self, mb, kb):
        a1 = np.random.default_rng(5).standard_normal((mb, kb))
        a2 = np.random.default_rng(6).standard_normal((mb, mb))
        a2 = np.tril(a2)
        ns: dict = {}
        bind_tile(ns, "rA1", a1)
        bind_tile(ns, "rA2", a2, lower_only=True)
        run_block(ssyrk_tile_source("rA1", "rA2", mb, kb), ns)
        got = read_tile(ns, "rA2", mb, mb, lower_only=True)
        expected = a2 - np.tril(a1 @ a1.T)
        assert np.allclose(got, expected, rtol=1e-10)

    def test_op_mix(self):
        assert ssyrk_tile_ops(4, 3) == OpMixCounter(fma=4 * 5 // 2 * 3)


class TestSgemmTile:
    @pytest.mark.parametrize("mb,nb2,kb", [(1, 1, 1), (2, 3, 4), (4, 2, 3)])
    def test_a3_minus_a1_a2t(self, mb, nb2, kb):
        rng = np.random.default_rng(7)
        a1 = rng.standard_normal((mb, kb))
        a2 = rng.standard_normal((nb2, kb))
        a3 = rng.standard_normal((mb, nb2))
        ns: dict = {}
        bind_tile(ns, "rA1", a1)
        bind_tile(ns, "rA2", a2)
        bind_tile(ns, "rA3", a3)
        run_block(sgemm_tile_source("rA1", "rA2", "rA3", mb, nb2, kb), ns)
        got = read_tile(ns, "rA3", mb, nb2)
        assert np.allclose(got, a3 - a1 @ a2.T, rtol=1e-10)

    def test_op_mix(self):
        assert sgemm_tile_ops(2, 3, 4) == OpMixCounter(fma=24)


class TestOpMixCounter:
    def test_flops_convention(self):
        mix = OpMixCounter(fma=10, mul=3, div=2, sqrt=1)
        assert mix.flops == 26
        assert mix.instructions == 16

    def test_addition(self):
        total = OpMixCounter(fma=1) + OpMixCounter(div=2)
        assert total == OpMixCounter(fma=1, div=2)
