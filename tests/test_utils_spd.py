"""SPD batch generation (repro.utils.spd)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.spd import make_spd, random_rhs_batch, random_spd_batch


class TestRandomSpdBatch:
    def test_shape_and_dtype(self):
        a = random_spd_batch(10, 7)
        assert a.shape == (10, 7, 7)
        assert a.dtype == np.float32

    def test_symmetric(self):
        a = random_spd_batch(8, 9, seed=3)
        assert np.array_equal(a, a.transpose(0, 2, 1))

    def test_positive_definite(self):
        a = random_spd_batch(16, 12, seed=5)
        eig = np.linalg.eigvalsh(a.astype(np.float64))
        assert eig.min() > 0

    def test_deterministic_per_seed(self):
        a = random_spd_batch(4, 5, seed=11)
        b = random_spd_batch(4, 5, seed=11)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        a = random_spd_batch(4, 5, seed=1)
        b = random_spd_batch(4, 5, seed=2)
        assert not np.array_equal(a, b)

    def test_generator_accepted(self):
        g = np.random.default_rng(0)
        a = random_spd_batch(3, 4, seed=g)
        assert a.shape == (3, 4, 4)

    @pytest.mark.parametrize("batch,n", [(0, 4), (4, 0), (-1, 4)])
    def test_invalid_sizes_rejected(self, batch, n):
        with pytest.raises(ValueError):
            random_spd_batch(batch, n)

    @settings(max_examples=20, deadline=None)
    @given(batch=st.integers(1, 16), n=st.integers(1, 12))
    def test_property_cholesky_exists(self, batch, n):
        """Every generated batch is factorizable in float64."""
        a = random_spd_batch(batch, n, seed=batch * 100 + n)
        np.linalg.cholesky(a.astype(np.float64))  # raises if not SPD


class TestMakeSpd:
    def test_well_conditioned(self, rng):
        a = make_spd(16, rng)
        cond = np.linalg.cond(a.astype(np.float64))
        assert cond < 1e4  # factorizable comfortably in float32

    def test_invalid_n(self, rng):
        with pytest.raises(ValueError):
            make_spd(0, rng)


class TestRhsBatch:
    def test_shape(self):
        b = random_rhs_batch(6, 5, nrhs=3)
        assert b.shape == (6, 5, 3)
        assert b.dtype == np.float32

    def test_invalid_nrhs(self):
        with pytest.raises(ValueError):
            random_rhs_batch(6, 5, nrhs=0)
