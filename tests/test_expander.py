"""The pyexpander-compatible template engine (repro.codegen.expander)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.expander import ExpanderError, expand


class TestSubstitution:
    def test_expression(self):
        assert expand("x = $(1 + 2);") == "x = 3;"

    def test_env_variable(self):
        assert expand("$(NB * 2)", {"NB": 4}) == "8"

    def test_string_formatting_like_the_paper(self):
        # The paper's templates use $("..." % (...)) everywhere.
        out = expand('$("rA_%d%d = sqrtf(rA_%d%d);" % (k, k, k, k))', {"k": 3})
        assert out == "rA_33 = sqrtf(rA_33);"

    def test_nested_parens_and_quotes(self):
        assert expand('$("f(%s)" % ("a)b",))') == "f(a)b)"

    def test_literal_dollar(self):
        assert expand("cost: $$5") == "cost: $5"

    def test_error_reports_expression(self):
        with pytest.raises(ExpanderError, match="undefined_name"):
            expand("$(undefined_name)")


class TestForLoops:
    def test_simple_loop(self):
        assert expand("$for(i in range(3))$(i),$endfor") == "0,1,2,"

    def test_nested_loops(self):
        out = expand(
            "$for(i in range(2))$for(j in range(2))$(i)$(j) $endfor$endfor"
        )
        assert out == "00 01 10 11 "

    def test_loop_over_env(self):
        assert expand("$for(i in range(NB))x$endfor", {"NB": 4}) == "xxxx"

    def test_tuple_unpacking(self):
        out = expand("$for(a, b in [(1, 2), (3, 4)])$(a + b);$endfor")
        assert out == "3;7;"

    def test_empty_loop(self):
        assert expand("$for(i in range(0))nope$endfor") == ""

    def test_unterminated_for(self):
        with pytest.raises(ExpanderError, match="unterminated"):
            expand("$for(i in range(2))x")

    def test_endfor_without_for(self):
        with pytest.raises(ExpanderError, match="endfor"):
            expand("$endfor")


class TestConditionals:
    def test_if_true(self):
        assert expand("$if(x > 1)big$endif", {"x": 2}) == "big"

    def test_if_false(self):
        assert expand("$if(x > 1)big$endif", {"x": 0}) == ""

    def test_else(self):
        assert expand("$if(x)yes$else\no$endif", {"x": False}) == "\no"

    def test_elif_chain(self):
        template = "$if(x == 1)one$elif(x == 2)two$else\nmany$endif"
        assert expand(template, {"x": 2}) == "two"
        assert expand(template, {"x": 9}) == "\nmany"

    def test_else_after_else_rejected(self):
        with pytest.raises(ExpanderError):
            expand("$if(1)a$else\nb$else\nc$endif")


class TestLineContinuation:
    def test_backslash_suppresses_newline(self):
        assert expand("a\\\nb") == "ab"

    def test_paper_style_template(self):
        template = (
            "$for(k in range(0, NB))\\\n"
            '$("rA_%d%d = sqrt(rA_%d%d)" % (k, k, k, k))\n'
            "$endfor\\\n"
        )
        out = expand(template, {"NB": 2})
        assert out == "rA_00 = sqrt(rA_00)\nrA_11 = sqrt(rA_11)\n"


class TestPyDirective:
    def test_statement_mutates_env(self):
        assert expand("$py(y = 10)$(y)") == "10"


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet=st.characters(blacklist_characters="$\\"), max_size=80))
    def test_plain_text_is_identity(self, text):
        assert expand(text) == text

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 20))
    def test_loop_repetition_count(self, count):
        assert expand(f"$for(i in range({count}))#$endfor") == "#" * count
