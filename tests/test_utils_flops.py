"""Flop-count formulas (repro.utils.flops)."""

import pytest

from repro.utils.flops import (
    OpMix,
    cholesky_flops,
    cholesky_op_mix,
    gflops,
    trsv_flops,
)


class TestCholeskyFlops:
    def test_paper_formula(self):
        # The paper always uses N^3/3.
        assert cholesky_flops(3) == 9.0
        assert cholesky_flops(32) == 32**3 / 3

    def test_zero(self):
        assert cholesky_flops(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cholesky_flops(-1)


class TestOpMix:
    def test_n1_is_single_sqrt(self):
        mix = cholesky_op_mix(1)
        assert mix == OpMix(fma=0, div=0, sqrt=1)

    def test_n2(self):
        # sqrt(a00); a10/=l00; a11 -= a10*a10; sqrt(a11)
        mix = cholesky_op_mix(2)
        assert mix == OpMix(fma=1, div=1, sqrt=2)

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13, 24])
    def test_matches_loop_counts(self, n):
        """Closed forms equal literal trip counts of Algorithm 1."""
        fma = sum(n - m for k in range(n) for m in range(k + 1, n))
        div = sum(1 for k in range(n) for _ in range(k + 1, n))
        mix = cholesky_op_mix(n)
        assert mix.fma == fma
        assert mix.div == div
        assert mix.sqrt == n

    @pytest.mark.parametrize("n", [4, 16, 33])
    def test_total_close_to_nominal(self, n):
        """Exact flops approach n^3/3 (the leading term) for growing n."""
        exact = cholesky_op_mix(n).flops
        nominal = cholesky_flops(n)
        assert exact == pytest.approx(nominal, rel=0.5)

    def test_addition(self):
        total = cholesky_op_mix(3) + cholesky_op_mix(4)
        assert total.sqrt == 7


class TestGflops:
    def test_unit_example(self):
        # 3^3/3 = 9 flops per matrix, 1e9 matrices in 1 s = 9 Gflop/s.
        assert gflops(3, 10**9, 1.0) == pytest.approx(9.0)

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            gflops(4, 10, 0.0)


class TestTrsv:
    def test_formula(self):
        assert trsv_flops(5) == 25.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            trsv_flops(-2)
