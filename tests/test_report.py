"""Bottleneck attribution (repro.gpusim.report)."""

import pytest

from repro.core.config import KernelConfig
from repro.gpusim.model import estimate_performance
from repro.gpusim.report import Finding, diagnose, explain


class TestDiagnose:
    def test_nb1_blames_register_reuse(self):
        est = estimate_performance(
            KernelConfig(n=48, nb=1, unroll="partial"), batch=16384
        )
        findings = diagnose(est)
        assert findings, "nb=1 at n=48 must have findings"
        assert findings[0].factor == "register reuse"
        assert "nb" in findings[0].suggestion

    def test_non_chunked_blames_locality(self):
        est = estimate_performance(
            KernelConfig(n=32, nb=8, chunked=False), batch=16384
        )
        factors = {f.factor for f in diagnose(est)}
        assert "dram locality" in factors

    def test_chunk512_blames_idle_sms(self):
        est = estimate_performance(
            KernelConfig(n=32, nb=8, chunked=True, chunk_size=512), batch=16384
        )
        factors = {f.factor for f in diagnose(est)}
        assert "idle SMs" in factors

    def test_oversized_full_unroll_blames_fetch(self):
        est = estimate_performance(
            KernelConfig(n=48, nb=4, unroll="full"), batch=16384
        )
        factors = {f.factor for f in diagnose(est)}
        assert "instruction fetch" in factors

    def test_good_config_few_findings(self):
        est = estimate_performance(
            KernelConfig(n=16, nb=8, unroll="full", chunked=True, chunk_size=32),
            batch=262144,  # enough work to lift the latency bound
        )
        findings = diagnose(est)
        # no layout/fetch/spill complaints on the tuned configuration
        factors = {f.factor for f in findings}
        assert "coalescing" not in factors
        assert "dram locality" not in factors
        assert "instruction fetch" not in factors

    def test_findings_sorted_by_impact(self):
        est = estimate_performance(
            KernelConfig(n=48, nb=1, chunked=False), batch=16384
        )
        impacts = [f.impact for f in diagnose(est)]
        assert impacts == sorted(impacts, reverse=True)
        assert all(0.0 <= i <= 1.0 for i in impacts)


class TestExplain:
    def test_render_contains_numbers_and_suggestions(self):
        text = explain(KernelConfig(n=32, nb=1, chunked=False), batch=16384)
        assert "Gflop/s" in text
        assert "->" in text

    def test_finding_is_frozen(self):
        f = Finding(factor="x", impact=0.5, detail="d", suggestion="s")
        with pytest.raises(AttributeError):
            f.impact = 0.9  # type: ignore[misc]
