"""Cross-module integration tests.

Each test exercises a realistic end-to-end path through several
subsystems at once, the way the examples and benchmarks do.
"""

import numpy as np
import pytest

from repro import (
    KernelConfig,
    batch_cholesky,
    batch_solve,
    estimate_performance,
    random_spd_batch,
)
from repro.autotune import ParameterSpace, run_sweep
from repro.autotune.analysis import forest_fit_quality, parameter_importance
from repro.baselines.lapack import lapack_cholesky_batch
from repro.baselines.magma import estimate_magma_performance, magma_cholesky_batch
from repro.core.reference import cholesky_blocked
from repro.utils.errors import factorization_error, relative_residual
from repro.utils.spd import random_rhs_batch


class TestThreeWayNumericAgreement:
    """Generated kernels vs schedule interpreter vs LAPACK on one input."""

    @pytest.mark.parametrize("looking", ["right", "left", "top"])
    def test_all_paths_agree(self, looking):
        n, nb = 10, 4  # corner case: 10 % 4 != 0
        a = random_spd_batch(8, n, seed=123)
        cfg = KernelConfig(n=n, nb=nb, looking=looking, unroll="full")

        kernel_l = np.tril(batch_cholesky(a, cfg).astype(np.float64))
        lapack_l = lapack_cholesky_batch(a).astype(np.float64)
        sched_l = np.stack(
            [np.tril(cholesky_blocked(a[i].astype(np.float64), cfg)) for i in range(8)]
        )

        assert np.allclose(kernel_l, lapack_l, atol=2e-3)
        assert np.allclose(sched_l, lapack_l, atol=1e-6)


class TestFactorSolveVerifyLoop:
    def test_full_pipeline(self):
        a = random_spd_batch(500, 12, seed=5)
        b = random_rhs_batch(500, 12, nrhs=3, seed=6)
        cfg = KernelConfig(n=12, nb=4, chunked=True, chunk_size=64, looking="left")
        l = batch_cholesky(a, cfg)
        assert factorization_error(a, l) < 1e-5
        x = batch_solve(l, b)
        assert relative_residual(a, x, b) < 1e-5

    def test_magma_baseline_same_answers(self):
        a = random_spd_batch(64, 8, seed=7)
        ours = np.tril(batch_cholesky(a, KernelConfig(n=8, nb=4)))
        magma = np.tril(magma_cholesky_batch(a))
        assert np.allclose(ours, magma, atol=1e-4)


class TestSweepToAnalysisPipeline:
    def test_sweep_forest_importance_chain(self):
        space = ParameterSpace(
            ns=(8, 24, 48),
            nbs=(1, 4, 8),
            chunkings=(None, 32, 512),
            cache_prefs=("l1", "shared"),
        )
        dataset = run_sweep(space, batch=16384)
        assert len(dataset.successful()) > 100

        imp = parameter_importance(dataset, n_estimators=40)
        # physical knobs must out-rank the no-op cache knob
        assert imp["nb"] > imp["cache_pref"]
        assert imp["chunked"] > imp["cache_pref"]

        quality = forest_fit_quality(dataset, n_estimators=40)
        assert quality.oob_r > 0.85

    def test_best_config_beats_median(self):
        space = ParameterSpace(
            ns=(32,), nbs=(1, 2, 4, 8), chunkings=(None, 32, 512),
            cache_prefs=("l1",),
        )
        dataset = run_sweep(space, batch=16384)
        values = sorted(r.gflops for r in dataset.successful())
        best = values[-1]
        median = values[len(values) // 2]
        assert best > 1.5 * median  # tuning matters


class TestModelConsistency:
    def test_model_and_magma_share_flop_convention(self):
        """Same time => same Gflop/s irrespective of implementation."""
        est = estimate_performance(KernelConfig(n=16, nb=4), batch=2048)
        magma = estimate_magma_performance(16, batch=2048)
        ours = est.gflops * est.seconds
        theirs = magma.gflops * magma.seconds
        assert ours == pytest.approx(theirs)  # both = flops / 1e9

    def test_batch_padding_counted_in_time_not_flops(self):
        """Gflop/s is computed over the *requested* batch."""
        e1 = estimate_performance(KernelConfig(n=8, nb=4), batch=33)
        e2 = estimate_performance(KernelConfig(n=8, nb=4), batch=64)
        assert e1.seconds == pytest.approx(e2.seconds)
        assert e1.gflops < e2.gflops
