"""Kernel traces (repro.core.trace)."""

from repro.core.config import KernelConfig
from repro.core.trace import build_trace
from repro.utils.flops import cholesky_op_mix


class TestTraceContents:
    def test_counts_and_ops_agree(self):
        trace = build_trace(KernelConfig(n=12, nb=4, looking="top"))
        assert trace.load_elements == sum(op.elems for op in trace.ops if op.is_load)
        assert trace.store_elements == sum(
            op.elems for op in trace.ops if op.is_store
        )

    def test_flops_match_reference(self):
        trace = build_trace(KernelConfig(n=10, nb=3, looking="left"))
        ref = cholesky_op_mix(10)
        assert trace.counts.mix.fma == ref.fma
        assert trace.counts.mix.sqrt == ref.sqrt

    def test_static_statements_positive(self):
        trace = build_trace(KernelConfig(n=8, nb=4, unroll="full"))
        assert trace.static_statements > 0


class TestTraceCaching:
    def test_shared_across_runtime_knobs(self):
        base = KernelConfig(n=8, nb=4)
        t1 = build_trace(base)
        t2 = build_trace(base.with_(chunk_size=256, fast_math=True))
        assert t1 is t2

    def test_distinct_for_codegen_knobs(self):
        t1 = build_trace(KernelConfig(n=8, nb=4, unroll="partial"))
        t2 = build_trace(KernelConfig(n=8, nb=4, unroll="full"))
        assert t1 is not t2
        # same dynamic ops, different static code size
        assert t1.ops == t2.ops
        assert t1.static_statements != t2.static_statements

    def test_canonicalised_config(self):
        t = build_trace(KernelConfig(n=8, nb=4, chunked=True, chunk_size=512))
        assert t.config.trace_key() == (8, 4, "top", "partial")

    def test_uplo_shares_trace(self):
        lower = build_trace(KernelConfig(n=8, nb=4))
        upper = build_trace(KernelConfig(n=8, nb=4, uplo="upper"))
        assert lower is upper  # same dynamic schedule, transposed addressing
