"""Random forest regressor (repro.ml.forest)."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import mse, pearson_r


def friedman_like(m=400, seed=0):
    """Regression data with two strong, one weak, one useless feature."""
    rng = np.random.default_rng(seed)
    x = rng.random((m, 4))
    y = (
        20.0 * x[:, 0]
        + 10.0 * np.sin(np.pi * x[:, 1])
        + 2.0 * x[:, 2]
        + 0.0 * x[:, 3]
        + 0.3 * rng.standard_normal(m)
    )
    return x, y


class TestFitPredict:
    def test_fits_nonlinear_signal(self):
        x, y = friedman_like()
        forest = RandomForestRegressor(n_estimators=40, seed=1).fit(x, y)
        assert pearson_r(y, forest.predict(x)) > 0.97

    def test_oob_close_to_holdout_quality(self):
        x, y = friedman_like(m=600)
        forest = RandomForestRegressor(n_estimators=60, seed=2).fit(x, y)
        oob = forest.oob_prediction()
        assert pearson_r(y, oob) > 0.9
        # OOB must be worse than (or equal to) training predictions.
        assert mse(y, oob) >= mse(y, forest.predict(x)) * 0.99

    def test_deterministic_given_seed(self):
        x, y = friedman_like(m=200)
        f1 = RandomForestRegressor(n_estimators=10, seed=3).fit(x, y)
        f2 = RandomForestRegressor(n_estimators=10, seed=3).fit(x, y)
        assert np.array_equal(f1.predict(x), f2.predict(x))

    def test_more_trees_do_not_hurt(self):
        x, y = friedman_like(m=300, seed=5)
        small = RandomForestRegressor(n_estimators=5, seed=4).fit(x, y)
        big = RandomForestRegressor(n_estimators=60, seed=4).fit(x, y)
        assert big.oob_mse() <= small.oob_mse() * 1.1

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor(n_estimators=2).predict(np.zeros((1, 3)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)


class TestPermutationImportance:
    def test_ranks_features_correctly(self):
        x, y = friedman_like(m=500, seed=6)
        forest = RandomForestRegressor(n_estimators=40, seed=7).fit(x, y)
        imp = forest.permutation_importance()
        # strong features clearly above the useless one
        assert imp[0] > imp[3]
        assert imp[1] > imp[3]
        # useless feature hovers near zero (can be negative, like Table I's
        # cache parameter)
        assert abs(imp[3]) < imp[0] / 3

    def test_importance_shape(self):
        x, y = friedman_like(m=100)
        forest = RandomForestRegressor(n_estimators=10, seed=8).fit(x, y)
        assert forest.permutation_importance().shape == (4,)


class TestProximity:
    def test_symmetric_unit_diagonal(self):
        x, y = friedman_like(m=60)
        forest = RandomForestRegressor(n_estimators=15, seed=9).fit(x, y)
        prox = forest.proximity()
        assert prox.shape == (60, 60)
        assert np.allclose(prox, prox.T)
        assert np.allclose(np.diag(prox), 1.0)
        assert prox.min() >= 0.0 and prox.max() <= 1.0

    def test_similar_rows_are_proximate(self):
        x, y = friedman_like(m=80, seed=10)
        forest = RandomForestRegressor(n_estimators=20, seed=11).fit(x, y)
        prox = forest.proximity()
        # nearest point in feature space should be more proximate than the
        # average stranger for most rows
        d = np.linalg.norm(x[:, None] - x[None, :], axis=2) + np.eye(80) * 1e9
        nn = d.argmin(axis=1)
        close = prox[np.arange(80), nn]
        assert close.mean() > prox.mean()

    def test_row_cap(self):
        x, y = friedman_like(m=50)
        forest = RandomForestRegressor(n_estimators=5, seed=12).fit(x, y)
        with pytest.raises(ValueError):
            forest.proximity(max_rows=10)


class TestGeometry:
    def test_average_depth_reported(self):
        x, y = friedman_like(m=300)
        forest = RandomForestRegressor(n_estimators=10, seed=13).fit(x, y)
        assert forest.average_depth() > 1.0
