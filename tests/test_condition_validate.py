"""Conditioned generation and post-factorization validation."""

import numpy as np
import pytest

from repro.core.config import KernelConfig
from repro.core.factorize import batch_cholesky
from repro.core.validate import assert_factorization_ok, factorization_info
from repro.utils.condition import condition_numbers, conditioned_spd_batch
from repro.utils.spd import random_spd_batch


class TestConditionedGeneration:
    @pytest.mark.parametrize("kappa", [1.0, 1e2, 1e5])
    def test_condition_number_is_exact(self, kappa):
        a = conditioned_spd_batch(8, 10, kappa, seed=1)
        measured = condition_numbers(a.astype(np.float64))
        assert np.allclose(measured, kappa, rtol=0.05)

    def test_symmetric_and_spd(self):
        a = conditioned_spd_batch(5, 7, 1e3, seed=2).astype(np.float64)
        assert np.allclose(a, a.transpose(0, 2, 1))
        assert np.linalg.eigvalsh(a).min() > 0

    def test_n_equals_one(self):
        a = conditioned_spd_batch(4, 1, 10.0)
        assert np.allclose(a, 1.0)

    def test_invalid_condition(self):
        with pytest.raises(ValueError):
            conditioned_spd_batch(4, 4, 0.5)

    def test_condition_numbers_validates(self):
        with pytest.raises(ValueError):
            condition_numbers(-np.eye(3)[None])
        with pytest.raises(ValueError):
            condition_numbers(np.zeros((3, 3)))


class TestFactorizationInfo:
    def test_clean_factors(self):
        a = random_spd_batch(12, 6, seed=1)
        l = batch_cholesky(a, KernelConfig(n=6, nb=3))
        assert np.array_equal(factorization_info(l), np.zeros(12, dtype=np.int64))
        assert_factorization_ok(l)  # must not raise

    def test_non_spd_input_detected(self):
        """A non-SPD matrix silently NaNs through the branch-free kernel;
        the info helper localises it."""
        a = random_spd_batch(8, 5, seed=2)
        a[3] = np.eye(5, dtype=np.float32)
        a[3, 2, 2] = -4.0  # breaks positivity at column 2
        l = batch_cholesky(a, KernelConfig(n=5, nb=5, unroll="full"))
        info = factorization_info(l)
        assert info[3] == 3  # 1-based failing column
        assert np.all(info[np.arange(8) != 3] == 0)

    def test_assert_raises_with_context(self):
        a = random_spd_batch(4, 4, seed=3)
        a[1] = -np.eye(4, dtype=np.float32)
        l = batch_cholesky(a, KernelConfig(n=4, nb=2))
        with pytest.raises(np.linalg.LinAlgError, match="matrix 1"):
            assert_factorization_ok(l)

    def test_nan_in_lower_detected(self):
        l = np.tile(np.eye(4, dtype=np.float32), (3, 1, 1))
        l[2, 3, 1] = np.nan
        info = factorization_info(l)
        assert info[2] == 2  # column 1, 1-based

    def test_upper_garbage_ignored(self):
        l = np.tile(np.eye(4, dtype=np.float32), (2, 1, 1))
        l[:, 0, 3] = np.nan  # strictly upper: untouched input region
        assert np.array_equal(factorization_info(l), [0, 0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            factorization_info(np.zeros((3, 3)))


class TestAccuracyStudyHarness:
    def test_runs_and_passes(self):
        from repro.experiments.accuracy_study import run

        result = run()
        assert result.all_checks_pass, result.render()
