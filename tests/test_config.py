"""Kernel configuration (repro.core.config)."""

import pytest

from repro.core.config import (
    DEFAULT_BLOCK_THREADS,
    CachePreference,
    KernelConfig,
    Looking,
    Unrolling,
)
from repro.layouts.chunked import ChunkedInterleavedLayout
from repro.layouts.interleaved import InterleavedLayout


class TestValidation:
    def test_defaults(self):
        cfg = KernelConfig(n=16)
        assert cfg.looking is Looking.TOP
        assert cfg.unroll is Unrolling.PARTIAL
        assert cfg.cache_pref is CachePreference.L1

    def test_string_coercion(self):
        cfg = KernelConfig(n=8, looking="left", unroll="full", cache_pref="shared")
        assert cfg.looking is Looking.LEFT
        assert cfg.unroll is Unrolling.FULL

    def test_invalid_looking(self):
        with pytest.raises(ValueError):
            KernelConfig(n=8, looking="down")

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            KernelConfig(n=8, chunked=True, chunk_size=48)

    def test_nonchunked_ignores_chunk_size_validity(self):
        # chunk_size is irrelevant when not chunked, but still validated
        # against the supported list only when chunked.
        cfg = KernelConfig(n=8, chunked=False, chunk_size=32)
        assert not cfg.chunked

    @pytest.mark.parametrize("field,value", [("n", 0), ("nb", 0), ("n", -3)])
    def test_positive_dims(self, field, value):
        kwargs = {"n": 8, "nb": 2}
        kwargs[field] = value
        with pytest.raises(ValueError):
            KernelConfig(**kwargs)


class TestGeometry:
    def test_effective_nb_clips(self):
        assert KernelConfig(n=4, nb=9).effective_nb == 4

    def test_tile_counts_divisible(self):
        cfg = KernelConfig(n=12, nb=4)
        assert cfg.num_tiles == 3
        assert cfg.full_tiles == 3
        assert cfg.corner == 0

    def test_tile_counts_with_corner(self):
        cfg = KernelConfig(n=14, nb=4)
        assert cfg.num_tiles == 4
        assert cfg.full_tiles == 3
        assert cfg.corner == 2

    def test_block_threads(self):
        assert KernelConfig(n=8, chunked=True, chunk_size=128).block_threads == 128
        assert KernelConfig(n=8, chunked=False).block_threads == DEFAULT_BLOCK_THREADS


class TestLayoutSelection:
    def test_chunked_layout(self):
        layout = KernelConfig(n=8, chunked=True, chunk_size=64).layout()
        assert isinstance(layout, ChunkedInterleavedLayout)
        assert layout.chunk_size == 64

    def test_simple_layout(self):
        assert isinstance(KernelConfig(n=8, chunked=False).layout(), InterleavedLayout)


class TestCacheKey:
    def test_key_ignores_runtime_knobs(self):
        base = KernelConfig(n=8, nb=4)
        assert base.cache_key() == base.with_(chunk_size=256).cache_key()
        assert base.cache_key() == base.with_(fast_math=True).cache_key()
        assert base.cache_key() == base.with_(chunked=False).cache_key()
        assert base.cache_key() == base.with_(cache_pref="shared").cache_key()

    def test_key_tracks_codegen_knobs(self):
        base = KernelConfig(n=8, nb=4)
        assert base.cache_key() != base.with_(nb=2).cache_key()
        assert base.cache_key() != base.with_(looking="right").cache_key()
        assert base.cache_key() != base.with_(unroll="full").cache_key()

    def test_with_returns_new_frozen_config(self):
        base = KernelConfig(n=8)
        other = base.with_(nb=2)
        assert other.nb == 2
        assert base.nb != 2

    def test_describe_mentions_everything(self):
        text = KernelConfig(
            n=8, nb=2, looking="left", chunked=True, chunk_size=64, fast_math=True
        ).describe()
        for token in ("n=8", "nb=2", "left", "chunked(64)", "fast"):
            assert token in text
