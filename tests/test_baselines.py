"""Comparator implementations (repro.baselines)."""

import numpy as np
import pytest

from repro.baselines.lapack import lapack_cholesky_batch, lapack_solve_batch
from repro.baselines.magma import (
    estimate_magma_performance,
    magma_cholesky_batch,
)
from repro.utils.spd import random_rhs_batch, random_spd_batch


class TestLapackOracle:
    def test_factors_match_numpy(self):
        a = random_spd_batch(10, 7, seed=0)
        l = lapack_cholesky_batch(a)
        assert np.allclose(l, np.linalg.cholesky(a.astype(np.float64)), atol=1e-5)
        assert np.allclose(np.triu(l, 1), 0.0)

    def test_solve_residual(self):
        a = random_spd_batch(8, 6, seed=1)
        b = random_rhs_batch(8, 6, nrhs=2, seed=2)
        x = lapack_solve_batch(a, b)
        r = a.astype(np.float64) @ x.astype(np.float64) - b
        assert np.abs(r).max() < 1e-4

    def test_solve_2d_rhs(self):
        a = random_spd_batch(4, 5, seed=3)
        b = random_rhs_batch(4, 5, seed=4)[:, :, 0]
        assert lapack_solve_batch(a, b).shape == (4, 5)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            lapack_cholesky_batch(np.zeros((3, 3)))


class TestMagmaNumeric:
    def test_matches_lapack(self):
        a = random_spd_batch(20, 9, seed=5)
        got = np.tril(magma_cholesky_batch(a))
        ref = np.linalg.cholesky(a.astype(np.float64))
        assert np.allclose(got, ref, atol=2e-3)


class TestMagmaModel:
    def test_estimate_consistency(self):
        e = estimate_magma_performance(16)
        assert e.seconds > 0 and e.gflops > 0
        assert 0 < e.lane_utilization <= 1.0

    def test_coalescing_worsens_for_small_n(self):
        e8 = estimate_magma_performance(8)
        e32 = estimate_magma_performance(32)
        assert e8.coalescing > e32.coalescing
        assert e32.coalescing == pytest.approx(1.0)

    def test_performance_grows_with_n_overall(self):
        """Small matrices waste lanes + pay per-block overhead."""
        g = [estimate_magma_performance(n).gflops for n in (4, 8, 16, 32)]
        assert g == sorted(g)

    def test_fast_math_helps(self):
        assert (
            estimate_magma_performance(24, fast_math=True).gflops
            > estimate_magma_performance(24).gflops
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            estimate_magma_performance(0)
        with pytest.raises(ValueError):
            estimate_magma_performance(8, batch=0)


class TestPaperComparison:
    """The Figure 13/14 relationship between the two implementations."""

    def test_interleaved_wins_small_magma_catches_up(self):
        from repro.core.config import KernelConfig
        from repro.gpusim.model import estimate_performance

        def interleaved_best(n):
            return max(
                estimate_performance(
                    KernelConfig(n=n, nb=nb, looking="top", unroll=ur)
                ).gflops
                for nb in (2, 8)
                for ur in ("partial", "full")
            )

        small_speedup = interleaved_best(8) / estimate_magma_performance(8).gflops
        large_speedup = interleaved_best(64) / estimate_magma_performance(64).gflops
        assert small_speedup > 3.0
        assert large_speedup < small_speedup
        assert large_speedup < 2.0
