"""Batched BLAS routines and the Figure 6 tile Cholesky (repro.batchblas)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batchblas import (
    batched_gemm,
    batched_syrk,
    batched_trsm,
    reference_gemm,
    reference_syrk,
    reference_trsm,
    tile_cholesky,
)
from repro.batchblas.kernels import (
    MAX_STATEMENTS,
    clear_blas_kernel_cache,
    gemm_kernel,
    syrk_kernel,
    trsm_kernel,
)
from repro.core.config import KernelConfig
from repro.utils.spd import random_spd_batch


def randn(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


def lower_factors(batch, k, seed=0):
    spd = random_spd_batch(batch, k, seed=seed).astype(np.float64)
    return np.linalg.cholesky(spd).astype(np.float32)


class TestReferenceSemantics:
    def test_gemm_identity_alpha_beta(self):
        a, b = randn((3, 2, 4), 1), randn((3, 4, 5), 2)
        c = randn((3, 2, 5), 3)
        out = reference_gemm(a, b, c, alpha=0.0, beta=1.0)
        assert np.allclose(out, c)

    def test_syrk_upper_untouched(self):
        a, c = randn((4, 3, 2), 1), randn((4, 3, 3), 2)
        out = reference_syrk(a, c, alpha=2.0, beta=0.0)
        assert np.array_equal(np.triu(out, 1), np.triu(c, 1))

    def test_trsm_left_inverts(self):
        l = lower_factors(5, 4, seed=3)
        x = randn((5, 4, 2), 4).astype(np.float64)
        b = np.tril(l).astype(np.float64) @ x
        got = reference_trsm(l, b, side="left")
        assert np.allclose(got, x, atol=1e-5)

    def test_trsm_right_inverts(self):
        l = lower_factors(5, 4, seed=5)
        x = randn((5, 6, 4), 6).astype(np.float64)
        b = x @ np.tril(l).astype(np.float64).transpose(0, 2, 1)
        got = reference_trsm(l, b, side="right")
        assert np.allclose(got, x, atol=1e-4)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            reference_gemm(randn((2, 3, 4)), randn((2, 3, 4)), randn((2, 3, 3)))
        with pytest.raises(ValueError):
            reference_trsm(lower_factors(2, 3), randn((2, 4, 1)), side="left")
        with pytest.raises(ValueError):
            reference_trsm(lower_factors(2, 3), randn((2, 3, 1)), side="up")


class TestBatchedGemm:
    @pytest.mark.parametrize("transa,transb", list(itertools.product([False, True], repeat=2)))
    @pytest.mark.parametrize("chunk", [None, 32])
    def test_matches_reference(self, transa, transb, chunk):
        batch, m, n, k = 45, 5, 4, 3
        a = randn((batch, k, m) if transa else (batch, m, k), 7)
        b = randn((batch, n, k) if transb else (batch, k, n), 8)
        c = randn((batch, m, n), 9)
        got = batched_gemm(a, b, c, alpha=-1.5, beta=0.25, transa=transa,
                           transb=transb, chunk_size=chunk)
        ref = reference_gemm(a, b, c, alpha=-1.5, beta=0.25, transa=transa,
                             transb=transb)
        assert np.allclose(got, ref, atol=1e-4)

    def test_wrong_inner_dimension(self):
        with pytest.raises(ValueError):
            batched_gemm(randn((2, 3, 4)), randn((2, 5, 2)), randn((2, 3, 2)))

    def test_batch_mismatch(self):
        with pytest.raises(ValueError):
            batched_gemm(randn((2, 3, 4)), randn((3, 4, 2)), randn((2, 3, 2)))


class TestBatchedSyrk:
    @pytest.mark.parametrize("chunk", [None, 64])
    def test_matches_reference(self, chunk):
        a = randn((40, 6, 3), 10)
        c = randn((40, 6, 6), 11)
        got = batched_syrk(a, c, alpha=-1.0, beta=1.0, chunk_size=chunk)
        ref = reference_syrk(a, c, alpha=-1.0, beta=1.0)
        assert np.allclose(got, ref, atol=1e-4)

    def test_upper_preserved(self):
        a = randn((8, 4, 2), 12)
        c = randn((8, 4, 4), 13)
        got = batched_syrk(a, c)
        assert np.array_equal(np.triu(got, 1), np.triu(c, 1))


class TestBatchedTrsm:
    @pytest.mark.parametrize("side", ["left", "right"])
    @pytest.mark.parametrize("chunk", [None, 32])
    def test_matches_reference(self, side, chunk):
        l = lower_factors(37, 5, seed=14)  # odd batch: padding exercised
        shape = (37, 5, 3) if side == "left" else (37, 6, 5)
        b = randn(shape, 15)
        got = batched_trsm(l, b, alpha=2.0, side=side, chunk_size=chunk)
        ref = reference_trsm(l, b, alpha=2.0, side=side)
        assert np.allclose(got, ref, atol=1e-3)

    def test_only_lower_triangle_read(self):
        l = lower_factors(10, 4, seed=16)
        dirty = l + np.triu(np.ones((4, 4), dtype=np.float32), 1) * 100
        b = randn((10, 4, 2), 17)
        assert np.allclose(
            batched_trsm(l, b, side="left"), batched_trsm(dirty, b, side="left")
        )


class TestKernelGuards:
    def test_oversized_shape_rejected(self):
        with pytest.raises(ValueError, match="statements"):
            gemm_kernel(64, 64, 64, False, False)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            syrk_kernel(0, 3)
        with pytest.raises(ValueError):
            trsm_kernel(3, 2, "middle")

    def test_cache_reuse(self):
        clear_blas_kernel_cache()
        assert gemm_kernel(3, 3, 3, False, False) is gemm_kernel(3, 3, 3, False, False)
        assert gemm_kernel(3, 3, 3, False, True) is not gemm_kernel(3, 3, 3, False, False)

    def test_limit_constant_sane(self):
        assert MAX_STATEMENTS > 10_000


class TestTileCholesky:
    @pytest.mark.parametrize("n,tile", [(8, 4), (16, 4), (24, 8), (12, 12)])
    def test_matches_numpy(self, n, tile):
        a = random_spd_batch(30, n, seed=n)
        l = tile_cholesky(a, tile=tile)
        ref = np.linalg.cholesky(a.astype(np.float64))
        assert np.allclose(np.tril(l.astype(np.float64)), ref, atol=3e-3)

    def test_upper_untouched(self):
        a = random_spd_batch(10, 16, seed=20)
        l = tile_cholesky(a, tile=8)
        assert np.allclose(np.triu(l, 1), np.triu(a, 1), atol=1e-6)

    def test_tile_must_divide(self):
        with pytest.raises(ValueError):
            tile_cholesky(random_spd_batch(4, 10, seed=1), tile=4)

    def test_custom_base_config(self):
        a = random_spd_batch(16, 8, seed=21)
        cfg = KernelConfig(n=4, nb=2, looking="right", unroll="full")
        l = tile_cholesky(a, tile=4, base_config=cfg)
        ref = np.linalg.cholesky(a.astype(np.float64))
        assert np.allclose(np.tril(l.astype(np.float64)), ref, atol=2e-3)

    def test_base_config_dimension_checked(self):
        with pytest.raises(ValueError):
            tile_cholesky(random_spd_batch(4, 8, seed=1), tile=4,
                          base_config=KernelConfig(n=8))


class TestProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        batch=st.integers(1, 40),
        m=st.integers(1, 6),
        n=st.integers(1, 6),
        k=st.integers(1, 6),
    )
    def test_gemm_any_shape(self, batch, m, n, k):
        seed = batch * 1000 + m * 100 + n * 10 + k
        a, b, c = randn((batch, m, k), seed), randn((batch, k, n), seed + 1), randn(
            (batch, m, n), seed + 2
        )
        got = batched_gemm(a, b, c, alpha=1.0, beta=-1.0)
        ref = reference_gemm(a, b, c, alpha=1.0, beta=-1.0)
        assert np.allclose(got, ref, atol=1e-4)
