"""CART regression trees (repro.ml.tree)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import mse
from repro.ml.tree import RegressionTree


def step_data(m=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.random((m, 2))
    y = np.where(x[:, 0] > 0.5, 10.0, -10.0) + 0.01 * rng.standard_normal(m)
    return x, y


class TestFitting:
    def test_learns_a_step_function(self):
        x, y = step_data()
        tree = RegressionTree(min_samples_leaf=1).fit(x, y)
        pred = tree.predict(x)
        assert mse(y, pred) < 0.5

    def test_depth_zero_is_mean_predictor(self):
        x, y = step_data()
        tree = RegressionTree(max_depth=0).fit(x, y)
        assert np.allclose(tree.predict(x), y.mean())

    def test_respects_max_depth(self):
        x, y = step_data(m=500, seed=1)
        tree = RegressionTree(max_depth=3, min_samples_leaf=1).fit(x, y)
        assert tree.depth() <= 3

    def test_pure_leaf_stops(self):
        x = np.arange(20.0)[:, None]
        y = np.zeros(20)
        tree = RegressionTree().fit(x, y)
        assert tree.node_count() == 1

    def test_min_samples_leaf_respected(self):
        x, y = step_data(m=40, seed=2)
        tree = RegressionTree(min_samples_leaf=15).fit(x, y)
        leaf_sizes = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaf_sizes.append(node.n_samples)
            else:
                stack.extend((node.left, node.right))
        assert min(leaf_sizes) >= 15

    def test_deterministic_given_rng(self):
        x, y = step_data(m=300, seed=3)
        t1 = RegressionTree(max_features=1, rng=np.random.default_rng(7)).fit(x, y)
        t2 = RegressionTree(max_features=1, rng=np.random.default_rng(7)).fit(x, y)
        assert np.array_equal(t1.predict(x), t2.predict(x))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((3,)), np.zeros(3))
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))


class TestPrediction:
    def test_predictions_within_target_range(self):
        x, y = step_data(m=300, seed=4)
        tree = RegressionTree().fit(x, y)
        pred = tree.predict(x)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    def test_apply_consistent_with_predict(self):
        """Rows landing in the same leaf get the same prediction."""
        x, y = step_data(m=200, seed=5)
        tree = RegressionTree(max_depth=4).fit(x, y)
        leaves = tree.apply(x)
        pred = tree.predict(x)
        for leaf in np.unique(leaves):
            assert np.allclose(pred[leaves == leaf], pred[leaves == leaf][0])

    def test_feature_count_checked(self):
        x, y = step_data()
        tree = RegressionTree().fit(x, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((3, 5)))


class TestProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_never_worse_than_mean_on_train(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.random((100, 3))
        y = x @ np.array([3.0, -2.0, 0.5]) + 0.1 * rng.standard_normal(100)
        tree = RegressionTree(min_samples_leaf=5).fit(x, y)
        assert mse(y, tree.predict(x)) <= mse(y, np.full_like(y, y.mean())) + 1e-12
