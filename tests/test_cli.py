"""Command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_factor_defaults(self):
        args = build_parser().parse_args(["factor", "--n", "8"])
        assert args.n == 8
        assert args.nb == 4
        assert args.layout == "chunked"

    def test_invalid_chunk_size(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["factor", "--n", "8", "--chunk-size", "48"])

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_serve_demo_defaults(self):
        args = build_parser().parse_args(["serve-demo"])
        assert args.requests == 400
        assert args.target_batch == 64
        assert args.max_delay_ms == 4.0
        assert args.backend is None  # falls back to $REPRO_SERVE_BACKEND
        assert args.shadow_fraction == 1.0

    def test_serve_demo_backend_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-demo", "--backend", "quantum"])


class TestCommands:
    def test_factor_succeeds(self, capsys):
        rc = main(["factor", "--n", "6", "--nb", "3", "--batch", "64"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "factorization ok" in out
        assert "Gflop/s" in out

    def test_factor_upper_double(self, capsys):
        rc = main(
            ["factor", "--n", "5", "--batch", "64", "--uplo", "upper",
             "--precision", "double"]
        )
        assert rc == 0
        assert "upper" in capsys.readouterr().out

    def test_kernel_prints_source(self, capsys):
        rc = main(["kernel", "--n", "4", "--nb", "2", "--unroll", "full"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "def _kernel(dA, _np):" in out
        assert "_sqrt(" in out

    def test_model_breakdown(self, capsys):
        rc = main(["model", "--n", "16", "--nb", "4", "--batch", "1024"])
        out = capsys.readouterr().out
        assert rc == 0
        for token in ("gflops", "bound", "occupancy", "locality factor"):
            assert token in out

    def test_sweep_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "sweep.csv"
        rc = main(["sweep", "--ns", "8", "--batch", "1024", "--out", str(out_path)])
        assert rc == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "gflops" in out

    def test_schedule_breakdown(self, capsys):
        rc = main(["schedule", "--n", "12", "--nb", "4", "--looking", "right"])
        out = capsys.readouterr().out
        assert rc == 0
        for token in ("potrf", "trsm", "syrk", "gemm", "TOTAL"):
            assert token in out

    def test_schedule_write_volume_ordering(self, capsys):
        """The CLI surfaces the Figure 16 mechanism directly."""
        volumes = {}
        for looking in ("right", "top"):
            main(["schedule", "--n", "16", "--nb", "4", "--looking", looking])
            out = capsys.readouterr().out
            stores = 0
            for line in out.splitlines():
                if line.strip().startswith("store_"):
                    stores += int(line.split()[2])
            volumes[looking] = stores
        assert volumes["right"] > volumes["top"]

    def test_serve_demo_prints_metrics_report(self, capsys):
        rc = main(
            ["serve-demo", "--requests", "60", "--ns", "6,8", "--rate", "50000",
             "--target-batch", "32", "--max-delay-ms", "3", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        for token in ("queue depth", "batch fill", "coalesce latency",
                      "GFLOP/s", "unaccounted"):
            assert token in out

    def test_explain_diagnoses(self, capsys):
        rc = main(
            ["explain", "--n", "32", "--nb", "1", "--layout", "interleaved",
             "--batch", "16384"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "register reuse" in out or "dram locality" in out
        assert "->" in out
