"""Command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_factor_defaults(self):
        args = build_parser().parse_args(["factor", "--n", "8"])
        assert args.n == 8
        assert args.nb == 4
        assert args.layout == "chunked"

    def test_invalid_chunk_size(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["factor", "--n", "8", "--chunk-size", "48"])

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_serve_demo_defaults(self):
        args = build_parser().parse_args(["serve-demo"])
        assert args.requests == 400
        assert args.target_batch == 64
        assert args.max_delay_ms == 4.0
        assert args.backend is None  # falls back to $REPRO_SERVE_BACKEND
        assert args.shadow_fraction == 1.0
        # Observability exports are all off by default.
        assert args.trace_out == "" and args.trace_jsonl == ""
        assert args.prom_out == "" and args.metrics_json == ""
        assert args.snapshot_interval == 0.0

    def test_serve_demo_backend_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-demo", "--backend", "quantum"])

    def test_obs_summarize_requires_trace_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs-summarize"])


class TestCommands:
    def test_factor_succeeds(self, capsys):
        rc = main(["factor", "--n", "6", "--nb", "3", "--batch", "64"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "factorization ok" in out
        assert "Gflop/s" in out

    def test_factor_upper_double(self, capsys):
        rc = main(
            ["factor", "--n", "5", "--batch", "64", "--uplo", "upper",
             "--precision", "double"]
        )
        assert rc == 0
        assert "upper" in capsys.readouterr().out

    def test_kernel_prints_source(self, capsys):
        rc = main(["kernel", "--n", "4", "--nb", "2", "--unroll", "full"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "def _kernel(dA, _np):" in out
        assert "_sqrt(" in out

    def test_model_breakdown(self, capsys):
        rc = main(["model", "--n", "16", "--nb", "4", "--batch", "1024"])
        out = capsys.readouterr().out
        assert rc == 0
        for token in ("gflops", "bound", "occupancy", "locality factor"):
            assert token in out

    def test_sweep_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "sweep.csv"
        rc = main(["sweep", "--ns", "8", "--batch", "1024", "--out", str(out_path)])
        assert rc == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "gflops" in out

    def test_schedule_breakdown(self, capsys):
        rc = main(["schedule", "--n", "12", "--nb", "4", "--looking", "right"])
        out = capsys.readouterr().out
        assert rc == 0
        for token in ("potrf", "trsm", "syrk", "gemm", "TOTAL"):
            assert token in out

    def test_schedule_write_volume_ordering(self, capsys):
        """The CLI surfaces the Figure 16 mechanism directly."""
        volumes = {}
        for looking in ("right", "top"):
            main(["schedule", "--n", "16", "--nb", "4", "--looking", looking])
            out = capsys.readouterr().out
            stores = 0
            for line in out.splitlines():
                if line.strip().startswith("store_"):
                    stores += int(line.split()[2])
            volumes[looking] = stores
        assert volumes["right"] > volumes["top"]

    def test_serve_demo_prints_metrics_report(self, capsys):
        rc = main(
            ["serve-demo", "--requests", "60", "--ns", "6,8", "--rate", "50000",
             "--target-batch", "32", "--max-delay-ms", "3", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        for token in ("queue depth", "batch fill", "coalesce latency",
                      "GFLOP/s", "unaccounted"):
            assert token in out

    def test_serve_demo_metrics_json_export(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        rc = main(
            ["serve-demo", "--requests", "40", "--ns", "6,8", "--rate", "50000",
             "--target-batch", "16", "--max-delay-ms", "2", "--seed", "1",
             "--metrics-json", str(path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert f"wrote {path}" in out
        data = json.loads(path.read_text())
        assert data["counters"]["submitted"] == 40
        assert data["unaccounted"] == 0
        assert "queue_depth" in data["histograms"]

    def test_serve_demo_observability_exports(self, tmp_path, capsys):
        """--trace-out/--trace-jsonl/--prom-out produce loadable artifacts."""
        import json

        trace_json = tmp_path / "trace.json"
        trace_jsonl = tmp_path / "trace.jsonl"
        prom = tmp_path / "metrics.prom"
        rc = main(
            ["serve-demo", "--requests", "40", "--ns", "6,8", "--rate", "50000",
             "--target-batch", "16", "--max-delay-ms", "2", "--seed", "1",
             "--trace-out", str(trace_json), "--trace-jsonl", str(trace_jsonl),
             "--prom-out", str(prom), "--snapshot-interval", "2"]
        )
        capsys.readouterr()
        assert rc == 0

        from repro.obs import (
            check_request_spans,
            load_trace,
            parse_prometheus_text,
        )

        # The Chrome trace nests every request's full stage chain.
        spans = load_trace(str(trace_json))
        assert check_request_spans(spans) > 0
        # The JSONL log carries snapshot counter samples too.
        lines = [json.loads(x) for x in trace_jsonl.read_text().splitlines()]
        assert any(obj["type"] == "counter" for obj in lines)
        # The Prometheus exposition round-trips through the checker.
        samples = parse_prometheus_text(prom.read_text())
        assert samples["repro_serve_submitted_total"] == [({}, 40.0)]

        # Tracing is torn down after the run: the global tracer is the
        # disabled singleton again.
        from repro.obs import NULL_TRACER, get_tracer

        assert get_tracer() is NULL_TRACER

    def test_obs_summarize_prints_stage_table(self, tmp_path, capsys):
        trace_jsonl = tmp_path / "trace.jsonl"
        main(
            ["serve-demo", "--requests", "30", "--ns", "6", "--rate", "50000",
             "--target-batch", "16", "--max-delay-ms", "2", "--seed", "1",
             "--trace-jsonl", str(trace_jsonl)]
        )
        capsys.readouterr()
        rc = main(["obs-summarize", str(trace_jsonl), "--check"])
        out = capsys.readouterr().out
        assert rc == 0
        for token in ("stage", "submit", "coalesce", "backend", "scatter",
                      "p95 ms", "request nesting ok"):
            assert token in out

    def test_explain_diagnoses(self, capsys):
        rc = main(
            ["explain", "--n", "32", "--nb", "1", "--layout", "interleaved",
             "--batch", "16384"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "register reuse" in out or "dram locality" in out
        assert "->" in out
