"""Motivating applications (repro.apps)."""

import numpy as np
import pytest

from repro.apps.als import ALSRecommender, RatingsData, generate_ratings
from repro.apps.fem import element_stiffness_batch, solve_element_systems
from repro.baselines.lapack import lapack_solve_batch
from repro.core.config import KernelConfig


class TestRatingsGeneration:
    def test_coverage_guarantee(self):
        data = generate_ratings(n_users=50, n_items=30, density=0.02, seed=0)
        assert set(np.unique(data.users)) == set(range(50))
        assert set(np.unique(data.items)) == set(range(30))

    def test_deterministic(self):
        d1 = generate_ratings(seed=5)
        d2 = generate_ratings(seed=5)
        assert np.array_equal(d1.values, d2.values)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            generate_ratings(density=0.0)

    def test_ratings_data_validation(self):
        with pytest.raises(ValueError):
            RatingsData(
                users=np.array([0, 5]),
                items=np.array([0, 0]),
                values=np.array([1.0, 1.0]),
                n_users=2,
                n_items=1,
            )


class TestALS:
    def test_training_reduces_rmse(self):
        # NB: the model seed must differ from the data seed, otherwise the
        # random initial factors replay the generator's ground-truth draw.
        data = generate_ratings(n_users=150, n_items=80, rank=6, density=0.1, seed=1)
        model = ALSRecommender(rank=6, iterations=0, seed=99)
        model.fit(data)  # zero iterations: random factors
        rmse_start = model.rmse(data)
        model = ALSRecommender(rank=6, iterations=8, regularization=0.01, seed=99)
        model.fit(data)
        assert model.rmse(data) < 0.25 * rmse_start

    def test_recovers_low_rank_signal(self):
        data = generate_ratings(
            n_users=200, n_items=100, rank=4, density=0.15, noise=0.05, seed=2
        )
        model = ALSRecommender(rank=4, iterations=10, regularization=0.05, seed=77)
        model.fit(data)
        # RMSE approaches the noise floor
        assert model.rmse(data) < 0.15

    def test_half_step_matches_direct_solve(self):
        """One ALS user update equals solving the normal equations with
        LAPACK user by user."""
        data = generate_ratings(n_users=40, n_items=25, rank=5, density=0.2, seed=3)
        model = ALSRecommender(rank=5, iterations=1, seed=3)
        rng = np.random.default_rng(3)
        model.item_factors = rng.standard_normal((25, 5)) / np.sqrt(5)
        grams, rhs = model._normal_equations(
            data, model.item_factors, data.users, data.items, 40
        )
        direct = lapack_solve_batch(
            grams.astype(np.float32), rhs.astype(np.float32)[:, :, None]
        )[:, :, 0]
        via_batch = model._half_step(
            data, model.item_factors, data.users, data.items, 40
        )
        assert np.allclose(via_batch, direct, atol=1e-3)

    def test_config_rank_mismatch(self):
        with pytest.raises(ValueError):
            ALSRecommender(rank=6, config=KernelConfig(n=8))

    def test_predict_before_fit(self):
        model = ALSRecommender(rank=4)
        with pytest.raises(RuntimeError):
            model.predict(np.array([0]), np.array([0]))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ALSRecommender(rank=0)
        with pytest.raises(ValueError):
            ALSRecommender(rank=4, regularization=0.0)


class TestFEM:
    def test_matrices_are_spd(self):
        a, _ = element_stiffness_batch(100, order=3, seed=0)
        eig = np.linalg.eigvalsh(a.astype(np.float64))
        assert eig.min() > 0

    def test_matrix_size_tracks_order(self):
        a, rhs = element_stiffness_batch(10, order=5, seed=1)
        assert a.shape == (10, 6, 6)
        assert rhs.shape == (10, 6)

    def test_solutions_match_lapack(self):
        a, rhs = element_stiffness_batch(200, order=4, seed=2)
        x = solve_element_systems(a, rhs)
        ref = lapack_solve_batch(a, rhs)
        assert np.allclose(x, ref, atol=2e-3)

    def test_stiffness_annihilates_constants(self):
        """A pure stiffness matrix maps constant fields to ~zero (the FEM
        sanity identity); with the mass term it must not."""
        a, _ = element_stiffness_batch(5, order=3, mass_weight=1e-9, seed=3)
        ones = np.ones((5, 4, 1))
        out = a.astype(np.float64) @ ones
        assert np.abs(out).max() < 1e-4

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            element_stiffness_batch(0)
        with pytest.raises(ValueError):
            element_stiffness_batch(4, order=0)
        with pytest.raises(ValueError):
            element_stiffness_batch(4, mass_weight=0.0)
