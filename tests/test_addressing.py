"""Warp addressing and the coalescing rule (repro.layouts.addressing)."""

import numpy as np
import pytest

from repro.layouts import (
    BatchSpec,
    CanonicalLayout,
    ChunkedInterleavedLayout,
    InterleavedLayout,
    matrix_element_stride_bytes,
    transactions_for_addresses,
    warp_byte_addresses,
    warp_transactions,
)


class TestTransactionCounting:
    def test_single_line(self):
        addrs = np.arange(0, 128, 4)
        assert transactions_for_addresses(addrs) == 1

    def test_two_lines(self):
        addrs = np.array([0, 127, 128])
        assert transactions_for_addresses(addrs) == 2

    def test_every_lane_its_own_line(self):
        addrs = np.arange(32) * 128
        assert transactions_for_addresses(addrs) == 32

    def test_empty(self):
        assert transactions_for_addresses(np.array([], dtype=np.int64)) == 0

    def test_invalid_line_size(self):
        with pytest.raises(ValueError):
            transactions_for_addresses(np.array([0]), line_bytes=0)


class TestWarpAddresses:
    def test_interleaved_warp_is_contiguous(self):
        layout = InterleavedLayout()
        spec = BatchSpec(batch=64, n=4)
        addrs = warp_byte_addresses(layout, spec, 0, 2, 3)
        assert addrs.shape == (32,)
        assert np.array_equal(np.diff(addrs), np.full(31, 4))

    def test_element_out_of_range(self):
        layout = InterleavedLayout()
        spec = BatchSpec(batch=64, n=4)
        with pytest.raises(ValueError):
            warp_byte_addresses(layout, spec, 0, 4, 0)

    def test_warp_past_batch(self):
        layout = InterleavedLayout()
        spec = BatchSpec(batch=32, n=4)
        with pytest.raises(ValueError):
            warp_byte_addresses(layout, spec, 5, 0, 0)


class TestCoalescingPerLayout:
    """Section I.D / II.B: interleaved layouts coalesce perfectly for any
    matrix size; the canonical layout cannot coalesce below n = 32."""

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 16, 31])
    def test_interleaved_always_one_transaction(self, n):
        layout = InterleavedLayout()
        spec = BatchSpec(batch=128, n=n)
        assert warp_transactions(layout, spec, 0, n - 1, n // 2) == 1

    @pytest.mark.parametrize("chunk", [32, 64, 512])
    def test_chunked_always_one_transaction(self, chunk):
        layout = ChunkedInterleavedLayout(chunk)
        spec = BatchSpec(batch=1024, n=7)
        assert warp_transactions(layout, spec, 3, 2, 2) == 1

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_canonical_small_matrices_fully_uncoalesced(self, n):
        """Each lane's matrix is n*n*4 >= ... apart: for 4|n*n and
        n*n*4 >= 128 every lane hits its own line."""
        layout = CanonicalLayout()
        spec = BatchSpec(batch=128, n=n)
        tx = warp_transactions(layout, spec, 0, 0, 0)
        expected = 32 if n * n * 4 >= 128 else max(1, 32 * n * n * 4 // 128)
        assert tx == expected

    def test_canonical_wastes_bandwidth(self):
        layout = CanonicalLayout()
        spec = BatchSpec(batch=128, n=8)
        assert warp_transactions(layout, spec, 0, 3, 3) > 1


class TestElementStride:
    def test_canonical_contiguous(self):
        assert (
            matrix_element_stride_bytes(CanonicalLayout(), BatchSpec(batch=64, n=8))
            == 4
        )

    def test_interleaved_stride_is_padded_batch(self):
        spec = BatchSpec(batch=16384, n=8)
        assert (
            matrix_element_stride_bytes(InterleavedLayout(), spec) == 16384 * 4
        )

    @pytest.mark.parametrize("chunk", [32, 128, 512])
    def test_chunked_stride_is_chunk(self, chunk):
        spec = BatchSpec(batch=16384, n=8)
        assert (
            matrix_element_stride_bytes(ChunkedInterleavedLayout(chunk), spec)
            == chunk * 4
        )
