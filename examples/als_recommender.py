"""ALS collaborative filtering on batch Cholesky — the paper's motivation.

"The direct motivation for this work came from the Alternating Least
Squares (ALS) algorithm for recommender systems" (Section I.B).  Every
ALS half-step solves one tiny SPD system per user (or item); this example
trains a rank-8 factorisation of a synthetic ratings matrix and reports
the batch-solve workload it generates per iteration.

Run:  python examples/als_recommender.py [--record-trace PATH]
      [--serve-shards N] [--placement {size,hash}] [--serve-graph]

``--record-trace`` exports the solve stream the training run generates
as a replayable workload trace (see ``docs/replay.md``) — the
ALS-derived canonical trace under ``benchmarks/traces/`` is built this
way.  ``--serve-shards`` additionally replays that solve stream through
the adaptive-batching service (sharded broker fabric when N > 1, see
``docs/sharding.md``) and reports the per-shard split.  ``--serve-graph``
submits the inner loop the way it actually depends on itself: each ALS
job becomes one :class:`~repro.serve.graph.SolveGraph` whose half-steps
are dependency waves, and the serving layer coalesces concurrent jobs'
waves into shared flushes (see ``docs/graphs.md``).
"""

import argparse
import sys

import numpy as np

from repro import KernelConfig, estimate_performance
from repro.apps.als import ALSRecommender, generate_ratings


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record-trace",
        default="",
        help="write the training run's solve stream as a workload trace",
    )
    parser.add_argument(
        "--serve-shards",
        type=int,
        default=0,
        help="also replay the solve stream through the serving layer with "
             "this many broker shards (0 skips the replay)",
    )
    parser.add_argument(
        "--placement",
        choices=("size", "hash"),
        default=None,
        help="shard placement policy for --serve-shards > 1",
    )
    parser.add_argument(
        "--serve-graph",
        action="store_true",
        help="also submit a multi-tenant ALS inner loop as dependency "
             "graphs and report the fill-ratio win over sequential await",
    )
    args = parser.parse_args([] if argv is None else argv)

    rank = 8
    data = generate_ratings(
        n_users=2000, n_items=800, rank=rank, density=0.03, noise=0.1, seed=42
    )
    print(
        f"ratings: {data.n_users} users x {data.n_items} items, "
        f"{data.nnz} observed ({100 * data.nnz / (data.n_users * data.n_items):.1f}%)"
    )

    config = KernelConfig(n=rank, nb=4, looking="top", chunked=True, chunk_size=32)
    model = ALSRecommender(
        rank=rank, regularization=0.05, iterations=8, seed=7, config=config
    )

    # Train, reporting RMSE as ALS sweeps alternate.
    rng = np.random.default_rng(model.seed)
    model.user_factors = rng.standard_normal((data.n_users, rank)) / np.sqrt(rank)
    model.item_factors = rng.standard_normal((data.n_items, rank)) / np.sqrt(rank)
    print("iter   rmse")
    for it in range(model.iterations):
        model.user_factors = model._half_step(
            data, model.item_factors, data.users, data.items, data.n_users
        )
        model.item_factors = model._half_step(
            data, model.user_factors, data.items, data.users, data.n_items
        )
        print(f"{it + 1:4d}  {model.rmse(data):.4f}")

    # What the per-iteration batch workload looks like to the GPU model:
    est_users = estimate_performance(config, batch=data.n_users)
    est_items = estimate_performance(config, batch=data.n_items)
    per_iter_us = (est_users.seconds + est_items.seconds) * 1e6
    print(
        f"\none ALS iteration = two batch Cholesky solves "
        f"({data.n_users} + {data.n_items} systems of size {rank}); "
        f"modelled P100 factorization time: {per_iter_us:.1f} us"
    )

    if args.record_trace:
        from repro.serve.trace import save_trace

        events = model.solve_trace(data, seed=model.seed)
        save_trace(
            args.record_trace,
            events,
            meta={
                "source": "als_recommender",
                "rank": rank,
                "n_users": data.n_users,
                "n_items": data.n_items,
                "iterations": model.iterations,
            },
        )
        print(f"\nwrote {len(events)} solve arrivals to {args.record_trace}")

    if args.serve_shards:
        from repro.serve import ServePolicy, replay_trace

        events = model.solve_trace(data, seed=model.seed)
        # One user half-step's worth keeps the example quick; the full
        # stream is what --record-trace + replay-check are for.
        events = events[: min(len(events), 512)]
        policy = ServePolicy(
            request_timeout_s=None,
            shards=args.serve_shards,
            placement=args.placement,
        )
        summary = replay_trace(events, policy=policy)
        print(
            f"\nserved {summary.completed}/{summary.requests} ALS solves "
            f"through {summary.shards} shard(s)"
            + (f" (placement={summary.placement})" if summary.shards > 1 else "")
        )
        if summary.per_shard:
            for shard, m in sorted(summary.per_shard.items()):
                print(
                    f"  shard {shard}: {m.counters['completed']} completed, "
                    f"{m.counters['flushes']} flushes"
                )

    if args.serve_graph:
        serve_graph_demo()


def serve_graph_demo() -> None:
    """Submit three small concurrent ALS jobs as dependency graphs.

    Each job's inner loop is its true DAG — every half-step wave depends
    on the whole previous half-step — so the scheduler releases
    half-steps as waves and concurrent jobs' waves coalesce into shared
    flushes.  Sequential await of the same DAGs is the baseline the
    fill-ratio comparison runs against (``benchmarks/bench_graph.py``
    gates this same win in CI).
    """
    from repro.serve import ServePolicy, replay_trace

    jobs = []
    for g in range(3):
        data = generate_ratings(
            n_users=24, n_items=12, rank=8, density=0.25, noise=0.1, seed=42 + g
        )
        model = ALSRecommender(
            rank=8, regularization=0.05, iterations=2, seed=42 + g
        )
        jobs.extend(
            model.solve_graph_trace(
                data, assembly_gap_s=0.004, seed=42 + g, graph=g,
                start_at=g * 0.0015,
            )
        )
    events = sorted(jobs, key=lambda e: e.at)
    policy = ServePolicy(
        request_timeout_s=None, target_batch=64, max_delay_s=0.002
    )
    print(
        f"\ngraph submission: 3 ALS jobs as DAGs, {len(events)} solves"
    )
    rows = {}
    for mode in ("sequential", "wave"):
        summary = replay_trace(events, policy=policy, graph=mode)
        rows[mode] = summary
        gm = summary.graph_metrics
        print(
            f"  {mode:<10} fill={summary.metrics.histograms['batch_fill'].mean:.3f} "
            f"flushes={summary.metrics.counters['flushes']:<3} "
            f"critical path mean "
            f"{gm.histograms['graph_critical_path_ms'].mean:.1f} ms"
        )
    gain = (
        rows["wave"].metrics.histograms["batch_fill"].mean
        / rows["sequential"].metrics.histograms["batch_fill"].mean
    )
    print(f"  wave release fills flushes {gain:.1f}x better than sequential await")


if __name__ == "__main__":
    main(sys.argv[1:])
