"""Batched BLAS and the Figure 6 tile Cholesky.

The paper composes its factorization from four BLAS-named tile operations
(POTRF / TRSM / SYRK / GEMM); this example uses the same operations as
*standalone batched routines* — the library surface cuBLAS/MKL/MAGMA
expose — and then lets the Figure 6 tile algorithm assemble them into a
blocked batch factorization for matrices beyond the single-kernel sweet
spot.

Run:  python examples/batchblas_pipeline.py
"""

import numpy as np

from repro import (
    batched_gemm,
    batched_syrk,
    batched_trsm,
    random_spd_batch,
    tile_cholesky,
)


def main() -> None:
    rng = np.random.default_rng(0)
    batch = 512

    # --- standalone batched BLAS --------------------------------------
    print("batched BLAS on", batch, "matrices:")
    a = rng.standard_normal((batch, 6, 4)).astype(np.float32)
    b = rng.standard_normal((batch, 4, 5)).astype(np.float32)
    c = np.zeros((batch, 6, 5), dtype=np.float32)
    c = batched_gemm(a, b, c, alpha=1.0, beta=0.0)
    ref = a.astype(np.float64) @ b.astype(np.float64)
    print(f"  gemm  C = A@B          max err {np.abs(c - ref).max():.1e}")

    gram = np.zeros((batch, 6, 6), dtype=np.float32)
    gram = batched_syrk(a, gram, alpha=1.0, beta=0.0)
    ref = np.tril(a.astype(np.float64) @ a.astype(np.float64).transpose(0, 2, 1))
    print(f"  syrk  C = A@A^T (lower) max err {np.abs(np.tril(gram) - ref).max():.1e}")

    spd = random_spd_batch(batch, 4, seed=1)
    l = np.linalg.cholesky(spd.astype(np.float64)).astype(np.float32)
    x = batched_trsm(l, b, side="left")  # B is (batch, 4, 5): L X = B
    resid = np.tril(l.astype(np.float64)) @ x.astype(np.float64) - b
    print(f"  trsm  L X = B           max err {np.abs(resid).max():.1e}")

    # --- Figure 6: tile Cholesky over batched BLAS --------------------
    n, tile = 32, 8
    spd = random_spd_batch(batch, n, seed=2)
    lt = tile_cholesky(spd, tile=tile)
    ref = np.linalg.cholesky(spd.astype(np.float64))
    err = np.abs(np.tril(lt.astype(np.float64)) - ref).max()
    print(
        f"\ntile Cholesky: {batch} matrices of {n}x{n} in {tile}x{tile} tiles "
        f"(POTRF+TRSM+SYRK+GEMM), max err vs LAPACK {err:.1e}"
    )
    print(
        "every arithmetic operation above ran through generated, fully "
        "unrolled interleaved kernels."
    )


if __name__ == "__main__":
    main()
