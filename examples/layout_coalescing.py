"""Why interleaved layouts win: coalescing and locality, measured.

Walks the Section I.D / II.B story with concrete numbers from the layout
machinery itself:

* memory transactions one warp needs per element access, per layout;
* the stride between a matrix's consecutive elements (the DRAM
  row-locality driver behind chunking, Figures 17/18);
* the modelled effective bandwidth each layout achieves.

Run:  python examples/layout_coalescing.py
"""

from repro.gpusim.arch import P100
from repro.gpusim.coalescing import coalescing_multiplier
from repro.gpusim.dram import layout_locality_factor
from repro.layouts import (
    BatchSpec,
    CanonicalLayout,
    ChunkedInterleavedLayout,
    InterleavedLayout,
    matrix_element_stride_bytes,
    warp_transactions,
)
from repro.utils.tables import format_table


def main() -> None:
    batch = 16384
    layouts = [
        CanonicalLayout(),
        InterleavedLayout(),
        ChunkedInterleavedLayout(32),
        ChunkedInterleavedLayout(64),
        ChunkedInterleavedLayout(512),
    ]

    for n in (8, 32):
        spec = BatchSpec(batch=batch, n=n)
        print(f"\nbatch {batch}, matrices {n}x{n} (float32):")
        rows = []
        for layout in layouts:
            tx = warp_transactions(layout, spec, warp_index=0, i=n - 1, j=0)
            waste = coalescing_multiplier(layout, spec)
            stride = matrix_element_stride_bytes(layout, spec)
            locality = layout_locality_factor(layout, spec, P100)
            rows.append(
                [
                    layout.name,
                    tx,
                    f"{waste:.1f}x",
                    stride,
                    f"{locality:.2f}",
                ]
            )
        print(
            format_table(
                [
                    "layout",
                    "transactions/warp access",
                    "bandwidth waste",
                    "element stride (B)",
                    "DRAM locality factor",
                ],
                rows,
            )
        )

    print(
        "\nreading: interleaved layouts always need 1 transaction per warp "
        "access (perfect coalescing);\nthe canonical layout needs up to 32. "
        "Chunking keeps the element stride small, preserving DRAM\n"
        "row-buffer locality — the Figure 17/18 effect."
    )


if __name__ == "__main__":
    main()
