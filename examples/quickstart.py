"""Quickstart: factor and solve a batch of small SPD systems.

Covers the library's core loop:

1. build a batch of small single-precision SPD matrices,
2. factorize them with a generated interleaved kernel (picking the
   tuning parameters explicitly),
3. solve against right-hand sides,
4. verify, and ask the GPU model what this launch would cost on a P100.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    KernelConfig,
    batch_cholesky,
    batch_solve,
    estimate_performance,
    random_spd_batch,
)
from repro.utils import factorization_error, relative_residual
from repro.utils.spd import random_rhs_batch


def main() -> None:
    batch, n = 4096, 16
    print(f"Factorizing a batch of {batch} SPD matrices of size {n}x{n} (float32)")

    a = random_spd_batch(batch, n, seed=7)
    b = random_rhs_batch(batch, n, nrhs=1, seed=8)

    # The five tunable parameters of the paper (Section II.D):
    config = KernelConfig(
        n=n,
        nb=4,  # register-tile size
        looking="top",  # laziest evaluation order = fewest writes
        chunked=True,  # chunked interleaved layout (Figure 8)
        chunk_size=32,  # matrices per chunk = threads per block
        unroll="partial",  # tile micro-ops unrolled, outer loops remain
    )
    print(f"kernel: {config.describe()}")

    l = batch_cholesky(a, config)
    err = factorization_error(a, l)
    print(f"max relative factorization error ||A - LL^T||/||A||: {err:.2e}")

    x = batch_solve(l, b)
    res = relative_residual(a, x, b)
    print(f"max relative solve residual: {res:.2e}")

    est = estimate_performance(config, batch=batch)
    print(
        f"modelled P100 execution: {est.seconds * 1e6:.1f} us "
        f"({est.gflops:.0f} Gflop/s, {est.bound}-bound, "
        f"{est.occupancy.warps_per_sm:.1f} warps/SM)"
    )

    # The same numerics, one matrix at a time, for comparison:
    ref = np.linalg.cholesky(a[:4].astype(np.float64))
    print("first matrix, first column of L (ours vs numpy):")
    print(" ", np.round(np.tril(l[0])[:, 0], 4))
    print(" ", np.round(ref[0][:, 0], 4))


if __name__ == "__main__":
    main()
