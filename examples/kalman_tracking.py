"""Tracking thousands of objects with batched Kalman filters.

Each of 5,000 tracks runs an independent constant-velocity Kalman filter;
every update step solves 5,000 tiny SPD systems (the innovation
covariances) through the batch Cholesky pipeline — another instance of
the paper's "large sets of small linear solves" workload class.

The closing section submits the inner loop to the serving layer the way
it actually depends on itself: each track is a chain-shaped
:class:`~repro.serve.graph.SolveGraph` (step ``t`` needs step ``t-1``'s
posterior), and the :class:`~repro.serve.graph.GraphScheduler` coalesces
*different* tracks' same-step solves into shared flushes — dependencies
within a track, batching across the fleet (see ``docs/graphs.md``).

Run:  python examples/kalman_tracking.py
"""

import numpy as np

from repro import estimate_performance
from repro.apps.kalman import constant_velocity_model, simulate_tracks


def main() -> None:
    n_tracks, n_steps = 5000, 30
    model = constant_velocity_model(dim=2, measurement_noise=1.0)
    print(
        f"{n_tracks} constant-velocity tracks, {n_steps} steps; each update "
        f"solves {n_tracks} SPD systems of size "
        f"{model.measurement_dim}x{model.measurement_dim}"
    )

    states, meas = simulate_tracks(model, n_tracks, n_steps, seed=11)
    x = np.zeros((n_tracks, model.state_dim))
    p = np.tile(np.eye(model.state_dim) * 10.0, (n_tracks, 1, 1))

    print("\nstep  position RMSE (filter)  position RMSE (raw measurement)")
    for t in range(n_steps):
        x, p = model.step(x, p, meas[t])
        if (t + 1) % 5 == 0:
            pos_est = x @ model.h.T
            pos_true = states[t] @ model.h.T
            filt = np.sqrt(np.mean((pos_est - pos_true) ** 2))
            raw = np.sqrt(np.mean((meas[t] - pos_true) ** 2))
            print(f"{t + 1:4d}  {filt:22.3f}  {raw:30.3f}")

    est = estimate_performance(model.config, batch=n_tracks)
    print(
        f"\nmodelled P100 cost of one update step's factorizations: "
        f"{est.seconds * 1e6:.1f} us for the whole fleet"
    )

    serve_fleet_as_graphs(model, meas)


def serve_fleet_as_graphs(model, meas, n_tracks: int = 8, n_steps: int = 6) -> None:
    """Serve a small fleet's update chains as dependency graphs.

    Each track's innovation-covariance solves form a chain — step ``t``
    cannot start before step ``t-1`` resolved — so one track alone could
    never fill a batch.  Submitted as one graph per track through a
    shared scheduler, every step becomes a fleet-wide wave and the
    broker's buckets see ``n_tracks`` same-size systems at once.
    """
    from repro.serve import ServePolicy, SolveGraph, run_graphs

    # Propagate one representative covariance so each step's innovation
    # covariance S_t = H P_t H^T + R is a genuine, distinct SPD payload.
    p = np.eye(model.state_dim) * 10.0
    graphs = []
    for track in range(n_tracks):
        graph = SolveGraph(name=f"track{track}")
        p_t, prev = p.copy(), None
        for t in range(n_steps):
            p_t = model.f @ p_t @ model.f.T + model.q
            s = model.h @ p_t @ model.h.T + model.r
            innovation = meas[t, track]
            prev = graph.solve(
                s.astype(np.float32),
                innovation.astype(np.float32),
                name=f"t{t}",
                after=() if prev is None else (prev,),
            )
        graphs.append(graph)
    policy = ServePolicy(request_timeout_s=None, target_batch=n_tracks)
    summary = run_graphs(graphs, policy=policy)
    gm = summary.graph_metrics
    print(
        f"\nserved {n_tracks} track chains x {n_steps} steps as graphs: "
        f"{gm.counters['nodes_completed']} solves in "
        f"{gm.counters['waves']} waves, "
        f"mean wave width {gm.histograms['wave_width'].mean:.1f}, "
        f"mean flush batch "
        f"{summary.metrics.histograms['batch_size'].mean:.1f} "
        f"(one track alone could only ever batch 1)"
    )


if __name__ == "__main__":
    main()
