"""Tracking thousands of objects with batched Kalman filters.

Each of 5,000 tracks runs an independent constant-velocity Kalman filter;
every update step solves 5,000 tiny SPD systems (the innovation
covariances) through the batch Cholesky pipeline — another instance of
the paper's "large sets of small linear solves" workload class.

Run:  python examples/kalman_tracking.py
"""

import numpy as np

from repro import estimate_performance
from repro.apps.kalman import constant_velocity_model, simulate_tracks


def main() -> None:
    n_tracks, n_steps = 5000, 30
    model = constant_velocity_model(dim=2, measurement_noise=1.0)
    print(
        f"{n_tracks} constant-velocity tracks, {n_steps} steps; each update "
        f"solves {n_tracks} SPD systems of size "
        f"{model.measurement_dim}x{model.measurement_dim}"
    )

    states, meas = simulate_tracks(model, n_tracks, n_steps, seed=11)
    x = np.zeros((n_tracks, model.state_dim))
    p = np.tile(np.eye(model.state_dim) * 10.0, (n_tracks, 1, 1))

    print("\nstep  position RMSE (filter)  position RMSE (raw measurement)")
    for t in range(n_steps):
        x, p = model.step(x, p, meas[t])
        if (t + 1) % 5 == 0:
            pos_est = x @ model.h.T
            pos_true = states[t] @ model.h.T
            filt = np.sqrt(np.mean((pos_est - pos_true) ** 2))
            raw = np.sqrt(np.mean((meas[t] - pos_true) ** 2))
            print(f"{t + 1:4d}  {filt:22.3f}  {raw:30.3f}")

    est = estimate_performance(model.config, batch=n_tracks)
    print(
        f"\nmodelled P100 cost of one update step's factorizations: "
        f"{est.seconds * 1e6:.1f} us for the whole fleet"
    )


if __name__ == "__main__":
    main()
