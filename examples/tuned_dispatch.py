"""Shipping the autotuner's result: a tuned dispatch table.

What a user of an autotuned library actually touches is not the sweep —
it is the dispatch table the sweep produced.  This example tunes over a
few sizes, saves the table like a deployment would, reloads it, and
routes factorizations through it (including sizes the sweep never
measured, which borrow the nearest winner's parameters).

Run:  python examples/tuned_dispatch.py
"""

import tempfile
from pathlib import Path

from repro import TunedDispatcher, random_spd_batch
from repro.utils import factorization_error


def main() -> None:
    print("tuning over n in (8, 16, 32, 48) ...")
    dispatcher = TunedDispatcher.tune(
        (8, 16, 32, 48), nbs=(1, 2, 4, 8), chunkings=(None, 32, 64, 512)
    )
    print("\nwinning configurations:")
    print(dispatcher.summary())

    for n in (8, 32):
        print(
            f"\nmodelled speedup of the tuned config over the library "
            f"default at n={n}: {dispatcher.speedup_over_default(n):.2f}x"
        )

    # Persist the table the way a deployment would ship it.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tuned_table.json"
        dispatcher.save(path)
        reloaded = TunedDispatcher.load(path)
        print(f"\ntable saved and reloaded from {path.name}")

        for n in (16, 24):  # 24 was never tuned: nearest-size interpolation
            a = random_spd_batch(256, n, seed=n)
            l = reloaded.batch_cholesky(a)
            err = factorization_error(a, l)
            cfg = reloaded.config_for(n)
            print(
                f"n={n:2d}: dispatched to [{cfg.describe()}], "
                f"factorization error {err:.1e}"
            )


if __name__ == "__main__":
    main()
