"""Batch element solves from a finite-element discretisation.

Section I.A lists finite element methods among the applications producing
"large sets of small linear solves that call for batch processing".  This
example assembles tens of thousands of p-th order 1-D element systems
(genuine stiffness + mass matrices) and solves them all through the
interleaved batch Cholesky pipeline, cross-checking against LAPACK.

Run:  python examples/fem_batch_solve.py
"""

import numpy as np

from repro import KernelConfig, estimate_performance
from repro.apps.fem import element_stiffness_batch, solve_element_systems
from repro.baselines.lapack import lapack_solve_batch


def main() -> None:
    n_elements = 20000
    for order in (2, 4, 7):
        n = order + 1
        a, rhs = element_stiffness_batch(n_elements, order=order, seed=order)
        config = KernelConfig(n=n, nb=min(4, n), looking="top", chunked=True)

        x = solve_element_systems(a, rhs, config)

        # Verify a sample against LAPACK.
        sample = slice(0, 200)
        ref = lapack_solve_batch(a[sample], rhs[sample])
        err = np.max(np.abs(x[sample] - ref))
        est = estimate_performance(config, batch=n_elements)
        print(
            f"order {order}: {n_elements} element systems of size {n}x{n} — "
            f"max |x - x_lapack| = {err:.2e}; modelled P100 factorization "
            f"{est.seconds * 1e6:.0f} us ({est.gflops:.0f} Gflop/s)"
        )

    print(
        "\nEach element system is independent — exactly the batch workload "
        "the interleaved layout was designed for."
    )


if __name__ == "__main__":
    main()
