"""The serving-layer analogue of the paper's batch-size sensitivity.

The paper shows GFLOP/s climbing with batch size as the interleaved
kernels amortize launch overhead and saturate the memory system.  At
serve time nobody controls the batch size directly — it emerges from the
latency deadline the batcher is allowed to spend coalescing requests.
This example replays the *same* synthetic arrival trace under a range of
``max_delay_s`` deadlines and tabulates the tradeoff: longer deadlines
build fuller buckets (higher modelled GFLOP/s per flush, fewer flushes)
at the price of higher p95 coalesce latency.

Run:  python examples/serving_traffic.py [--quick] [--backend NAME]
      [--record-trace PATH] [--shards N] [--placement {size,hash}]
      [--controller {aimd,hill}] [--controller-interval MS]

``--quick`` shrinks the trace and the deadline grid (the CI smoke job
uses it); ``--backend`` replays through a specific flush executor
backend (inline, process, eventsim, shadow); ``--record-trace`` records
the first replay's arrivals as a replayable workload trace
(``docs/replay.md``); ``--shards``/``--placement`` replay through the
sharded broker fabric instead of a single broker (``docs/sharding.md``);
``--controller`` puts every replay under the online policy controller,
which adapts the deadline away from its static starting point — watch
the ``ctl_chg``/``final_d_ms`` columns converge (``docs/control.md``).
"""

import argparse
import sys

from repro.serve import (
    BACKEND_NAMES,
    STRATEGIES,
    ServePolicy,
    TraceRecorder,
    replay_trace,
    synthetic_trace,
)
from repro.utils.tables import format_table

#: Latency budgets to sweep, in milliseconds.
DEADLINES_MS = (0.5, 2.0, 8.0, 32.0)
QUICK_DEADLINES_MS = (0.5, 8.0)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small trace and two deadlines (used by the CI smoke job)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="flush executor backend (default: $REPRO_SERVE_BACKEND or inline)",
    )
    parser.add_argument(
        "--record-trace",
        default="",
        help="record the first replay's arrivals as a workload trace",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="broker shards (default: $REPRO_SERVE_SHARDS or 1)",
    )
    parser.add_argument(
        "--placement",
        choices=("size", "hash"),
        default=None,
        help="shard placement policy (default: $REPRO_SERVE_PLACEMENT or size)",
    )
    parser.add_argument(
        "--controller",
        choices=STRATEGIES,
        default=None,
        help="adapt each replay's policy online with this strategy",
    )
    parser.add_argument(
        "--controller-interval",
        type=float,
        default=5.0,
        help="controller decision period in ms",
    )
    # main() is also invoked directly (tests, notebooks) with no argv;
    # only the __main__ guard forwards the real command line.
    args = parser.parse_args([] if argv is None else argv)

    requests = 60 if args.quick else 240
    deadlines = QUICK_DEADLINES_MS if args.quick else DEADLINES_MS
    trace = synthetic_trace(
        requests=requests,
        ns=(8, 16, 24),
        rate_hz=40000.0,
        solve_fraction=0.3,
        seed=7,
    )
    print(
        f"replaying {len(trace)} mixed-size requests "
        f"({trace[-1].at * 1e3:.1f} ms of traffic) under "
        f"{len(deadlines)} latency budgets\n"
    )

    rows = []
    recorder = None
    if args.record_trace:
        recorder = TraceRecorder(
            seed=7, meta={"source": "serving_traffic", "requests": requests}
        )
    for i, deadline_ms in enumerate(deadlines):
        policy = ServePolicy(
            # A large target keeps the deadline in charge of every flush,
            # isolating the knob this example studies.
            target_batch=4096,
            max_delay_s=deadline_ms / 1e3,
            request_timeout_s=None,
            backend=args.backend,
            shards=args.shards,
            placement=args.placement,
        )
        # Only the first deadline's replay is recorded — one workload,
        # not the concatenation of every grid point.
        summary = replay_trace(
            trace,
            policy=policy,
            recorder=recorder if i == 0 else None,
            controller=args.controller or "off",
            controller_interval_s=args.controller_interval / 1e3,
        )
        m = summary.metrics
        fill = m.histograms["batch_size"]
        latency = m.histograms["coalesce_latency_ms"]
        gflops = m.histograms["flush_gflops"]
        row = [
            deadline_ms,
            m.counters["flushes"],
            round(fill.mean, 1),
            round(latency.percentile(50), 2),
            round(latency.percentile(95), 2),
            round(gflops.mean, 2),
            round(summary.throughput_rps / 1e3, 2),
        ]
        if summary.journal is not None:
            row.append(summary.journal.changes)
            row.append(round(summary.journal.final_knobs().max_delay_ms, 2))
        rows.append(row)

    if summary.shards > 1:
        print(f"backend: {summary.backend}  "
              f"({summary.shards} shards, placement={summary.placement})\n")
    else:
        print(f"backend: {summary.backend}\n")
    headers = [
        "deadline_ms",
        "flushes",
        "mean_batch",
        "p50_lat_ms",
        "p95_lat_ms",
        "gflops",
        "kreq/s",
    ]
    if summary.controller:
        headers += ["ctl_chg", "final_d_ms"]
        print(f"controller: {summary.controller} "
              f"(every {args.controller_interval:g} ms)\n")
    print(format_table(headers, rows))
    print(
        "\nLonger coalescing deadlines build fuller batches — fewer, larger\n"
        "flushes with more modelled GFLOP/s each — while the p50/p95 wait\n"
        "grows with the budget: the paper's batch-size curve, re-expressed\n"
        "as a latency policy."
    )
    if recorder is not None:
        recorder.save(args.record_trace)
        print(f"\nwrote {len(recorder)} recorded arrivals to {args.record_trace}")


if __name__ == "__main__":
    main(sys.argv[1:])
