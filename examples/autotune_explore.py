"""Explore the autotuning space: sweep, winners, importances, search.

A compact version of the paper's Section II.D + IV workflow:

1. exhaustively sweep a small region of the tuning space,
2. print the best configuration per matrix size,
3. fit a random forest and report Table-I-style parameter importances,
4. compare against guided search (random + coordinate descent).

Run:  python examples/autotune_explore.py
"""

from repro.autotune import (
    ParameterSpace,
    coordinate_descent,
    parameter_importance,
    random_search,
    run_sweep,
)
from repro.core.config import KernelConfig
from repro.utils.tables import format_table


def main() -> None:
    space = ParameterSpace(
        ns=(8, 16, 24, 32, 48),
        nbs=(1, 2, 4, 8),
        chunkings=(None, 32, 64, 256),
        cache_prefs=("l1", "shared"),
    )
    print(f"sweeping {space.size()} configurations ...")
    dataset = run_sweep(space, batch=16384)
    ok = dataset.successful()
    print(f"{len(ok)} successful / {len(dataset)} total\n")

    print("best configuration per matrix size:")
    rows = []
    for n, rec in sorted(dataset.best_per_n().items()):
        rows.append(
            [
                n,
                round(rec.gflops, 1),
                rec.nb,
                rec.looking,
                rec.unroll,
                rec.chunk_size if rec.chunked else "-",
                rec.bound,
            ]
        )
    print(format_table(["n", "gflops", "nb", "looking", "unroll", "chunk", "bound"], rows))

    print("\nparameter importances (%IncMSE, Table I style):")
    imp = parameter_importance(dataset, n_estimators=80)
    rows = [[k, round(v, 1)] for k, v in sorted(imp.items(), key=lambda kv: -kv[1])]
    print(format_table(["parameter", "importance"], rows))

    print("\nguided search vs the exhaustive optimum at n=32:")
    sub = space.with_ns((32,))
    best = max(r.gflops for r in ok if r.n == 32)
    rnd = random_search(sub, budget=20, seed=0)
    greedy = coordinate_descent(
        sub, KernelConfig(n=32, nb=1, looking="right", chunked=False)
    )
    print(
        format_table(
            ["method", "evaluations", "gflops", "fraction of optimum"],
            [
                ["exhaustive", sub.size(), round(best, 1), 1.0],
                ["random(20)", rnd.evaluations, round(rnd.best.gflops, 1),
                 round(rnd.best.gflops / best, 2)],
                ["coordinate descent", greedy.evaluations,
                 round(greedy.best.gflops, 1), round(greedy.best.gflops / best, 2)],
            ],
        )
    )


if __name__ == "__main__":
    main()
