"""Flush data movement: the pickle path vs the shared-memory arena path.

Run:  PYTHONPATH=src python benchmarks/bench_dataplane.py \
          --trace benchmarks/traces/bursty_mixed.jsonl --out report.json

Every flush on a classic worker-pool backend ships its whole dense batch
through pickle twice — parent -> worker and factors back.  The zero-copy
data plane (``repro.serve.arena``, docs/dataplane.md) stages matrices
into shared-memory slabs in the paper's interleaved layout at enqueue
time, so a flush hands workers slot *offsets* and only solo retries and
fallbacks still move dense payloads.  This benchmark replays one trace
through the same policy twice — ``--backend`` flat, then its
``arena-process`` twin — and gates the copy bill:

* **bytes copied** — the pickle cell's per-flush dense payloads vs the
  arena cell's residual fallback copies, required to shrink by at least
  ``--gate`` (default 2x, the acceptance floor; in practice the arena
  cell copies ~0 bytes and the reduction is effectively unbounded);
* **conservation** — both cells must account every request, and the
  arena cell must stage > 0 bytes, leak zero slots, and hold throughput
  within the usual replay tolerance of its pickle sibling.

The report is a standard ``repro.bench_serve_replay/v4`` artifact — the
same schema ``python -m repro replay-check --arena`` reads and gates —
so ``--out`` output can be committed directly as the nightly arena
baseline, and an existing baseline can be passed via ``--baseline`` to
additionally gate copy-bill growth run-over-run.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.serve.replay import (
    ArenaGate,
    compare_arena,
    load_report,
    policy_grid,
    render_arena,
    render_report,
    run_replay_grid,
    save_report,
)
from repro.serve.trace import load_trace_file


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        default="benchmarks/traces/bursty_mixed.jsonl",
        help="recorded workload trace (JSONL)",
    )
    parser.add_argument(
        "--backend",
        default="process",
        help="pickle-path backend to compare against (its arena twin is "
        "always arena-process)",
    )
    parser.add_argument(
        "--target-batches", default="64", help="comma-separated target_batch values"
    )
    parser.add_argument(
        "--max-delays-ms", default="2", help="comma-separated max_delay_s values (ms)"
    )
    parser.add_argument("--out", default="", help="write the v4 report JSON here")
    parser.add_argument(
        "--gate", type=float, default=2.0,
        help="required flush-payload bytes-copied reduction, arena vs pickle",
    )
    parser.add_argument(
        "--throughput-tolerance", type=float, default=0.6,
        help="allowed arena-vs-pickle throughput drop; loose by default — "
        "copied bytes are deterministic, wall clocks on process pools "
        "are not (tighten on a quiet machine)",
    )
    parser.add_argument(
        "--baseline", default="",
        help="optional committed v4 report to gate copy-bill growth against",
    )
    args = parser.parse_args(argv)

    grid = policy_grid(
        backends=[args.backend],
        target_batches=[int(v) for v in args.target_batches.split(",") if v.strip()],
        max_delays_ms=[float(v) for v in args.max_delays_ms.split(",") if v.strip()],
        arenas=(False, True),
    )
    trace = load_trace_file(args.trace)
    report = run_replay_grid(
        trace,
        grid,
        trace_path=args.trace,
        progress=lambda label: print(f"replaying {label} ...", flush=True),
    )
    print()
    print(render_report(report))

    gate = ArenaGate(
        min_copy_reduction=args.gate,
        throughput_frac=args.throughput_tolerance,
    )
    baseline = load_report(args.baseline) if args.baseline else None
    findings = compare_arena(report, gate, baseline=baseline)
    print()
    print(render_arena(findings, report))

    # Headline number: total dense flush payload each data plane copied.
    by_label = {r["label"]: r for r in report["runs"] if r.get("ok")}
    for label, run in sorted(by_label.items()):
        if not label.endswith("/arena"):
            continue
        sibling = by_label.get(label[: -len("/arena")])
        if sibling is None:
            continue
        copied = (run.get("arena") or {}).get("bytes_copied_fallback", 0)
        base = (sibling.get("arena") or {}).get("bytes_copied_fallback", 0)
        staged = (run.get("arena") or {}).get("bytes_staged", 0)
        reduction = base / copied if copied else float("inf")
        print(
            f"\n{label}: staged {staged} B zero-copy; copied {copied} B "
            f"vs {base} B on the pickle path "
            f"({reduction:.1f}x reduction; gate {args.gate:.1f}x)"
        )

    if args.out:
        save_report(args.out, report)
        print(f"\nwrote {pathlib.Path(args.out)}")

    if findings:
        print(f"\nFAIL: {len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
