"""Figure 15 — best performance for different tiling factors."""

from conftest import report

from repro.experiments import fig15


def test_fig15_tiling_factors(benchmark, sweep, results_dir):
    result = benchmark.pedantic(
        lambda: fig15.run(sweep), rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
