"""Figure 17 — best performance with and without chunking."""

from conftest import report

from repro.experiments import fig17


def test_fig17_chunking(benchmark, sweep, results_dir):
    result = benchmark.pedantic(
        lambda: fig17.run(sweep), rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
