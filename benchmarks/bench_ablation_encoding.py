"""Ablation — categorical-encoding influence on the Section IV analysis."""

from conftest import report

from repro.experiments import encoding_study


def test_ablation_encoding_influence(benchmark, sweep, results_dir):
    result = benchmark.pedantic(
        lambda: encoding_study.run(sweep), rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
