"""Figure 20 — every kernel variant at n = 24 and n = 48, chunk size 64."""

from conftest import report

from repro.experiments import fig20


def test_fig20_all_kernels(benchmark, results_dir):
    result = benchmark.pedantic(fig20.run, rounds=1, iterations=1, warmup_rounds=0)
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
