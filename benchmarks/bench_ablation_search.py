"""Ablation — exhaustive sweep versus guided search (Section IV's trade-off).

The paper deliberately pays for an exhaustive sweep because guided search
"represents a form of selection bias".  This ablation quantifies the other
side: how much of the exhaustive optimum random search and greedy
coordinate descent recover with a small fraction of the evaluations.
"""

from conftest import report

from repro.autotune.search import coordinate_descent, exhaustive_best, random_search
from repro.autotune.space import ParameterSpace
from repro.core.config import KernelConfig
from repro.experiments.common import ExperimentResult

SPACE = ParameterSpace(
    ns=(24,),
    nbs=(1, 2, 3, 4, 6, 8),
    chunkings=(None, 32, 64, 256),
    cache_prefs=("l1",),
)


def run_ablation() -> ExperimentResult:
    full = exhaustive_best(SPACE, batch=16384)
    rnd = random_search(SPACE, budget=24, seed=3, batch=16384)
    start = KernelConfig(
        n=24, nb=1, looking="right", chunked=False, unroll="partial"
    )
    greedy = coordinate_descent(SPACE, start, batch=16384)

    rows = [
        ["exhaustive", full.evaluations, round(full.best.gflops, 1), "1.00"],
        [
            "random(24)",
            rnd.evaluations,
            round(rnd.best.gflops, 1),
            f"{rnd.best.gflops / full.best.gflops:.2f}",
        ],
        [
            "coordinate descent",
            greedy.evaluations,
            round(greedy.best.gflops, 1),
            f"{greedy.best.gflops / full.best.gflops:.2f}",
        ],
    ]
    checks = {
        "guided searches use far fewer evaluations": greedy.evaluations
        < full.evaluations / 2
        and rnd.evaluations < full.evaluations / 2,
        "random search recovers most of the optimum": rnd.best.gflops
        > 0.7 * full.best.gflops,
        "coordinate descent recovers most of the optimum": greedy.best.gflops
        > 0.85 * full.best.gflops,
        "neither is guaranteed the exhaustive optimum": True,
    }
    return ExperimentResult(
        experiment="ablation_search",
        title="Exhaustive sweep vs guided search (n=24)",
        table=(["method", "evaluations", "best gflops", "fraction of optimum"], rows),
        checks=checks,
    )


def test_ablation_guided_search(benchmark, results_dir):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1, warmup_rounds=0)
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
