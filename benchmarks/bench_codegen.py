"""Wall-clock benchmarks of the kernel-generation pipeline.

The paper's autotuner compiles one kernel per configuration; generation
throughput bounds how fast a sweep can go.  These timings cover template
expansion, whole-kernel assembly (both unroll modes) and trace building.
"""

from repro.codegen.compile import clear_kernel_cache, compiled_kernel
from repro.codegen.kernel import generate_kernel_source
from repro.core.config import KernelConfig
from repro.core.schedule import build_schedule


def test_bench_generate_partial_n32(benchmark):
    cfg = KernelConfig(n=32, nb=8, unroll="partial", looking="top")
    gk = benchmark(generate_kernel_source, cfg)
    assert gk.static_statements > 0


def test_bench_generate_full_n24(benchmark):
    cfg = KernelConfig(n=24, nb=4, unroll="full", looking="left")
    gk = benchmark(generate_kernel_source, cfg)
    assert gk.static_statements > 1000


def test_bench_schedule_n48(benchmark):
    cfg = KernelConfig(n=48, nb=8, looking="right")
    ops = benchmark(build_schedule, cfg)
    assert len(ops) > 0


def test_bench_compile_cold(benchmark):
    cfg = KernelConfig(n=16, nb=4, unroll="full")

    def cold():
        clear_kernel_cache()
        return compiled_kernel(cfg)

    kernel = benchmark(cold)
    assert callable(kernel)
