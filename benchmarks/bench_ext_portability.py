"""Extension — tuning portability between GPU generations."""

from conftest import report

from repro.experiments import portability_study


def test_ext_portability_study(benchmark, results_dir):
    result = benchmark.pedantic(
        portability_study.run, rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
