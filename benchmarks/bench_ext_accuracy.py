"""Extension — float32 accuracy vs conditioning (the paper never measures it)."""

from conftest import report

from repro.experiments import accuracy_study


def test_ext_accuracy_study(benchmark, results_dir):
    result = benchmark.pedantic(
        accuracy_study.run, rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
