"""Figure 21 — accuracy of the random-forest model of the landscape."""

from conftest import report

from repro.experiments import fig21


def test_fig21_forest_accuracy(benchmark, sweep, results_dir):
    result = benchmark.pedantic(
        lambda: fig21.run(sweep), rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
