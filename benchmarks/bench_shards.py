"""Throughput scaling of the sharded broker fabric: shards = 1 vs 2 vs 4.

Run:  PYTHONPATH=src python benchmarks/bench_shards.py \
          --trace benchmarks/traces/bursty_mixed.jsonl --out report.json

Each configuration replays the bursty mixed-size canonical trace through
the fabric (``repro.serve.shard.ShardedBroker``) with tracing on, and two
numbers come out:

* **wall-clock throughput** — completed requests / replay wall time.  On
  a single-CPU, GIL-bound host this barely moves with the shard count:
  the replay is paced by the trace's arrival clock and every shard
  thread shares one core.
* **coalesce+flush capacity** — completed requests / the *busiest single
  shard's* serialized work (the sum of its ``submit`` span durations and
  its per-bucket ``flush`` spans, which cover backend + scatter).  Each
  shard runs one event loop, so that sum is the per-shard critical path;
  sharding scales throughput exactly insofar as it shrinks it.  This is
  the number that shows the fabric working even where wall clocks can't.

The report artifact records both per configuration plus the capacity
speedup of every cell against the single-broker baseline; the process
exits nonzero when the best max-shard cell falls short of ``--gate``
(default 1.5x, the acceptance floor).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.obs import InMemorySink, Tracer, set_tracer, span_to_dict
from repro.serve.client import replay_trace
from repro.serve.policy import ServePolicy
from repro.serve.trace import load_trace_file, normalize_events, trace_sha256

#: Schema tag of the shard-scaling report artifact.
REPORT_SCHEMA = "repro.bench_shards/v1"

#: The span kinds that serialize on one shard's event loop: per-request
#: submits and per-bucket flushes (a flush span covers backend + scatter).
_BUSY_SPANS = (("request", "submit"), ("serve", "flush"))


def shard_busy_seconds(spans: list[dict]) -> dict:
    """Per-shard serialized work, keyed by the ``shard`` span attribute.

    Spans from a single (unsharded) broker carry no tag and land under
    ``None`` — the degenerate one-shard case of the same accounting.
    """
    busy: dict = {}
    for span in spans:
        if (span.get("cat", ""), span["name"]) not in _BUSY_SPANS:
            continue
        shard = (span.get("attrs") or {}).get("shard")
        busy[shard] = busy.get(shard, 0.0) + (span["t1"] - span["t0"])
    return busy


def run_cell(events, shards: int, placement: str | None) -> dict:
    """Replay the trace through one fabric configuration, traced."""
    policy = ServePolicy(
        request_timeout_s=None,
        backend="inline",
        shards=shards,
        placement=placement if shards > 1 else None,
    )
    sink = InMemorySink()
    previous = set_tracer(Tracer([sink]))
    try:
        summary = replay_trace(events, policy=policy)
    finally:
        set_tracer(previous)
    spans = [span_to_dict(s) for s in sink.spans]
    busy = shard_busy_seconds(spans)
    bottleneck_s = max(busy.values()) if busy else 0.0
    label = f"sh{shards}" + (f"-{placement}" if shards > 1 else "")
    return {
        "label": label,
        "shards": shards,
        "placement": placement if shards > 1 else None,
        "completed": summary.completed,
        "failed": summary.failed,
        "shed": summary.shed,
        "conservation_ok": summary.metrics.unaccounted == 0,
        "elapsed_s": summary.elapsed_s,
        "wall_throughput_rps": summary.throughput_rps,
        "busy_s_per_shard": {str(k): v for k, v in sorted(busy.items(), key=str)},
        "bottleneck_busy_s": bottleneck_s,
        "capacity_rps": summary.completed / bottleneck_s if bottleneck_s else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        default="benchmarks/traces/bursty_mixed.jsonl",
        help="recorded workload trace (JSONL)",
    )
    parser.add_argument(
        "--shards", default="1,2,4", help="comma-separated shard counts"
    )
    parser.add_argument(
        "--placements", default="size,hash",
        help="comma-separated placement policies for the sharded cells",
    )
    parser.add_argument("--out", default="", help="write the report JSON here")
    parser.add_argument(
        "--gate", type=float, default=1.5,
        help="required capacity speedup of the best max-shard cell vs sh1",
    )
    args = parser.parse_args(argv)

    shard_counts = [int(v) for v in args.shards.split(",") if v.strip()]
    placements = [v.strip() for v in args.placements.split(",") if v.strip()]
    events = normalize_events(load_trace_file(args.trace))
    print(f"replaying {len(events)} events from {args.trace}\n")

    runs = []
    for shards in shard_counts:
        for placement in placements if shards > 1 else [None]:
            run = run_cell(events, shards, placement)
            runs.append(run)
            print(
                f"{run['label']:<10} completed={run['completed']:<4} "
                f"wall={run['wall_throughput_rps']:8.0f} req/s  "
                f"capacity={run['capacity_rps']:8.0f} req/s  "
                f"(bottleneck shard busy {run['bottleneck_busy_s'] * 1e3:.1f} ms)",
                flush=True,
            )

    base = next(r for r in runs if r["shards"] == 1)
    for run in runs:
        run["capacity_speedup_vs_sh1"] = (
            run["capacity_rps"] / base["capacity_rps"] if base["capacity_rps"] else 0.0
        )

    max_shards = max(shard_counts)
    best = max(
        (r for r in runs if r["shards"] == max_shards),
        key=lambda r: r["capacity_rps"],
    )
    speedup = best["capacity_speedup_vs_sh1"]
    print(
        f"\ncoalesce+flush capacity speedup sh{max_shards} vs sh1: "
        f"{speedup:.2f}x ({best['label']}; gate {args.gate:.2f}x)"
    )

    report = {
        "schema": REPORT_SCHEMA,
        "trace": {
            "path": str(args.trace),
            "sha256": trace_sha256(args.trace),
            "events": len(events),
        },
        "runs": runs,
        "best_max_shard_label": best["label"],
        "capacity_speedup": speedup,
        "gate": args.gate,
        "gate_ok": speedup >= args.gate,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1)
            fh.write("\n")
        print(f"wrote {pathlib.Path(args.out)}")

    if not all(r["conservation_ok"] for r in runs):
        print("FAIL: conservation violated in at least one run")
        return 1
    if speedup < args.gate:
        print(f"FAIL: capacity speedup {speedup:.2f}x below gate {args.gate:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
