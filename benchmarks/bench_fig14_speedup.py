"""Figure 14 — speedup of the interleaved implementation over MAGMA."""

from conftest import report

from repro.experiments import fig14


def test_fig14_speedup_over_magma(benchmark, sweep, results_dir):
    result = benchmark.pedantic(
        lambda: fig14.run(sweep), rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
