"""Ablation — analytic model versus event-driven simulation.

The figures all come from the closed-form model in ``repro.gpusim.model``.
As a bookkeeping cross-check, ``repro.gpusim.eventsim`` simulates the same
launches warp by warp (shared issue pipe, bandwidth-occupied memory pipe
with latency) while sharing no arithmetic with the analytic model.  On
configurations where the analytic model's *extra* mechanisms are inactive
(chunk 32 → perfect DRAM locality; moderate code sizes → no icache or
compiler-window pressure) the two must agree closely.
"""

from conftest import report

from repro.core.config import KernelConfig
from repro.experiments.common import ExperimentResult
from repro.gpusim.eventsim import simulate_launch
from repro.gpusim.model import estimate_performance

CONFIGS = [
    KernelConfig(n=8, nb=4, unroll="full", chunked=True, chunk_size=32),
    KernelConfig(n=16, nb=8, unroll="full", chunked=True, chunk_size=32),
    KernelConfig(n=24, nb=8, unroll="partial", chunked=True, chunk_size=32),
    KernelConfig(n=32, nb=8, unroll="partial", chunked=True, chunk_size=32),
    KernelConfig(n=48, nb=8, unroll="partial", chunked=True, chunk_size=32),
    KernelConfig(n=48, nb=4, unroll="partial", chunked=True, chunk_size=64),
]


def run_ablation() -> ExperimentResult:
    rows = []
    ratios = []
    for cfg in CONFIGS:
        analytic = estimate_performance(cfg, batch=16384)
        simulated = simulate_launch(cfg, batch=16384)
        ratio = analytic.gflops / simulated.gflops
        ratios.append(ratio)
        rows.append(
            [
                cfg.describe(),
                round(analytic.gflops, 1),
                round(simulated.gflops, 1),
                round(ratio, 2),
            ]
        )
    checks = {
        "models agree within 1.5x on locality-neutral configs": all(
            1 / 1.5 <= r <= 1.5 for r in ratios
        ),
        "no systematic bias (mean ratio near 1)": 0.7
        <= sum(ratios) / len(ratios)
        <= 1.3,
    }
    result = ExperimentResult(
        experiment="ablation_eventsim",
        title="Analytic model vs event-driven simulation (Gflop/s)",
        table=(["config", "analytic", "eventsim", "ratio"], rows),
        checks=checks,
    )
    result.notes.append(
        "known divergences (excluded here): the event simulator models no "
        "DRAM row locality (large chunks) and no instruction-fetch or "
        "compiler-window pressure (huge fully-unrolled kernels)"
    )
    return result


def test_ablation_eventsim_agreement(benchmark, results_dir):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1, warmup_rounds=0)
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
