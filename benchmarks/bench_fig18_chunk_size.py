"""Figure 18 — best performance per chunk size (= thread-block size)."""

from conftest import report

from repro.experiments import fig18


def test_fig18_chunk_sizes(benchmark, sweep, results_dir):
    result = benchmark.pedantic(
        lambda: fig18.run(sweep), rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
