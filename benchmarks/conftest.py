"""Shared fixtures for the benchmark suite.

The figure/table benchmarks all consume the standard exhaustive sweep;
it is built once (≈10 minutes on first run) and cached as CSV under
``results/``, so subsequent benchmark runs are fast.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import RESULTS_DIR, standard_sweep


@pytest.fixture(scope="session")
def sweep():
    return standard_sweep(progress=True)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def report(result, results_dir) -> None:
    """Print the experiment's rows and persist them under results/."""
    text = result.render()
    print()
    print(text)
    (results_dir / f"{result.experiment}.txt").write_text(text + "\n")
