"""Extension — batch-size scaling study (the paper fixes batch = 16384)."""

from conftest import report

from repro.experiments import batch_scaling


def test_ext_batch_scaling(benchmark, results_dir):
    result = benchmark.pedantic(
        batch_scaling.run, rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
