"""Wall-clock benchmarks of the Python executors themselves.

The paper's Gflop/s figures come from the GPU model (see DESIGN.md), but
the generated kernels really execute — vectorised over the batch with
NumPy — and these benchmarks time that execution, the layout packing, and
the batch solves, guarding against performance regressions in the library
itself.
"""

import numpy as np
import pytest

from repro.baselines.magma import magma_cholesky_batch
from repro.core.config import KernelConfig
from repro.core.factorize import batch_cholesky
from repro.core.solve import batch_solve
from repro.layouts.base import BatchSpec
from repro.layouts.chunked import ChunkedInterleavedLayout
from repro.serve import BatchExecutor
from repro.serve.batcher import PendingRequest
from repro.utils.spd import random_rhs_batch, random_spd_batch

BATCH = 2048

#: Flushed-bucket size for the serve-backend benchmarks — one tuned
#: chunk's worth, the shape the broker actually hands an executor.
FLUSH_BATCH = 256


@pytest.fixture(scope="module")
def spd16():
    return random_spd_batch(BATCH, 16, seed=0)


@pytest.mark.parametrize("unroll", ["partial", "full"])
def test_bench_batch_cholesky_n16(benchmark, spd16, unroll):
    cfg = KernelConfig(n=16, nb=4, looking="top", unroll=unroll)
    l = benchmark(batch_cholesky, spd16, cfg)
    assert np.isfinite(l).all()


@pytest.mark.parametrize("looking", ["right", "left", "top"])
def test_bench_batch_cholesky_lookings_n8(benchmark, looking):
    a = random_spd_batch(BATCH, 8, seed=1)
    cfg = KernelConfig(n=8, nb=4, looking=looking)
    l = benchmark(batch_cholesky, a, cfg)
    assert np.isfinite(l).all()


def test_bench_pack_unpack_chunked(benchmark, spd16):
    layout = ChunkedInterleavedLayout(64)
    spec = BatchSpec(batch=BATCH, n=16)

    def round_trip():
        return layout.unpack(layout.pack(spd16), spec)

    out = benchmark(round_trip)
    assert np.array_equal(out, spd16)


def test_bench_batch_solve(benchmark, spd16):
    l = batch_cholesky(spd16, KernelConfig(n=16, nb=4))
    b = random_rhs_batch(BATCH, 16, seed=2)
    x = benchmark(batch_solve, l, b)
    assert np.isfinite(x).all()


def test_bench_magma_numeric_baseline(benchmark, spd16):
    l = benchmark(magma_cholesky_batch, spd16)
    assert np.isfinite(l).all()


# ----------------------------------------------------------------------
# Serve-layer flush backends
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def flush_requests():
    a = random_spd_batch(FLUSH_BATCH, 16, seed=3)
    return [
        PendingRequest(
            seq=i, kind="factor", a=a[i], b=None, future=None, enqueued_at=0.0
        )
        for i in range(FLUSH_BATCH)
    ]


@pytest.mark.parametrize("backend", ["inline", "process", "eventsim", "shadow"])
def test_bench_serve_flush_backends(benchmark, flush_requests, backend):
    """One flushed bucket through each executor backend.

    ``inline`` is the host-NumPy floor, ``process`` adds the IPC +
    pickling cost of escaping the GIL, ``eventsim`` adds the discrete
    simulation, and ``shadow`` adds a full LAPACK mirror of the batch.
    """
    ex = BatchExecutor(backend=backend)
    ex.warmup([16])
    try:
        report = benchmark(ex.execute, flush_requests, "full")
        assert report.size == FLUSH_BATCH
        assert report.backend == backend
    finally:
        ex.close()
