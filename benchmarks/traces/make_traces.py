"""Regenerate the canonical recorded workload traces.

Run:  PYTHONPATH=src python benchmarks/traces/make_traces.py [--out-dir DIR]

The committed traces under ``benchmarks/traces/`` are built here
from first principles, fully deterministically — regeneration must
reproduce the committed files byte for byte (a test enforces it), which
is what makes their provenance auditable.  See ``README.md`` in this
directory for what each trace models.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

from repro.apps.als import ALSRecommender, generate_ratings
from repro.serve.trace import RecordedEvent, derive_seed, save_trace


def uniform_small_trace() -> list[RecordedEvent]:
    """Uniform small-n traffic: one size, evenly spaced arrivals.

    120 requests of n=8 at a steady 10 kHz (100 µs gaps); every fourth
    request is a single-RHS solve.  The simplest possible workload — a
    single bucket filling at a constant rate — and the floor any policy
    must handle well.
    """
    events = []
    for i in range(120):
        solve = i % 4 == 3
        events.append(
            RecordedEvent(
                at=round(i * 1e-4, 6),
                op="solve" if solve else "factor",
                n=8,
                nrhs=1 if solve else 0,
                seed=derive_seed(11, i),
            )
        )
    return events


def bursty_mixed_trace() -> list[RecordedEvent]:
    """Bursty mixed-size traffic: quiet gaps punctuated by arrival storms.

    Six bursts of 30 requests each, 20 ms apart; inside a burst requests
    land 50 µs apart.  Sizes are drawn from {8, 16, 32} and 40% of
    requests are solves (mostly single-RHS, an eighth of them 4-RHS);
    two requests are deliberately non-SPD so the failure path stays
    exercised.  This is the canonical stress trace the CI replay job
    gates on: deadline flushes, partially filled buckets, and mixed
    bucket sizes all occur.
    """
    rng = np.random.default_rng(23)
    events = []
    i = 0
    for burst in range(6):
        start = burst * 0.020
        for k in range(30):
            n = int(rng.choice((8, 16, 32)))
            solve = bool(rng.random() < 0.4)
            nrhs = 0
            if solve:
                nrhs = 4 if rng.random() < 0.125 else 1
            events.append(
                RecordedEvent(
                    at=round(start + k * 5e-5, 6),
                    op="solve" if solve else "factor",
                    n=n,
                    nrhs=nrhs,
                    seed=derive_seed(23, i),
                    nonspd=i in (47, 111),
                )
            )
            i += 1
    return events


def als_solves_trace() -> list[RecordedEvent]:
    """ALS-derived solve stream: the paper's motivating workload.

    A rank-8 ALS run over a synthetic 48-user × 24-item ratings matrix
    (:func:`repro.apps.als.generate_ratings`), 2 iterations — each
    half-step is a burst of per-user (then per-item) rank-8 solves at
    50 kHz with a 5 ms normal-equation assembly gap between half-steps,
    exactly what :meth:`ALSRecommender.solve_trace` exports.  144 solve
    arrivals, all n=8, nrhs=1.
    """
    data = generate_ratings(
        n_users=48, n_items=24, rank=8, density=0.2, noise=0.1, seed=31
    )
    model = ALSRecommender(rank=8, regularization=0.05, iterations=2, seed=31)
    return model.solve_trace(data, burst_rate_hz=50000.0, assembly_gap_s=0.005,
                             seed=31)


def als_graph_trace() -> list[RecordedEvent]:
    """Multi-tenant ALS jobs with their dependency DAGs attached.

    Three independent rank-8 ALS jobs (24 users × 12 items, 2 iterations
    each) exported via :meth:`ALSRecommender.solve_graph_trace`, started
    1.5 ms apart and merged into one arrival stream.  Each job is one
    graph: every half-step wave depends on the whole previous half-step,
    so a flat replay must still serve each event at its arrival time,
    while a graph-aware replay (``replay-check --graph``) releases whole
    half-steps as waves — and independent jobs' waves coalesce into
    shared flushes.  The first committed ``repro.trace/v2`` trace.
    """
    jobs = []
    for g in range(3):
        data = generate_ratings(
            n_users=24, n_items=12, rank=8, density=0.25, noise=0.1, seed=31 + g
        )
        model = ALSRecommender(
            rank=8, regularization=0.05, iterations=2, seed=31 + g
        )
        jobs.extend(
            model.solve_graph_trace(
                data,
                burst_rate_hz=50000.0,
                assembly_gap_s=0.004,
                seed=31 + g,
                graph=g,
                start_at=g * 0.0015,
            )
        )
    # A stable sort by arrival keeps each job's own event order — the
    # per-graph positions its deps reference — intact.
    return sorted(jobs, key=lambda e: e.at)


def multi_tenant_trace() -> list[RecordedEvent]:
    """Tiered multi-tenant traffic: a gold trickle under a best-effort flood.

    Five tenants share 400 ms of wall clock (``repro.trace/v3`` —
    every event carries ``tier``/``tenant``):

    * ``vip`` (gold) trickles 60 evenly spaced requests — the latency-
      sensitive stream whose coalesce p99 the tier gate budgets.
    * ``team0..team2`` (silver) each send 60 requests, phase-offset so
      the streams interleave; one request is deliberately non-SPD.
    * ``hot`` (best_effort) floods 250 requests at 625 Hz — far beyond
      the default best-effort quota (120/s, burst 24), so a working
      admission layer sheds most of the flood while the other tenants
      complete in full.  That is what keeps Jain's fairness index high
      *and* what the ``replay-check --tiers`` shed floor asserts.

    Quota shedding depends only on the arrival schedule against the
    refill rate — not on machine speed — so the shed fraction and the
    fairness index are stable gate inputs across hosts.
    """
    rng = np.random.default_rng(41)
    duration = 0.4
    events = []
    i = 0

    def emit(at, tier, tenant, n, solve=False, nonspd=False) -> None:
        nonlocal i
        events.append(
            RecordedEvent(
                at=round(at, 6),
                op="solve" if solve else "factor",
                n=n,
                nrhs=1 if solve else 0,
                seed=derive_seed(41, i),
                nonspd=nonspd,
                tier=tier,
                tenant=tenant,
            )
        )
        i += 1

    for k in range(60):
        emit(k * duration / 60, "gold", "vip", 8, solve=k % 3 == 2)
    for team in range(3):
        for k in range(60):
            n = int(rng.choice((8, 16, 32)))
            emit(
                k * duration / 60 + (team + 1) * duration / 240,
                "silver",
                f"team{team}",
                n,
                solve=bool(rng.random() < 0.3),
                nonspd=team == 1 and k == 37,
            )
    for k in range(250):
        n = int(rng.choice((8, 16)))
        emit(
            k * duration / 250,
            "best_effort",
            "hot",
            n,
            solve=bool(rng.random() < 0.25),
            nonspd=k == 143,
        )
    # Stable sort by arrival keeps same-instant events in emit order.
    return sorted(events, key=lambda e: e.at)


TRACES = {
    "uniform_small": (
        uniform_small_trace,
        {"name": "uniform_small", "source": "make_traces.uniform_small_trace"},
    ),
    "bursty_mixed": (
        bursty_mixed_trace,
        {"name": "bursty_mixed", "source": "make_traces.bursty_mixed_trace"},
    ),
    "als_solves": (
        als_solves_trace,
        {
            "name": "als_solves",
            "source": "repro.apps.als.ALSRecommender.solve_trace",
            "rank": 8,
            "n_users": 48,
            "n_items": 24,
            "iterations": 2,
        },
    ),
    "als_graph": (
        als_graph_trace,
        {
            "name": "als_graph",
            "source": "repro.apps.als.ALSRecommender.solve_graph_trace",
            "rank": 8,
            "jobs": 3,
            "n_users": 24,
            "n_items": 12,
            "iterations": 2,
        },
    ),
    "multi_tenant": (
        multi_tenant_trace,
        {
            "name": "multi_tenant",
            "source": "make_traces.multi_tenant_trace",
            "tenants": 5,
            "tiers": 3,
        },
    ),
}


def write_traces(out_dir) -> list[pathlib.Path]:
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name, (build, meta) in TRACES.items():
        path = out_dir / f"{name}.jsonl"
        count = save_trace(path, build(), meta=meta)
        print(f"wrote {count:4d} events to {path}")
        written.append(path)
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir",
        default=str(pathlib.Path(__file__).parent),
        help="directory to write the traces into (default: alongside this script)",
    )
    args = parser.parse_args(argv)
    write_traces(args.out_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
