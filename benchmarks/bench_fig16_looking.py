"""Figure 16 — best performance for the three looking variants."""

from conftest import report

from repro.experiments import fig16


def test_fig16_looking_order(benchmark, sweep, results_dir):
    result = benchmark.pedantic(
        lambda: fig16.run(sweep), rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
