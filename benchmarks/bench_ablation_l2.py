"""Ablation — the paper's claim that caches act as streaming buffers.

Section III: "Data reuse only happens within a single thread ... Caches
only serve the purpose of streaming buffers."  We drive the L2 simulator
with the interleaved kernel's actual address stream and show the hit rate
collapsing once the batch's working set exceeds the 4 MiB L2 — i.e. for
every realistic batch size.
"""


from conftest import report
from repro.core.config import KernelConfig
from repro.core.trace import build_trace
from repro.experiments.common import ExperimentResult
from repro.gpusim.arch import P100
from repro.gpusim.cache import SetAssociativeCache
from repro.layouts.base import BatchSpec
from repro.layouts.chunked import ChunkedInterleavedLayout


def l2_hit_rate(n: int, batch: int, nb: int = 4) -> float:
    """Simulated L2 hit rate of one full kernel pass over the batch.

    The address stream interleaves the per-thread tile accesses across
    chunks the way concurrently resident blocks would issue them (chunk
    by chunk round-robin at tile-op granularity).
    """
    layout = ChunkedInterleavedLayout(32)
    spec = BatchSpec(batch=batch, n=n)
    trace = build_trace(KernelConfig(n=n, nb=nb))
    cache = SetAssociativeCache(P100.l2_bytes, P100.line_bytes, ways=16)
    nchunks = layout.padded_batch(spec) // 32
    per_chunk = n * n * 32
    # One 128-byte transaction per warp access: address = line of lane 0.
    for op in trace.ops:
        if not op.is_memory:
            continue
        mt, nt = op.target
        base = (mt * (nb if nb <= n else n) + nt * (nb if nb <= n else n) * n) * 32
        for chunk in range(nchunks):
            for e in range(op.elems):
                cache.access((chunk * per_chunk + base + e * 32) * 4)
    return cache.stats.hit_rate


def run_ablation() -> ExperimentResult:
    n = 16
    rows = []
    rates = {}
    for batch in (64, 512, 4096, 16384):
        rate = l2_hit_rate(n, batch)
        rates[batch] = rate
        working_set = batch * n * n * 4
        rows.append([batch, f"{working_set // 1024} KiB", round(rate, 3)])
    checks = {
        "small batches enjoy L2 reuse": rates[64] > 0.5,
        # The kernels' tile-reuse distances are short, so hits survive
        # until the inter-reuse footprint itself outgrows the 4 MiB L2 —
        # which happens right at the paper's 16384-matrix batch.
        "hit rate collapses at the paper's batch size": rates[16384] < 0.2,
        "monotone degradation": list(rates.values())
        == sorted(rates.values(), reverse=True),
    }
    result = ExperimentResult(
        experiment="ablation_l2",
        title="L2 as a streaming buffer: hit rate vs batch working set",
        table=(["batch", "working set", "L2 hit rate"], rows),
        checks=checks,
    )
    result.notes.append(
        "paper batch 16384 at n=16: 16 MiB working set against 4 MiB L2 — "
        "reuse in registers only, exactly the paper's observation"
    )
    return result


def test_ablation_l2_streaming(benchmark, results_dir):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1, warmup_rounds=0)
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
