"""Table I — predictive power of the tuning parameters (%IncMSE)."""

from conftest import report

from repro.experiments import table1


def test_table1_parameter_importance(benchmark, sweep, results_dir):
    result = benchmark.pedantic(
        lambda: table1.run(sweep), rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
