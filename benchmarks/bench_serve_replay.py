"""Replay a recorded workload trace across a policy × backend grid.

Run:  PYTHONPATH=src python benchmarks/bench_serve_replay.py \
          --trace benchmarks/traces/bursty_mixed.jsonl \
          --backends inline,eventsim --out report.json

Each grid cell replays the trace through a fresh broker with its own
:class:`~repro.serve.policy.ServePolicy`, collecting the broker's
``ServeMetrics`` plus per-stage ``repro.obs`` latency summaries into a
``repro.bench_serve_replay/v3`` report with an environment fingerprint
(``--shards``/``--placements`` add sharded-fabric cells to the grid,
``--slo`` stamps whole-run objective verdicts onto every run — see
``docs/slo.md``).  Pass ``--baseline`` to additionally gate the fresh
report against a committed one (same check as ``python -m repro
replay-check``); the process exits nonzero on regression.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.serve.replay import (
    GateTolerances,
    compare_reports,
    load_report,
    policy_grid,
    render_comparison,
    render_report,
    run_replay_grid,
    save_report,
)
from repro.serve.trace import load_trace_file


def _csv(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", required=True, help="recorded trace (JSONL)")
    parser.add_argument(
        "--backends", default="inline", help="comma-separated backend names"
    )
    parser.add_argument(
        "--target-batches", default="64", help="comma-separated target_batch values"
    )
    parser.add_argument(
        "--max-delays-ms", default="2", help="comma-separated max_delay_s values (ms)"
    )
    parser.add_argument(
        "--shards", default="1", help="comma-separated broker shard counts"
    )
    parser.add_argument(
        "--placements", default="size",
        help="comma-separated placement policies for the sharded cells",
    )
    parser.add_argument(
        "--graph", action="store_true",
        help="double the grid with graph-scheduled cells (…/graph) that "
             "submit the trace's recorded dependency DAGs as waves",
    )
    parser.add_argument(
        "--slo", default="",
        help="objective spec (e.g. 'coalesce_p99_ms<250'); stamps each run "
             "with an slo block of exact bad fractions and burn rates",
    )
    parser.add_argument("--out", default="", help="write the report JSON here")
    parser.add_argument(
        "--baseline", default="", help="gate against this committed report"
    )
    parser.add_argument(
        "--throughput-tolerance", type=float, default=GateTolerances.throughput_frac
    )
    parser.add_argument(
        "--p95-tolerance", type=float, default=GateTolerances.p95_frac
    )
    parser.add_argument(
        "--fill-tolerance", type=float, default=GateTolerances.fill_abs,
        help="absolute mean flush fill-ratio drop allowed for graph cells",
    )
    args = parser.parse_args(argv)

    grid = policy_grid(
        backends=_csv(args.backends),
        target_batches=[int(v) for v in _csv(args.target_batches)],
        max_delays_ms=[float(v) for v in _csv(args.max_delays_ms)],
        shards=[int(v) for v in _csv(args.shards)],
        placements=_csv(args.placements),
        graphs=(False, True) if args.graph else (False,),
    )
    trace = load_trace_file(args.trace)
    report = run_replay_grid(
        trace,
        grid,
        trace_path=args.trace,
        progress=lambda label: print(f"replaying {label} ...", flush=True),
        slo=args.slo or None,
    )
    print()
    print(render_report(report))
    if args.out:
        save_report(args.out, report)
        print(f"\nwrote {pathlib.Path(args.out)}")
    else:
        print()
        print(json.dumps(report["environment"], indent=2))

    if args.baseline:
        tol = GateTolerances(
            throughput_frac=args.throughput_tolerance,
            p95_frac=args.p95_tolerance,
            fill_abs=args.fill_tolerance,
        )
        baseline = load_report(args.baseline)
        findings = compare_reports(baseline, report, tol)
        print()
        print(render_comparison(findings, baseline, report))
        return 1 if findings else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
