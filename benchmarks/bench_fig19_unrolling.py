"""Figure 19 — partial versus full unrolling."""

from conftest import report

from repro.experiments import fig19


def test_fig19_unrolling(benchmark, sweep, results_dir):
    result = benchmark.pedantic(
        lambda: fig19.run(sweep), rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
