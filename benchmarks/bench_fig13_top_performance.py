"""Figure 13 — top performance, IEEE vs fast-math, batch 16384.

Regenerates the figure's two series (best Gflop/s per matrix size under
each arithmetic mode) from the exhaustive sweep and asserts the paper's
qualitative shape.
"""

from conftest import report

from repro.experiments import fig13


def test_fig13_top_performance(benchmark, sweep, results_dir):
    result = benchmark.pedantic(
        lambda: fig13.run(sweep), rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
