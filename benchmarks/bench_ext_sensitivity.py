"""Extension — calibration sensitivity of the reproduced conclusions."""

from conftest import report

from repro.experiments import sensitivity_study


def test_ext_sensitivity_study(benchmark, results_dir):
    result = benchmark.pedantic(
        sensitivity_study.run, rounds=1, iterations=1, warmup_rounds=0
    )
    report(result, results_dir)
    assert result.all_checks_pass, result.render()
