"""Fill-ratio win of graph submission vs sequential await of the same DAG.

Run:  PYTHONPATH=src python benchmarks/bench_graph.py \
          --trace benchmarks/traces/als_graph.jsonl --out report.json

Both cells replay the same dependency-annotated trace
(``repro.trace/v2``) through the same broker policy; the only difference
is how each graph's nodes reach the broker:

* **sequential** — the classic client loop every graph caller starts
  from: await each node before submitting the next, so at most one
  request per graph is ever in flight and buckets fill only across
  concurrent *jobs*.
* **graph** — the :class:`~repro.serve.graph.GraphScheduler` releases
  each ready *wave* at once, so a whole ALS half-step (and the
  concurrent half-steps of other jobs) lands in shared size buckets
  before the flush deadline expires.

The gate is the tentpole claim: graph submission must achieve a
**strictly higher mean flush fill-ratio** than sequential await — and it
must do so honestly, with no extra shedding (offered == completed on
both sides, checked) and exact node conservation.  Critical-path latency
per graph rides along in the report for the replay grids to compare.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.serve.client import replay_trace
from repro.serve.policy import ServePolicy
from repro.serve.trace import load_trace_file, normalize_events, trace_sha256

#: Schema tag of the graph-vs-sequential report artifact.
REPORT_SCHEMA = "repro.bench_graph/v1"


def run_cell(events, mode: str, policy: ServePolicy) -> dict:
    """Replay the trace once in one submission mode."""
    summary = replay_trace(events, policy=policy, graph=mode)
    m = summary.metrics
    gm = summary.graph_metrics
    critical = gm.histograms["graph_critical_path_ms"]
    return {
        "label": mode,
        "requests": summary.requests,
        "offered": m.counters["submitted"],
        "completed": summary.completed,
        "failed": summary.failed,
        "shed": summary.shed,
        "conservation_ok": m.unaccounted == 0 and gm.unaccounted == 0,
        "elapsed_s": summary.elapsed_s,
        "fill_mean": m.histograms["batch_fill"].mean,
        "batch_mean": m.histograms["batch_size"].mean,
        "flushes": m.counters["flushes"],
        "graphs": gm.counters["graphs"],
        "waves": gm.counters["waves"],
        "wave_width_mean": gm.histograms["wave_width"].mean,
        "critical_path_ms_mean": critical.mean,
        "critical_path_ms_max": critical.max,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        default="benchmarks/traces/als_graph.jsonl",
        help="dependency-annotated workload trace (repro.trace/v2 JSONL)",
    )
    parser.add_argument(
        "--target-batch", type=int, default=64,
        help="flush threshold of both cells",
    )
    parser.add_argument(
        "--max-delay-ms", type=float, default=2.0,
        help="flush deadline of both cells (ms)",
    )
    parser.add_argument("--out", default="", help="write the report JSON here")
    args = parser.parse_args(argv)

    events = normalize_events(load_trace_file(args.trace))
    if not any(e.graph is not None for e in events):
        print(f"FAIL: {args.trace} carries no graph annotations")
        return 2
    policy = ServePolicy(
        request_timeout_s=None,
        backend="inline",
        target_batch=args.target_batch,
        max_delay_s=args.max_delay_ms / 1e3,
    )
    print(f"replaying {len(events)} events from {args.trace}\n")

    runs = []
    for mode in ("sequential", "wave"):
        run = run_cell(events, mode, policy)
        runs.append(run)
        print(
            f"{run['label']:<10} completed={run['completed']:<4} "
            f"fill={run['fill_mean']:.3f}  batch={run['batch_mean']:5.1f}  "
            f"flushes={run['flushes']:<4} "
            f"critical path mean {run['critical_path_ms_mean']:.2f} ms",
            flush=True,
        )

    sequential = next(r for r in runs if r["label"] == "sequential")
    wave = next(r for r in runs if r["label"] == "wave")
    fill_gain = (
        wave["fill_mean"] / sequential["fill_mean"]
        if sequential["fill_mean"]
        else float("inf")
    )
    print(
        f"\nmean flush fill: graph {wave['fill_mean']:.3f} vs sequential "
        f"{sequential['fill_mean']:.3f} ({fill_gain:.2f}x; gate: strictly higher)"
    )

    report = {
        "schema": REPORT_SCHEMA,
        "trace": {
            "path": str(args.trace),
            "sha256": trace_sha256(args.trace),
            "events": len(events),
        },
        "policy": {
            "target_batch": policy.target_batch,
            "max_delay_ms": policy.max_delay_s * 1e3,
        },
        "runs": runs,
        "fill_gain": fill_gain,
        "gate_ok": wave["fill_mean"] > sequential["fill_mean"],
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1)
            fh.write("\n")
        print(f"wrote {pathlib.Path(args.out)}")

    failures = []
    for run in runs:
        if not run["conservation_ok"]:
            failures.append(f"{run['label']}: conservation violated")
        if run["shed"] or run["completed"] != run["offered"]:
            failures.append(
                f"{run['label']}: served {run['completed']} of "
                f"{run['offered']} offered ({run['shed']} shed) — "
                "fill comparison would be dishonest"
            )
    if not report["gate_ok"]:
        failures.append(
            f"graph fill {wave['fill_mean']:.3f} not strictly above "
            f"sequential {sequential['fill_mean']:.3f}"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
