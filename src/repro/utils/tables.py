"""Plain-text table formatting for the experiment harnesses.

Every benchmark prints the same rows/series the paper's figures plot; these
helpers keep that output consistent and easy to diff across runs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _fmt_cell(value, width: int = 0) -> str:
    if isinstance(value, float):
        text = f"{value:.2f}"
    else:
        text = str(value)
    return text.rjust(width) if width else text


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width table with a header rule, suitable for terminal output."""
    rows = [list(r) for r in rows]
    for r in rows:
        if len(r) != len(headers):
            raise ValueError(
                f"row has {len(r)} cells but table has {len(headers)} columns"
            )
    cells = [[_fmt_cell(v) for v in r] for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(title: str, series: Mapping[str, Mapping[int, float]], xlabel: str = "n") -> str:
    """Format several named series sharing an integer x-axis.

    ``series`` maps a series label (e.g. ``"ieee"``, ``"fast_math"``) to a
    mapping from x value to y value.  Missing points render as ``-``.
    """
    xs = sorted({x for ys in series.values() for x in ys})
    headers = [xlabel] + list(series)
    rows = []
    for x in xs:
        row: list = [x]
        for label in series:
            y = series[label].get(x)
            row.append("-" if y is None else y)
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"
