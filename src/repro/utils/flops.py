"""Floating-point operation counts for the kernels in the paper.

The paper always uses the standard ``N**3 / 3`` formula when converting
measured time to Gflop/s (Section III), regardless of the exact operation
mix of a particular kernel.  We expose both that *nominal* count and the
*exact* operation mix of the unblocked algorithm, because the performance
model needs to weight square roots and divisions differently from fused
multiply-adds (the ``--use_fast_math`` effect in Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass


def cholesky_flops(n: int) -> float:
    """Nominal flop count used by the paper for one n-by-n factorization.

    This is the classic ``n^3 / 3`` convention; Gflop/s figures in all the
    paper's plots divide by this value.
    """
    if n < 0:
        raise ValueError(f"matrix dimension must be nonnegative, got {n}")
    return n**3 / 3.0


def trsv_flops(n: int) -> float:
    """Nominal flops for one triangular solve with a single right-hand side."""
    if n < 0:
        raise ValueError(f"matrix dimension must be nonnegative, got {n}")
    return float(n * n)


@dataclass(frozen=True)
class OpMix:
    """Exact scalar-operation mix of one unblocked Cholesky factorization.

    Attributes
    ----------
    fma:
        Fused multiply-add operations (the ``A[m,n] -= A[m,k]*A[n,k]``
        updates).  Counted as one instruction (two flops) each.
    div:
        Divisions (the panel scaling ``A[m,k] /= A[k,k]``).  With
        ``--use_fast_math`` these compile to a fast approximate reciprocal;
        IEEE-compliant division is a multi-instruction sequence.
    sqrt:
        Square roots (one per diagonal element).  Same IEEE/fast split.
    """

    fma: int
    div: int
    sqrt: int

    @property
    def flops(self) -> int:
        """Total flops with the 2-flops-per-FMA convention."""
        return 2 * self.fma + self.div + self.sqrt

    def __add__(self, other: "OpMix") -> "OpMix":
        return OpMix(self.fma + other.fma, self.div + other.div, self.sqrt + other.sqrt)


def cholesky_op_mix(n: int) -> OpMix:
    """Exact operation mix of Algorithm 1 on an n-by-n matrix.

    Derived by summing the loop trip counts of Algorithm 1:

    * line 2 runs ``n`` times (sqrt),
    * line 4 runs ``sum_k (n-1-k) = n(n-1)/2`` times (div),
    * line 7 runs ``sum_k sum_{j>k} (n-j) = (n^3 - n)/6`` times (fma).
    """
    if n < 0:
        raise ValueError(f"matrix dimension must be nonnegative, got {n}")
    return OpMix(fma=(n**3 - n) // 6, div=n * (n - 1) // 2, sqrt=n)


def gflops(n: int, batch: int, seconds: float) -> float:
    """Gflop/s for a batch of factorizations, using the paper's convention."""
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    return cholesky_flops(n) * batch / seconds / 1e9
