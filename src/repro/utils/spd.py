"""Generation of symmetric positive definite test batches.

Batch routines in this package always receive matrices in the *canonical*
in-memory form first — a NumPy array of shape ``(batch, n, n)`` — and are
converted to interleaved layouts by :mod:`repro.layouts.convert`.  Single
precision is the paper's setting, so ``float32`` is the default dtype.
"""

from __future__ import annotations

import numpy as np


def make_spd(n: int, rng: np.random.Generator, dtype=np.float32, cond_shift: float | None = None) -> np.ndarray:
    """Build one well-conditioned SPD matrix.

    ``A = G G^T + shift * I`` with Gaussian ``G``; the diagonal shift keeps
    the smallest eigenvalue comfortably positive in float32 so that the
    unblocked factorization (which takes ``n`` successive square roots) does
    not under-flow for the sizes the paper studies (n <= 64).
    """
    if n <= 0:
        raise ValueError(f"matrix dimension must be positive, got {n}")
    g = rng.standard_normal((n, n))
    a = g @ g.T
    shift = float(n) if cond_shift is None else cond_shift
    a += shift * np.eye(n)
    return np.ascontiguousarray(a, dtype=dtype)


def random_spd_batch(
    batch: int,
    n: int,
    seed: int | np.random.Generator = 0,
    dtype=np.float32,
) -> np.ndarray:
    """Batch of SPD matrices, shape ``(batch, n, n)``.

    Vectorised construction: ``A_b = G_b G_b^T + n I`` for independent
    Gaussian ``G_b``.  Deterministic for a fixed ``seed``.
    """
    if batch <= 0:
        raise ValueError(f"batch size must be positive, got {batch}")
    if n <= 0:
        raise ValueError(f"matrix dimension must be positive, got {n}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    g = rng.standard_normal((batch, n, n))
    a = np.einsum("bik,bjk->bij", g, g)
    a += float(n) * np.eye(n)
    # Symmetrise exactly: einsum is symmetric analytically but not bitwise.
    a = (a + a.transpose(0, 2, 1)) / 2.0
    return np.ascontiguousarray(a, dtype=dtype)


def random_rhs_batch(
    batch: int,
    n: int,
    nrhs: int = 1,
    seed: int | np.random.Generator = 0,
    dtype=np.float32,
) -> np.ndarray:
    """Batch of right-hand sides, shape ``(batch, n, nrhs)``."""
    if nrhs <= 0:
        raise ValueError(f"nrhs must be positive, got {nrhs}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    return np.ascontiguousarray(rng.standard_normal((batch, n, nrhs)), dtype=dtype)
