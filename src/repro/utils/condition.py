"""Conditioned SPD batch generation for accuracy studies.

The paper computes in single precision; whether that is *enough* depends
on the conditioning of the systems, which its applications (ALS normal
equations, FEM element matrices) control via regularisation.  These
helpers generate SPD batches with a prescribed 2-norm condition number so
the accuracy study (`repro.experiments.accuracy_study`) can chart error
growth against kappa.
"""

from __future__ import annotations

import numpy as np


def conditioned_spd_batch(
    batch: int,
    n: int,
    condition: float,
    seed: int = 0,
    dtype=np.float32,
) -> np.ndarray:
    """SPD batch with 2-norm condition number ``condition`` (exactly).

    Built as ``Q diag(lambda) Q^T`` with Haar-random orthogonal ``Q`` and
    eigenvalues log-spaced between ``1/condition`` and ``1``.
    """
    if batch <= 0 or n <= 0:
        raise ValueError(f"batch and n must be positive, got {batch}, {n}")
    if condition < 1.0:
        raise ValueError(f"condition number must be >= 1, got {condition}")
    rng = np.random.default_rng(seed)
    if n == 1:
        return np.ones((batch, 1, 1), dtype=dtype)
    eigenvalues = np.logspace(-np.log10(condition), 0.0, n)
    out = np.empty((batch, n, n), dtype=np.float64)
    for i in range(batch):
        g = rng.standard_normal((n, n))
        q, r = np.linalg.qr(g)
        q *= np.sign(np.diag(r))  # Haar correction
        out[i] = (q * eigenvalues) @ q.T
    out = (out + out.transpose(0, 2, 1)) / 2.0
    return out.astype(dtype)


def condition_numbers(a: np.ndarray) -> np.ndarray:
    """2-norm condition number of each matrix in a dense SPD batch."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValueError(f"expected a (batch, n, n) array, got {a.shape}")
    eig = np.linalg.eigvalsh(a)
    if np.any(eig[:, 0] <= 0):
        raise ValueError("batch contains non-positive-definite matrices")
    return eig[:, -1] / eig[:, 0]
