"""Terminal line plots for the experiment harnesses.

The paper's evaluation is all line charts over the matrix dimension; in a
terminal-only environment the experiment CLIs render the same series as
character-cell plots so shapes (crossovers, plateaus, collapses) are
visible at a glance without leaving the shell.
"""

from __future__ import annotations

from typing import Mapping

#: Marker characters assigned to series in order.
MARKERS = "ox+*#@%&"


def line_plot(
    series: Mapping[str, Mapping[int, float]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    ylabel: str = "",
) -> str:
    """Render named series (x -> y mappings) as an ASCII chart.

    Series are drawn in iteration order with markers from
    :data:`MARKERS`; later series overwrite earlier ones where they
    collide (collisions render the later marker, which is fine for the
    shape-reading purpose).
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 16 or height < 4:
        raise ValueError(f"plot area too small: {width}x{height}")
    xs = sorted({x for ys in series.values() for x in ys})
    if not xs:
        raise ValueError("series contain no points")
    ys_all = [y for ys in series.values() for y in ys.values()]
    lo, hi = min(ys_all), max(ys_all)
    if hi == lo:
        hi = lo + 1.0
    x_lo, x_hi = xs[0], xs[-1]
    x_span = (x_hi - x_lo) or 1

    grid = [[" "] * width for _ in range(height)]

    def place(x: int, y: float, marker: str) -> None:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - lo) / (hi - lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    legend = []
    for (label, ys), marker in zip(series.items(), MARKERS):
        legend.append(f"{marker} {label}")
        for x, y in ys.items():
            place(x, y, marker)

    lines = []
    if title:
        lines.append(title)
    top_label = f"{hi:.0f}"
    bottom_label = f"{lo:.0f}"
    pad = max(len(top_label), len(bottom_label), len(ylabel))
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bottom_label
        elif i == height // 2 and ylabel:
            label = ylabel
        else:
            label = ""
        lines.append(f"{label.rjust(pad)} |{''.join(row)}")
    lines.append(f"{' ' * pad} +{'-' * width}")
    lines.append(f"{' ' * pad}  {str(x_lo).ljust(width - len(str(x_hi)))}{x_hi}")
    lines.append(f"{' ' * pad}  {'   '.join(legend)}")
    return "\n".join(lines)
