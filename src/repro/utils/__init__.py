"""Shared utilities: SPD batch generation, flop formulas, error norms, tables."""

from repro.utils.flops import (
    cholesky_flops,
    cholesky_op_mix,
    gflops,
    trsv_flops,
)
from repro.utils.spd import (
    random_spd_batch,
    random_rhs_batch,
    make_spd,
)
from repro.utils.errors import (
    factorization_error,
    max_abs_error,
    relative_residual,
)
from repro.utils.tables import format_table, format_series

__all__ = [
    "cholesky_flops",
    "cholesky_op_mix",
    "gflops",
    "trsv_flops",
    "random_spd_batch",
    "random_rhs_batch",
    "make_spd",
    "factorization_error",
    "max_abs_error",
    "relative_residual",
    "format_table",
    "format_series",
]
