"""Scalar-operation mix of generated code blocks.

Lives in :mod:`repro.utils` (a leaf package) because both the code
generator and the schedule/trace layer need it, and neither may import the
other at module-import time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OpMixCounter:
    """Scalar-operation counts of one expanded code block (per thread).

    ``fma`` statements count two flops; multiplies, divisions and square
    roots count one each.  Divisions and square roots are priced separately
    by the performance model because ``--use_fast_math`` changes their cost
    (IEEE-compliant sequences vs. fast SFU approximations).
    """

    fma: int = 0
    mul: int = 0
    div: int = 0
    sqrt: int = 0

    def __add__(self, other: "OpMixCounter") -> "OpMixCounter":
        return OpMixCounter(
            self.fma + other.fma,
            self.mul + other.mul,
            self.div + other.div,
            self.sqrt + other.sqrt,
        )

    @property
    def flops(self) -> int:
        """Flops with the 2-per-FMA convention (mul/div/sqrt count one)."""
        return 2 * self.fma + self.mul + self.div + self.sqrt

    @property
    def instructions(self) -> int:
        """Expanded instruction count (each statement is one instruction)."""
        return self.fma + self.mul + self.div + self.sqrt
