"""Error norms for validating batch factorizations and solves."""

from __future__ import annotations

import numpy as np


def max_abs_error(a: np.ndarray, b: np.ndarray) -> float:
    """Largest absolute element-wise difference between two arrays."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))


def factorization_error(a: np.ndarray, l: np.ndarray) -> float:
    """Max over the batch of ``||A - L L^T||_F / ||A||_F``.

    ``a`` and ``l`` are ``(batch, n, n)``; only the lower triangle of ``l``
    is used (the strictly upper part is ignored, matching the paper's
    convention of leaving the other half of the symmetric matrix untouched).
    """
    a = np.asarray(a, dtype=np.float64)
    lt = np.tril(np.asarray(l, dtype=np.float64))
    recon = lt @ lt.transpose(0, 2, 1)
    num = np.linalg.norm(recon - a, axis=(1, 2))
    den = np.linalg.norm(a, axis=(1, 2))
    den = np.where(den == 0.0, 1.0, den)
    return float(np.max(num / den))


def relative_residual(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """Max over the batch of ``||A x - b|| / (||A|| ||x|| + ||b||)``."""
    a = np.asarray(a, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    r = a @ x - b
    num = np.linalg.norm(r, axis=(1, 2))
    den = (
        np.linalg.norm(a, axis=(1, 2)) * np.linalg.norm(x, axis=(1, 2))
        + np.linalg.norm(b, axis=(1, 2))
    )
    den = np.where(den == 0.0, 1.0, den)
    return float(np.max(num / den))
