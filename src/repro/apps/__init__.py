"""Motivating applications (Section I.A).

"Numerous applications deal with large sets of small linear solves that
call for batch processing on GPUs: finite element methods, computational
lithography, and collaborative filtering, to name a few.  The direct
motivation for this work came from the Alternating Least Squares (ALS)
algorithm for recommender systems."

* :mod:`repro.apps.als` — ALS collaborative filtering built on the batch
  Cholesky factorization + solve: every user (and every item) update is
  one small SPD solve, and one ALS half-step is exactly the batch
  workload the paper optimises.
* :mod:`repro.apps.fem` — batches of small SPD element systems from a
  1-D finite-element discretisation, solved independently per element
  (the static-condensation-style workload of the paper's FEM motivation).
"""

from repro.apps.als import ALSRecommender, generate_ratings
from repro.apps.fem import element_stiffness_batch, solve_element_systems
from repro.apps.kalman import (
    BatchKalmanFilter,
    constant_velocity_model,
    simulate_tracks,
)

__all__ = [
    "ALSRecommender",
    "generate_ratings",
    "element_stiffness_batch",
    "solve_element_systems",
    "BatchKalmanFilter",
    "constant_velocity_model",
    "simulate_tracks",
]
