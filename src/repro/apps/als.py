"""Alternating Least Squares collaborative filtering on batch Cholesky.

The paper's direct motivation [10]: factor a sparse ratings matrix
``R ≈ X Y^T`` with rank-``f`` user factors ``X`` and item factors ``Y``.
Each ALS half-step solves, *independently for every user u*,

    (Y_u^T Y_u + lambda * |Omega_u| * I) x_u = Y_u^T r_u

where ``Y_u`` stacks the factors of the items user ``u`` rated — a batch
of tiny (f x f) SPD systems, one per user, which is exactly the workload
the interleaved batch Cholesky accelerates.  The item half-step is
symmetric.

The implementation assembles all normal equations vectorised over the
batch and hands them to :func:`repro.core.factorize.batch_cholesky` +
:func:`repro.core.solve.batch_solve`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import KernelConfig
from repro.core.factorize import batch_cholesky
from repro.core.solve import batch_solve


@dataclass
class RatingsData:
    """Sparse ratings in coordinate form."""

    users: np.ndarray  # (nnz,) int
    items: np.ndarray  # (nnz,) int
    values: np.ndarray  # (nnz,) float
    n_users: int
    n_items: int

    def __post_init__(self) -> None:
        if not (len(self.users) == len(self.items) == len(self.values)):
            raise ValueError("users/items/values must have equal length")
        if len(self.users) == 0:
            raise ValueError("ratings data is empty")
        if self.users.min() < 0 or self.users.max() >= self.n_users:
            raise ValueError("user index out of range")
        if self.items.min() < 0 or self.items.max() >= self.n_items:
            raise ValueError("item index out of range")

    @property
    def nnz(self) -> int:
        return len(self.values)


def generate_ratings(
    n_users: int = 512,
    n_items: int = 256,
    rank: int = 8,
    density: float = 0.05,
    noise: float = 0.1,
    seed: int = 0,
) -> RatingsData:
    """Synthetic low-rank ratings with observation noise.

    Ground truth ``R = U V^T`` from Gaussian factors; a ``density``
    fraction of entries is observed.  Every user and every item is
    guaranteed at least one rating so the ALS normal equations stay
    well posed.
    """
    if not 0 < density <= 1:
        raise ValueError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((n_users, rank)) / np.sqrt(rank)
    v = rng.standard_normal((n_items, rank)) / np.sqrt(rank)
    mask = rng.random((n_users, n_items)) < density
    # Guarantee coverage: one random observation per user and per item.
    mask[np.arange(n_users), rng.integers(0, n_items, n_users)] = True
    mask[rng.integers(0, n_users, n_items), np.arange(n_items)] = True
    users, items = np.nonzero(mask)
    values = np.einsum("ij,ij->i", u[users], v[items])
    values += noise * rng.standard_normal(values.shape)
    return RatingsData(
        users=users, items=items, values=values, n_users=n_users, n_items=n_items
    )


@dataclass
class ALSRecommender:
    """Rank-``f`` matrix factorisation trained with ALS.

    Parameters
    ----------
    rank:
        Latent dimension ``f`` — the matrix size of the batch solves.
    regularization:
        Tikhonov weight ``lambda`` (scaled by each row's rating count,
        the weighted-lambda scheme of Zhou et al. that [10] follows).
    config:
        Kernel configuration for the batch factorization; defaults to a
        top-looking chunked kernel at the given rank.
    """

    rank: int = 8
    regularization: float = 0.1
    iterations: int = 10
    seed: int = 0
    config: KernelConfig | None = None
    #: route the solves through the generated interleaved solve kernels
    #: (the production path) instead of the dense NumPy substitution
    use_generated_solver: bool = False
    user_factors: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    item_factors: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError(f"rank must be >= 1, got {self.rank}")
        if self.regularization <= 0:
            raise ValueError(f"regularization must be positive, got {self.regularization}")
        if self.config is None:
            self.config = KernelConfig(n=self.rank, nb=min(4, self.rank), looking="top")
        elif self.config.n != self.rank:
            raise ValueError(
                f"config.n={self.config.n} does not match rank={self.rank}"
            )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def _normal_equations(
        self, data: RatingsData, side_factors: np.ndarray, rows: np.ndarray,
        cols: np.ndarray, n_rows: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assemble per-row Gram matrices and right-hand sides.

        For the user step, ``rows`` are user ids, ``cols`` item ids and
        ``side_factors`` the item factors (and vice versa for items).
        Assembly is fully vectorised with ``np.add.at`` scatters.
        """
        f = self.rank
        y = side_factors[cols]  # (nnz, f)
        grams = np.zeros((n_rows, f, f), dtype=np.float64)
        rhs = np.zeros((n_rows, f), dtype=np.float64)
        outer = y[:, :, None] * y[:, None, :]  # (nnz, f, f)
        np.add.at(grams, rows, outer)
        np.add.at(rhs, rows, y * data.values[:, None])
        counts = np.bincount(rows, minlength=n_rows).astype(np.float64)
        # Weighted-lambda regularisation keeps every system SPD even for
        # rows with a single observation.
        lam = self.regularization * np.maximum(counts, 1.0)
        grams += lam[:, None, None] * np.eye(f)
        return grams, rhs

    def _half_step(
        self, data: RatingsData, side_factors: np.ndarray, rows: np.ndarray,
        cols: np.ndarray, n_rows: int
    ) -> np.ndarray:
        grams, rhs = self._normal_equations(data, side_factors, rows, cols, n_rows)
        factors = batch_cholesky(grams.astype(np.float32), self.config)
        if self.use_generated_solver:
            from repro.core.solve_kernels import batch_solve_kernel

            solution = batch_solve_kernel(factors, rhs.astype(np.float32), self.config)
        else:
            solution = batch_solve(factors, rhs.astype(np.float32))
        return np.asarray(solution, dtype=np.float64)

    def fit(self, data: RatingsData) -> "ALSRecommender":
        """Run ALS for the configured number of iterations."""
        rng = np.random.default_rng(self.seed)
        f = self.rank
        self.user_factors = rng.standard_normal((data.n_users, f)) / np.sqrt(f)
        self.item_factors = rng.standard_normal((data.n_items, f)) / np.sqrt(f)
        for _ in range(self.iterations):
            self.user_factors = self._half_step(
                data, self.item_factors, data.users, data.items, data.n_users
            )
            self.item_factors = self._half_step(
                data, self.user_factors, data.items, data.users, data.n_items
            )
        return self

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def predict(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Predicted rating for each (user, item) pair."""
        if self.user_factors is None:
            raise RuntimeError("model is not fitted")
        return np.einsum(
            "ij,ij->i", self.user_factors[users], self.item_factors[items]
        )

    def rmse(self, data: RatingsData) -> float:
        """Root-mean-square error on the observed ratings."""
        pred = self.predict(data.users, data.items)
        return float(np.sqrt(np.mean((pred - data.values) ** 2)))

    # ------------------------------------------------------------------
    # Serving-layer workload export
    # ------------------------------------------------------------------

    def solve_trace(
        self,
        data: RatingsData,
        burst_rate_hz: float = 50000.0,
        assembly_gap_s: float = 0.005,
        seed: int = 0,
    ) -> list:
        """The solve stream :meth:`fit` generates, as recorded trace events.

        Each ALS half-step solves one rank-``f`` SPD system per user (or
        item); pushed through the serving layer that is a burst of
        ``n_users`` (then ``n_items``) solve arrivals at ``burst_rate_hz``,
        separated by the ``assembly_gap_s`` think time of assembling the
        next half-step's normal equations.  Only the arrival *structure*
        is exported — the trace format never stores dense payloads, so
        replays regenerate synthetic SPD systems of the same rank from
        per-event seeds (:mod:`repro.serve.trace`).
        """
        from repro.serve.trace import RecordedEvent, derive_seed

        if burst_rate_hz <= 0:
            raise ValueError(f"burst_rate_hz must be positive, got {burst_rate_hz}")
        if assembly_gap_s < 0:
            raise ValueError(
                f"assembly_gap_s must be >= 0, got {assembly_gap_s}"
            )
        events: list[RecordedEvent] = []
        t = 0.0
        for _ in range(self.iterations):
            for rows in (data.n_users, data.n_items):
                for _ in range(rows):
                    events.append(
                        RecordedEvent(
                            at=round(t, 6),
                            op="solve",
                            n=self.rank,
                            nrhs=1,
                            seed=derive_seed(seed, len(events)),
                        )
                    )
                    t += 1.0 / burst_rate_hz
                t += assembly_gap_s
        return events

    def solve_graph_trace(
        self,
        data: RatingsData,
        burst_rate_hz: float = 50000.0,
        assembly_gap_s: float = 0.005,
        seed: int = 0,
        graph: int = 0,
        start_at: float = 0.0,
    ) -> list:
        """:meth:`solve_trace` with its true dependency structure attached.

        ALS half-steps form a barrier DAG: every solve of one half-step
        depends on the *whole* previous half-step (the item factors it
        reads were just rewritten), while solves within a half-step are
        independent.  Each event carries the ``graph`` id plus ``deps``
        naming every event of the previous half-step by per-graph
        position (``repro.trace/v2``), so a graph-aware replay can
        release each half-step as one wave — and coalesce it with other
        jobs' waves — instead of await-chaining ``n_users`` solves.
        ``start_at`` offsets the arrival clock so several jobs' traces
        can be merged into one multi-tenant workload.
        """
        from repro.serve.trace import RecordedEvent, derive_seed

        if burst_rate_hz <= 0:
            raise ValueError(f"burst_rate_hz must be positive, got {burst_rate_hz}")
        if assembly_gap_s < 0:
            raise ValueError(
                f"assembly_gap_s must be >= 0, got {assembly_gap_s}"
            )
        events: list[RecordedEvent] = []
        t = start_at
        previous: tuple[int, ...] = ()
        for _ in range(self.iterations):
            for rows in (data.n_users, data.n_items):
                current = []
                for _ in range(rows):
                    current.append(len(events))
                    events.append(
                        RecordedEvent(
                            at=round(t, 6),
                            op="solve",
                            n=self.rank,
                            nrhs=1,
                            seed=derive_seed(seed, len(events)),
                            graph=graph,
                            deps=previous,
                        )
                    )
                    t += 1.0 / burst_rate_hz
                t += assembly_gap_s
                previous = tuple(current)
        return events
