"""Finite-element flavoured batch workload (Section I.A).

A large set of independent small SPD systems arises in FEM practice from
per-element operations: static condensation, local post-processing,
patch recovery, discontinuous-Galerkin element solves.  This module
builds such a batch from a classic model problem — 1-D Poisson with
variable coefficient, ``p``-th order Lagrange elements on per-element
Gauss quadrature — and solves all element systems through the batch
Cholesky path.

The element matrices are genuine FEM stiffness+mass matrices (assembled
from shape-function derivatives at quadrature points), so conditioning
and sparsity patterns are realistic for the n <= 64 regime the paper
targets.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import KernelConfig
from repro.core.factorize import batch_cholesky
from repro.core.solve import batch_solve


def _lagrange_basis(nodes: np.ndarray, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Values and derivatives of the Lagrange basis at ``points``.

    Returns ``(phi, dphi)`` with shape ``(len(points), len(nodes))``.
    """
    n = len(nodes)
    phi = np.ones((len(points), n))
    dphi = np.zeros((len(points), n))
    for j in range(n):
        others = [k for k in range(n) if k != j]
        denom = np.prod([nodes[j] - nodes[k] for k in others])
        for p, xq in enumerate(points):
            phi[p, j] = np.prod([xq - nodes[k] for k in others]) / denom
            dsum = 0.0
            for skip in others:
                term = 1.0
                for k in others:
                    if k != skip:
                        term *= xq - nodes[k]
                dsum += term
            dphi[p, j] = dsum / denom
    return phi, dphi


def element_stiffness_batch(
    n_elements: int,
    order: int = 3,
    mass_weight: float = 1.0,
    seed: int = 0,
    dtype=np.float32,
) -> tuple[np.ndarray, np.ndarray]:
    """Batch of element matrices and load vectors for 1-D Poisson.

    Each element gets an independent random positive diffusion
    coefficient and source, producing ``K_e + c M_e`` matrices of size
    ``order + 1`` — SPD by construction (stiffness is PSD, the mass term
    makes it definite).

    Returns ``(matrices, rhs)`` with shapes ``(n_elements, p+1, p+1)``
    and ``(n_elements, p+1)``.
    """
    if n_elements < 1:
        raise ValueError(f"n_elements must be >= 1, got {n_elements}")
    if order < 1:
        raise ValueError(f"element order must be >= 1, got {order}")
    if mass_weight <= 0:
        raise ValueError(f"mass_weight must be positive, got {mass_weight}")
    rng = np.random.default_rng(seed)
    p = order
    nodes = np.linspace(-1.0, 1.0, p + 1)
    # Gauss-Legendre quadrature exact for the 2p-degree integrands.
    qp, qw = np.polynomial.legendre.leggauss(p + 1)
    phi, dphi = _lagrange_basis(nodes, qp)

    # Per-element diffusion kappa(e) > 0 and element length h(e).
    kappa = 0.5 + rng.random(n_elements) * 2.0
    h = 0.5 + rng.random(n_elements)
    source = rng.standard_normal((n_elements, len(qp)))

    # K_e[i,j] = kappa * (2/h) * sum_q w_q dphi_qi dphi_qj
    stiff_ref = np.einsum("q,qi,qj->ij", qw, dphi, dphi)
    mass_ref = np.einsum("q,qi,qj->ij", qw, phi, phi)
    k = kappa[:, None, None] * (2.0 / h)[:, None, None] * stiff_ref
    m = (h / 2.0)[:, None, None] * mass_ref
    a = k + mass_weight * m
    a = (a + a.transpose(0, 2, 1)) / 2.0

    # f_e[i] = (h/2) * sum_q w_q f(x_q) phi_qi
    rhs = (h / 2.0)[:, None] * np.einsum("q,eq,qi->ei", qw, source, phi)
    return a.astype(dtype), rhs.astype(dtype)


def solve_element_systems(
    matrices: np.ndarray,
    rhs: np.ndarray,
    config: KernelConfig | None = None,
) -> np.ndarray:
    """Solve every element system with the batch Cholesky pipeline."""
    matrices = np.asarray(matrices)
    rhs = np.asarray(rhs)
    if matrices.ndim != 3 or matrices.shape[1] != matrices.shape[2]:
        raise ValueError(f"expected (batch, n, n) matrices, got {matrices.shape}")
    n = matrices.shape[1]
    if config is None:
        config = KernelConfig(n=n, nb=min(4, n), looking="top")
    factors = batch_cholesky(matrices, config)
    return batch_solve(factors, rhs)
