"""Batched Kalman filters — thousands of small SPD solves per time step.

A fleet of independent Kalman filters (one per tracked object) is a
classic batch-small-matrix workload: every update step solves one tiny
SPD system per track — the innovation covariance ``S = H P H^T + R`` —
to form the gain ``K = P H^T S^{-1}``.  With thousands of simultaneous
tracks this is exactly the shape the paper's kernels accelerate, and the
solve path here runs through the batch Cholesky + substitution pipeline.

The implementation is a standard linear Kalman filter, fully vectorised
over the track dimension, with a constant-velocity demo model supplied
for the tests and the example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import KernelConfig
from repro.core.factorize import batch_cholesky
from repro.core.solve import batch_solve


@dataclass
class BatchKalmanFilter:
    """Independent linear Kalman filters sharing one model, batched.

    Parameters
    ----------
    f:
        State transition, ``(sdim, sdim)``.
    h:
        Measurement matrix, ``(mdim, sdim)``.
    q, r:
        Process and measurement noise covariances.
    config:
        Kernel configuration for the innovation solves; dimension must be
        ``mdim``.
    """

    f: np.ndarray
    h: np.ndarray
    q: np.ndarray
    r: np.ndarray
    config: KernelConfig | None = None

    def __post_init__(self) -> None:
        self.f = np.asarray(self.f, dtype=np.float64)
        self.h = np.asarray(self.h, dtype=np.float64)
        self.q = np.asarray(self.q, dtype=np.float64)
        self.r = np.asarray(self.r, dtype=np.float64)
        sdim = self.f.shape[0]
        mdim = self.h.shape[0]
        if self.f.shape != (sdim, sdim):
            raise ValueError(f"F must be square, got {self.f.shape}")
        if self.h.shape != (mdim, sdim):
            raise ValueError(f"H must be (mdim, sdim), got {self.h.shape}")
        if self.q.shape != (sdim, sdim):
            raise ValueError(f"Q must match the state dimension, got {self.q.shape}")
        if self.r.shape != (mdim, mdim):
            raise ValueError(f"R must match the measurement dimension, got {self.r.shape}")
        if self.config is None:
            self.config = KernelConfig(n=mdim, nb=min(4, mdim), looking="top")
        elif self.config.n != mdim:
            raise ValueError(
                f"config.n={self.config.n} must equal the measurement dim {mdim}"
            )

    @property
    def state_dim(self) -> int:
        return self.f.shape[0]

    @property
    def measurement_dim(self) -> int:
        return self.h.shape[0]

    # ------------------------------------------------------------------
    # Filter steps (vectorised over tracks)
    # ------------------------------------------------------------------

    def predict(
        self, x: np.ndarray, p: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Time update: ``x <- F x``, ``P <- F P F^T + Q``."""
        x = np.asarray(x, dtype=np.float64)
        p = np.asarray(p, dtype=np.float64)
        x_new = x @ self.f.T
        p_new = self.f @ p @ self.f.T + self.q
        return x_new, (p_new + p_new.transpose(0, 2, 1)) / 2.0

    def update(
        self, x: np.ndarray, p: np.ndarray, z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Measurement update via batch Cholesky on the innovation covariance.

        Solves ``S K^T = (P H^T)^T`` with ``S = H P H^T + R`` per track —
        a batch of ``mdim``-sized SPD systems — then applies the Joseph-
        form covariance update for numerical symmetry.
        """
        x = np.asarray(x, dtype=np.float64)
        p = np.asarray(p, dtype=np.float64)
        z = np.asarray(z, dtype=np.float64)
        batch = x.shape[0]
        if z.shape != (batch, self.measurement_dim):
            raise ValueError(
                f"measurements must be (batch, {self.measurement_dim}), got {z.shape}"
            )

        pht = p @ self.h.T  # (batch, sdim, mdim)
        s = self.h @ p @ self.h.T + self.r  # (batch, mdim, mdim)
        s = (s + s.transpose(0, 2, 1)) / 2.0

        # K = P H^T S^{-1}  <=>  S K^T = (P H^T)^T, batched SPD solve.
        factors = batch_cholesky(s.astype(np.float32), self.config)
        kt = batch_solve(factors, pht.transpose(0, 2, 1).astype(np.float32))
        k = np.asarray(kt, dtype=np.float64).transpose(0, 2, 1)

        innovation = z - x @ self.h.T
        x_new = x + np.einsum("bsm,bm->bs", k, innovation)
        ikh = np.eye(self.state_dim) - k @ self.h
        p_new = ikh @ p @ ikh.transpose(0, 2, 1) + k @ self.r @ k.transpose(0, 2, 1)
        return x_new, (p_new + p_new.transpose(0, 2, 1)) / 2.0

    def step(
        self, x: np.ndarray, p: np.ndarray, z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One predict + update cycle."""
        x, p = self.predict(x, p)
        return self.update(x, p, z)


def constant_velocity_model(
    dim: int = 2, dt: float = 1.0, process_noise: float = 0.05,
    measurement_noise: float = 0.5,
) -> BatchKalmanFilter:
    """Constant-velocity tracker: state (pos, vel) per axis, position
    measurements — measurement dimension = ``dim``."""
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    f1 = np.array([[1.0, dt], [0.0, 1.0]])
    q1 = process_noise * np.array(
        [[dt**3 / 3, dt**2 / 2], [dt**2 / 2, dt]]
    )
    f = np.kron(np.eye(dim), f1)
    q = np.kron(np.eye(dim), q1)
    h = np.zeros((dim, 2 * dim))
    h[np.arange(dim), np.arange(dim) * 2] = 1.0
    r = measurement_noise**2 * np.eye(dim)
    return BatchKalmanFilter(f=f, h=h, q=q, r=r)


def simulate_tracks(
    model: BatchKalmanFilter,
    n_tracks: int,
    n_steps: int,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Ground-truth states and noisy measurements for a filter fleet.

    Returns ``(states, measurements)`` of shapes
    ``(n_steps, n_tracks, sdim)`` and ``(n_steps, n_tracks, mdim)``.
    """
    if n_tracks < 1 or n_steps < 1:
        raise ValueError("n_tracks and n_steps must be >= 1")
    rng = np.random.default_rng(seed)
    sdim, mdim = model.state_dim, model.measurement_dim
    chol_q = np.linalg.cholesky(model.q + 1e-12 * np.eye(sdim))
    chol_r = np.linalg.cholesky(model.r)
    x = rng.standard_normal((n_tracks, sdim)) * 5.0
    states = np.empty((n_steps, n_tracks, sdim))
    meas = np.empty((n_steps, n_tracks, mdim))
    for t in range(n_steps):
        x = x @ model.f.T + rng.standard_normal((n_tracks, sdim)) @ chol_q.T
        states[t] = x
        meas[t] = x @ model.h.T + rng.standard_normal((n_tracks, mdim)) @ chol_r.T
    return states, meas
