"""Tuned dispatch: turning sweep results into a production entry point.

An autotuning paper's deliverable, in practice, is a dispatch table: for
each problem shape, the configuration the sweep crowned.  This module
packages that step — build (or load) a table of winners per matrix size,
interpolate for sizes the sweep never measured, and expose a
``batch_cholesky``-shaped call that routes through the winner.

The table persists as JSON so a deployment tunes once per machine and
ships the table, exactly how MAGMA/ATLAS-style tuning results are used.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.autotune.dataset import SweepDataset
from repro.autotune.runner import evaluate_config
from repro.autotune.space import ParameterSpace
from repro.autotune.sweep import run_sweep
from repro.core.config import KernelConfig
from repro.core.factorize import batch_cholesky

#: On-disk table format version.  Bump when TableEntry's fields change.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TableEntry:
    """The tuned parameters for one matrix size."""

    n: int
    nb: int
    looking: str
    chunked: bool
    chunk_size: int
    unroll: str
    gflops: float  # modelled performance at tuning time

    def config(self, fast_math: bool = False) -> KernelConfig:
        return KernelConfig(
            n=self.n,
            nb=self.nb,
            looking=self.looking,
            chunked=self.chunked,
            chunk_size=self.chunk_size if self.chunked else 32,
            unroll=self.unroll,
            fast_math=fast_math,
        )


class TunedDispatcher:
    """Routes batch factorizations through sweep-tuned configurations."""

    def __init__(self, entries: dict[int, TableEntry]) -> None:
        if not entries:
            raise ValueError("dispatch table is empty")
        self.entries = dict(sorted(entries.items()))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_dataset(cls, dataset: SweepDataset) -> "TunedDispatcher":
        """Build the table from a sweep's per-size winners."""
        entries = {}
        for n, rec in dataset.best_per_n().items():
            entries[n] = TableEntry(
                n=n,
                nb=rec.nb,
                looking=rec.looking,
                chunked=rec.chunked,
                chunk_size=rec.chunk_size if rec.chunked else 32,
                unroll=rec.unroll,
                gflops=rec.gflops,
            )
        return cls(entries)

    @classmethod
    def tune(
        cls,
        ns,
        batch: int = 16384,
        nbs=tuple(range(1, 10)),
        chunkings=(None, 32, 64, 128, 256, 512),
    ) -> "TunedDispatcher":
        """Run a fresh sweep over ``ns`` and build the table from it."""
        space = ParameterSpace(
            ns=tuple(ns), nbs=tuple(nbs), chunkings=tuple(chunkings),
            cache_prefs=("l1",),
        )
        return cls.from_dataset(run_sweep(space, batch=batch))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def config_for(self, n: int, fast_math: bool = False) -> KernelConfig:
        """The tuned configuration for dimension ``n``.

        Exact entries are used directly; unmeasured sizes borrow the
        nearest measured size's parameters (tile size clipped), which is
        the standard interpolation for dispatch tables whose parameters
        vary slowly with the problem size.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        entry = self.entries.get(n)
        if entry is None:
            nearest = min(self.entries, key=lambda m: (abs(m - n), m))
            entry = self.entries[nearest]
        cfg = entry.config(fast_math=fast_math)
        if cfg.n != n:
            cfg = cfg.with_(n=n, nb=min(cfg.nb, n))
        return cfg

    def batch_cholesky(self, a: np.ndarray, fast_math: bool = False) -> np.ndarray:
        """Factorize a dense batch through the tuned configuration."""
        a = np.asarray(a)
        if a.ndim != 3 or a.shape[1] != a.shape[2]:
            raise ValueError(f"expected a (batch, n, n) array, got {a.shape}")
        return batch_cholesky(a, self.config_for(a.shape[1], fast_math=fast_math))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the table atomically (temp file + rename).

        A reader — e.g. a serving process reloading its table — never
        sees a half-written file: it observes either the old table or the
        new one.
        """
        path = Path(path)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "entries": [entry.__dict__ for entry in self.entries.values()],
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(json.dumps(payload, indent=1))
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: str | Path) -> "TunedDispatcher":
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict) or "schema_version" not in data:
            raise ValueError(
                f"{path}: not a versioned dispatch table (expected an object "
                f"with a 'schema_version' field; pre-versioning tables must "
                f"be re-tuned and re-saved)"
            )
        version = data["schema_version"]
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"{path}: dispatch table schema version {version!r} is not "
                f"supported (this build reads version {SCHEMA_VERSION})"
            )
        try:
            return cls({row["n"]: TableEntry(**row) for row in data["entries"]})
        except (KeyError, TypeError) as exc:
            raise ValueError(f"{path}: malformed dispatch table entry: {exc}") from exc

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> str:
        from repro.utils.tables import format_table

        rows = [
            [e.n, e.nb, e.looking, e.unroll,
             e.chunk_size if e.chunked else "-", round(e.gflops, 1)]
            for e in self.entries.values()
        ]
        return format_table(["n", "nb", "looking", "unroll", "chunk", "gflops"], rows)

    def speedup_over_default(self, n: int, batch: int = 16384) -> float:
        """Modelled gain of the tuned config over the library default."""
        tuned = evaluate_config(self.config_for(n), batch=batch)
        default = evaluate_config(KernelConfig(n=n), batch=batch)
        if not (tuned.ok and default.ok):
            raise RuntimeError("evaluation failed while computing speedup")
        return tuned.gflops / default.gflops
