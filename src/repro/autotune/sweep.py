"""Exhaustive autotuning sweeps.

"We performed an exhaustive search of the autotuning space of code
parameters.  [...] our goal is not the minimal search time but rather
meaningful exploration of the parameter configurations" (Section IV).
A guided search "represents a form of selection bias"; the exhaustive
dataset is what enables the postmortem analysis of Table I / Figure 21.
"""

from __future__ import annotations

from typing import Callable

from repro.autotune.dataset import SweepDataset
from repro.autotune.runner import evaluate_config
from repro.autotune.space import ParameterSpace
from repro.gpusim.arch import GPUArchitecture, P100
from repro.obs.tracer import get_tracer


def run_sweep(
    space: ParameterSpace,
    batch: int = 16384,
    arch: GPUArchitecture = P100,
    validate: bool = False,
    progress: Callable[[int, int], None] | None = None,
    limit: int | None = None,
) -> SweepDataset:
    """Evaluate every configuration of ``space``.

    Parameters
    ----------
    validate:
        Also run each generated kernel numerically against LAPACK on a
        small batch.  Exhaustive validation is slow; sweeps used for
        performance figures rely on the test suite's coverage instead.
    progress:
        Optional ``callback(done, total)`` for long sweeps.
    limit:
        Stop after this many configurations (for sampled runs).
    """
    dataset = SweepDataset()
    total = space.size()
    if limit is not None:
        total = min(limit, total)
    tracer = get_tracer()
    with tracer.span(
        "sweep", cat="autotune", track="autotune", configs=total, batch=batch
    ):
        for i, config in enumerate(space.configs()):
            if limit is not None and i >= limit:
                break
            t0 = tracer.now() if tracer.enabled else 0.0
            record = evaluate_config(
                config, batch=batch, arch=arch, validate=validate
            )
            if tracer.enabled:
                tracer.record(
                    "evaluate",
                    t0,
                    tracer.now(),
                    cat="autotune",
                    track="autotune",
                    n=config.n,
                    nb=config.nb,
                    gflops=record.gflops,
                )
            dataset.append(record)
            if progress:
                progress(i + 1, total)
    return dataset
