"""The autotuning dataset: sweep records, persistence, and queries.

Section IV calls its sweep output "a data-rich view of the performance
landscape [that] allows a postmortem analysis".  :class:`SweepDataset`
is that object: an ordered collection of :class:`SweepRecord` rows with
CSV/JSON persistence, filtering, best-per-size queries, and the
feature-matrix encoding the random-forest analysis consumes.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.autotune.runner import SweepRecord

#: Feature columns used for the Table I / Figure 21 analysis, in the order
#: of the paper's Table I.
FEATURE_NAMES = (
    "n",
    "nb",
    "looking",
    "chunked",
    "chunk_size",
    "unroll",
    "cache_pref",
)

_LOOKING_CODES = {"left": 0, "right": 1, "top": 2}
_UNROLL_CODES = {"partial": 0, "full": 1}
_CACHE_CODES = {"l1": 0, "shared": 1}


class SweepDataset:
    """An ordered, queryable collection of sweep records."""

    def __init__(self, records: Iterable[SweepRecord] = ()) -> None:
        self.records: list[SweepRecord] = list(records)

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[SweepRecord]:
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    def append(self, record: SweepRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[SweepRecord]) -> None:
        self.records.extend(records)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def successful(self) -> "SweepDataset":
        """Only the rows whose evaluation succeeded."""
        return SweepDataset(r for r in self.records if r.ok)

    def failed(self) -> "SweepDataset":
        return SweepDataset(r for r in self.records if not r.ok)

    def filter(self, predicate: Callable[[SweepRecord], bool]) -> "SweepDataset":
        return SweepDataset(r for r in self.records if predicate(r))

    def sizes(self) -> list[int]:
        """Sorted distinct matrix sizes present."""
        return sorted({r.n for r in self.records})

    def best_per_n(
        self, predicate: Callable[[SweepRecord], bool] | None = None
    ) -> dict[int, SweepRecord]:
        """The fastest successful record for each matrix size.

        ``predicate`` restricts candidates — e.g. only chunked, only a
        given tile size — which is exactly how the paper's "best
        performance ... for different X" figures are built.
        """
        best: dict[int, SweepRecord] = {}
        for r in self.records:
            if not r.ok:
                continue
            if predicate is not None and not predicate(r):
                continue
            cur = best.get(r.n)
            if cur is None or r.gflops > cur.gflops:
                best[r.n] = r
        return best

    def best_series(
        self, predicate: Callable[[SweepRecord], bool] | None = None
    ) -> dict[int, float]:
        """``{n: best gflops}`` under an optional predicate."""
        return {n: rec.gflops for n, rec in sorted(self.best_per_n(predicate).items())}

    # ------------------------------------------------------------------
    # ML encoding
    # ------------------------------------------------------------------

    def feature_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """(X, y) over successful rows for the Section IV analysis.

        Mixed discrete/categorical variables are integer-coded (the paper
        notes "encoding of the categories may adversely influence the
        classification outcome"; trees are invariant to monotone coding of
        binaries, and the looking ternary uses a fixed arbitrary order).
        """
        rows = [r for r in self.records if r.ok]
        if not rows:
            raise ValueError("dataset has no successful records to encode")
        x = np.empty((len(rows), len(FEATURE_NAMES)), dtype=np.float64)
        y = np.empty(len(rows), dtype=np.float64)
        for i, r in enumerate(rows):
            # Non-chunked rows have no chunk size; they are encoded at the
            # baseline value (32) so the chunk_size column only carries
            # within-chunked variation and the layout signal stays
            # attributed to the `chunked` binary.
            chunk_size = r.chunk_size if r.chunked else 32
            x[i] = (
                r.n,
                r.nb,
                _LOOKING_CODES[r.looking],
                1.0 if r.chunked else 0.0,
                chunk_size,
                _UNROLL_CODES[r.unroll],
                _CACHE_CODES[r.cache_pref],
            )
            y[i] = r.gflops
        return x, y

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save_csv(self, path: str | Path) -> None:
        path = Path(path)
        fields = list(SweepRecord.__dataclass_fields__)
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=fields)
            writer.writeheader()
            for r in self.records:
                writer.writerow(r.as_dict())

    @classmethod
    def load_csv(cls, path: str | Path) -> "SweepDataset":
        path = Path(path)
        records = []
        with path.open(newline="") as fh:
            for row in csv.DictReader(fh):
                records.append(
                    SweepRecord(
                        n=int(row["n"]),
                        nb=int(row["nb"]),
                        looking=row["looking"],
                        chunked=row["chunked"] == "True",
                        chunk_size=int(row["chunk_size"]),
                        unroll=row["unroll"],
                        fast_math=row["fast_math"] == "True",
                        cache_pref=row["cache_pref"],
                        batch=int(row["batch"]),
                        ok=row["ok"] == "True",
                        gflops=float(row["gflops"]),
                        seconds=float(row["seconds"]),
                        bound=row["bound"],
                        error=row["error"],
                    )
                )
        return cls(records)

    def save_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps([r.as_dict() for r in self.records], indent=1))

    @classmethod
    def load_json(cls, path: str | Path) -> "SweepDataset":
        rows = json.loads(Path(path).read_text())
        return cls(SweepRecord(**row) for row in rows)
