"""Evaluation of a single autotuning configuration.

One evaluation = generate the kernel for the configuration, optionally
validate it numerically against LAPACK on a small batch, and price it
with the GPU performance model.  Failures are recorded, not raised: the
paper's sweep also counts only "successful runs" — kernels whose code
explodes beyond what the compiler finishes are real failures there too.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.core.config import KernelConfig
from repro.core.trace import build_trace
from repro.gpusim.arch import GPUArchitecture, P100
from repro.gpusim.model import estimate_performance
from repro.utils.errors import factorization_error
from repro.utils.spd import random_spd_batch

#: Fully unrolled kernels beyond this many statements are recorded as
#: failed compilations (the real toolchain gives up or times out on such
#: translation units; this also keeps exhaustive sweeps tractable).
MAX_STATEMENTS = 120_000

#: Validation tolerance: single-precision factorization of a
#: well-conditioned SPD matrix should reconstruct to ~1e-5 relative error;
#: the bound leaves headroom for size growth.
VALIDATE_RTOL = 5e-4


def estimated_statements(config: KernelConfig) -> int:
    """Cheap upper-bound statement estimate, used to skip monster kernels
    before paying for trace generation.

    Fully unrolled code has one statement per scalar operation and per
    element moved: ~``n^3/6`` compute plus ~``n^3/(2 nb)`` memory.
    Partially unrolled code is bounded by a few unrolled tile bodies.
    """
    n, nb = config.n, config.effective_nb
    if config.unroll.value == "partial":
        return 8 * nb * nb * max(1, n // nb) + 4 * n * n // max(1, nb)
    return n**3 // 6 + n**3 // (2 * nb) + 3 * n * n


@dataclass(frozen=True)
class SweepRecord:
    """One row of the autotuning dataset."""

    n: int
    nb: int
    looking: str
    chunked: bool
    chunk_size: int
    unroll: str
    fast_math: bool
    cache_pref: str
    batch: int
    ok: bool
    gflops: float = 0.0
    seconds: float = 0.0
    bound: str = ""
    error: str = ""

    @classmethod
    def from_config(cls, config: KernelConfig, batch: int, **kwargs) -> "SweepRecord":
        return cls(
            n=config.n,
            nb=config.effective_nb,
            looking=config.looking.value,
            chunked=config.chunked,
            chunk_size=config.chunk_size if config.chunked else 0,
            unroll=config.unroll.value,
            fast_math=config.fast_math,
            cache_pref=config.cache_pref.value,
            batch=batch,
            **kwargs,
        )

    def config(self) -> KernelConfig:
        """Reconstruct the configuration this record describes."""
        return KernelConfig(
            n=self.n,
            nb=self.nb,
            looking=self.looking,
            chunked=self.chunked,
            chunk_size=self.chunk_size if self.chunked else 32,
            unroll=self.unroll,
            fast_math=self.fast_math,
            cache_pref=self.cache_pref,
        )

    def as_dict(self) -> dict:
        return asdict(self)


def evaluate_config(
    config: KernelConfig,
    batch: int = 16384,
    arch: GPUArchitecture = P100,
    validate: bool = False,
    validate_batch: int = 64,
    seed: int = 1234,
) -> SweepRecord:
    """Evaluate one configuration; never raises for per-config failures."""
    try:
        # The estimate is an upper bound; only skip trace generation when
        # it is clearly beyond the limit, and let the exact count decide
        # near the boundary.
        estimate = estimated_statements(config)
        if estimate > 1.3 * MAX_STATEMENTS:
            return SweepRecord.from_config(
                config,
                batch,
                ok=False,
                error=f"compilation aborted: ~{estimate} statements",
            )
        trace = build_trace(config)
        if trace.static_statements > MAX_STATEMENTS:
            return SweepRecord.from_config(
                config,
                batch,
                ok=False,
                error=f"compilation aborted: {trace.static_statements} statements",
            )
        if validate:
            a = random_spd_batch(validate_batch, config.n, seed=seed)
            from repro.core.factorize import batch_cholesky

            l = batch_cholesky(a, config)
            err = factorization_error(a, l)
            if err > VALIDATE_RTOL:
                return SweepRecord.from_config(
                    config, batch, ok=False, error=f"validation failed: err={err:.2e}"
                )
        est = estimate_performance(config, batch=batch, arch=arch)
    except Exception as exc:  # pragma: no cover - defensive per-config guard
        return SweepRecord.from_config(config, batch, ok=False, error=str(exc))
    return SweepRecord.from_config(
        config,
        batch,
        ok=True,
        gflops=est.gflops,
        seconds=est.seconds,
        bound=est.bound,
    )
