"""The autotuning parameter space.

The paper sweeps five kernel parameters (Section II.D) for every matrix
dimension, plus the arithmetic mode and the L1/shared-memory carve-out
that appear in Table I's analysis.  The exhaustive product below, with
duplicate and invalid points removed, is the analogue of the paper's
"complete autotuning sweep of the parameter space [with] over 14,000
performance measurements of successful runs".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.config import CachePreference, KernelConfig, Looking, Unrolling
from repro.layouts.chunked import SUPPORTED_CHUNK_SIZES


@dataclass(frozen=True)
class ParameterSpace:
    """A rectangular region of the tuning space."""

    ns: tuple[int, ...]
    nbs: tuple[int, ...] = tuple(range(1, 10))
    lookings: tuple[str, ...] = ("right", "left", "top")
    #: chunk sizes to sweep; ``None`` entries mean the non-chunked layout
    chunkings: tuple[int | None, ...] = (None,) + tuple(SUPPORTED_CHUNK_SIZES)
    unrolls: tuple[str, ...] = ("partial", "full")
    fast_maths: tuple[bool, ...] = (False,)
    cache_prefs: tuple[str, ...] = ("l1", "shared")

    def __post_init__(self) -> None:
        if not self.ns:
            raise ValueError("parameter space needs at least one matrix size")
        for n in self.ns:
            if n <= 0:
                raise ValueError(f"matrix sizes must be positive, got {n}")
        for nb in self.nbs:
            if nb <= 0:
                raise ValueError(f"tile sizes must be positive, got {nb}")

    def configs(self) -> Iterator[KernelConfig]:
        """Enumerate unique, valid configurations.

        Tile sizes larger than ``n`` collapse onto ``nb = n`` and are
        emitted once; this mirrors the paper's per-size compilation, where
        such duplicates would be identical binaries.
        """
        for n in self.ns:
            seen_nb: set[int] = set()
            for nb in self.nbs:
                eff = min(nb, n)
                if eff in seen_nb:
                    continue
                seen_nb.add(eff)
                for looking in self.lookings:
                    for unroll in self.unrolls:
                        for chunk in self.chunkings:
                            for fast in self.fast_maths:
                                for cache in self.cache_prefs:
                                    yield KernelConfig(
                                        n=n,
                                        nb=eff,
                                        looking=Looking(looking),
                                        chunked=chunk is not None,
                                        chunk_size=chunk or SUPPORTED_CHUNK_SIZES[0],
                                        unroll=Unrolling(unroll),
                                        fast_math=fast,
                                        cache_pref=CachePreference(cache),
                                    )

    def size(self) -> int:
        """Number of configurations :meth:`configs` yields."""
        return sum(1 for _ in self.configs())

    def with_ns(self, ns: Sequence[int]) -> "ParameterSpace":
        """The same space restricted to other matrix sizes."""
        return ParameterSpace(
            ns=tuple(ns),
            nbs=self.nbs,
            lookings=self.lookings,
            chunkings=self.chunkings,
            unrolls=self.unrolls,
            fast_maths=self.fast_maths,
            cache_prefs=self.cache_prefs,
        )


def default_space(max_n: int = 64, step: int = 2) -> ParameterSpace:
    """The paper-scale space: every even size up to 64, full product.

    Yields roughly 19k configurations of which ~14-15k succeed (oversized
    fully unrolled kernels fail, matching the paper's "successful runs"
    phrasing).
    """
    return ParameterSpace(ns=tuple(range(2, max_n + 1, step)))


def quick_space(ns: Sequence[int] = (4, 8, 16, 24, 32)) -> ParameterSpace:
    """A small space for tests and examples (hundreds of points)."""
    return ParameterSpace(
        ns=tuple(ns),
        nbs=(1, 2, 4, 8),
        chunkings=(None, 32, 128),
        cache_prefs=("l1",),
    )
