"""Autotuning framework (Sections II.D and IV of the paper).

* :mod:`repro.autotune.space` — the tunable-parameter space: tile size,
  looking, chunking, chunk size, unrolling, plus arithmetic mode and the
  L1/shared carve-out.
* :mod:`repro.autotune.runner` — evaluate one configuration: generate the
  kernel, optionally validate it numerically against LAPACK, and price it
  with the GPU model.
* :mod:`repro.autotune.sweep` — the exhaustive sweep ("our goal is not the
  minimal search time but rather meaningful exploration of the parameter
  configurations"), producing the dataset Section IV analyses.
* :mod:`repro.autotune.dataset` — sweep records with CSV/JSON persistence
  and best-per-n queries.
* :mod:`repro.autotune.analysis` — Table I (per-parameter predictive
  power via random-forest permutation importance) and the Figure 21
  predicted-vs-observed study.
* :mod:`repro.autotune.search` — the "workable heuristics" counterpoint:
  random search and greedy coordinate descent, to quantify how much of
  the exhaustive sweep's optimum a guided search recovers.
"""

from repro.autotune.space import ParameterSpace, default_space, quick_space
from repro.autotune.runner import SweepRecord, evaluate_config
from repro.autotune.sweep import run_sweep
from repro.autotune.dataset import SweepDataset
from repro.autotune.analysis import parameter_importance, forest_fit_quality
from repro.autotune.search import random_search, coordinate_descent, exhaustive_best
from repro.autotune.dispatch import TableEntry, TunedDispatcher

__all__ = [
    "ParameterSpace",
    "default_space",
    "quick_space",
    "SweepRecord",
    "evaluate_config",
    "run_sweep",
    "SweepDataset",
    "parameter_importance",
    "forest_fit_quality",
    "random_search",
    "coordinate_descent",
    "exhaustive_best",
    "TableEntry",
    "TunedDispatcher",
]
