"""Guided-search baselines.

Section IV argues the exhaustive sweep is worth its cost because guided
search "represents a form of selection bias committed in the name of
minimization of execution time".  These heuristics quantify the other side
of that trade-off: how close to the exhaustive optimum a small evaluation
budget gets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autotune.runner import SweepRecord, evaluate_config
from repro.autotune.space import ParameterSpace
from repro.core.config import KernelConfig
from repro.gpusim.arch import GPUArchitecture, P100


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a guided search."""

    best: SweepRecord
    evaluations: int
    history: tuple[float, ...]  # best-so-far gflops after each evaluation


def geometric_ladder(
    lo: float, hi: float, factor: float = 2.0**0.5
) -> tuple[float, ...]:
    """A monotone candidate ladder spanning ``[lo, hi]`` geometrically.

    The shared step schedule of coordinate-style searches: offline
    sweeps walk parameter grids, and the online serve controller
    (:mod:`repro.serve.control`) climbs the same kind of ladder one rung
    per decision — which is what bounds its step size.  The ladder always
    contains both endpoints and grows by ``factor`` in between, so a
    search can neither overshoot the bounds nor stall short of them.
    """
    if lo <= 0 or hi <= 0:
        raise ValueError(f"ladder bounds must be positive, got [{lo}, {hi}]")
    if hi < lo:
        raise ValueError(f"ladder bounds must be ordered, got [{lo}, {hi}]")
    if factor <= 1.0:
        raise ValueError(f"ladder factor must exceed 1, got {factor}")
    rungs = [float(lo)]
    value = float(lo)
    while value * factor < hi:
        value *= factor
        rungs.append(value)
    if rungs[-1] != float(hi):
        rungs.append(float(hi))
    return tuple(rungs)


def ladder_index(ladder: tuple[float, ...], value: float) -> int:
    """The rung closest to ``value`` — where an online climb starts from."""
    if not ladder:
        raise ValueError("ladder is empty")
    return min(range(len(ladder)), key=lambda i: abs(ladder[i] - value))


def exhaustive_best(
    space: ParameterSpace, batch: int = 16384, arch: GPUArchitecture = P100
) -> SearchResult:
    """Evaluate everything; the reference the heuristics are scored against."""
    best: SweepRecord | None = None
    history: list[float] = []
    count = 0
    for config in space.configs():
        rec = evaluate_config(config, batch=batch, arch=arch)
        count += 1
        if rec.ok and (best is None or rec.gflops > best.gflops):
            best = rec
        history.append(best.gflops if best else 0.0)
    if best is None:
        raise RuntimeError("no configuration in the space evaluated successfully")
    return SearchResult(best=best, evaluations=count, history=tuple(history))


def random_search(
    space: ParameterSpace,
    budget: int,
    seed: int = 0,
    batch: int = 16384,
    arch: GPUArchitecture = P100,
) -> SearchResult:
    """Uniform random sampling of the space without replacement."""
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    configs = list(space.configs())
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(configs))[: min(budget, len(configs))]
    best: SweepRecord | None = None
    history: list[float] = []
    for i in order:
        rec = evaluate_config(configs[int(i)], batch=batch, arch=arch)
        if rec.ok and (best is None or rec.gflops > best.gflops):
            best = rec
        history.append(best.gflops if best else 0.0)
    if best is None:
        raise RuntimeError("random search found no successful configuration")
    return SearchResult(best=best, evaluations=len(order), history=tuple(history))


def coordinate_descent(
    space: ParameterSpace,
    start: KernelConfig,
    batch: int = 16384,
    arch: GPUArchitecture = P100,
    max_rounds: int = 8,
) -> SearchResult:
    """Greedy one-parameter-at-a-time improvement from a starting point.

    Sweeps each tuning dimension in turn, keeping the best value, until a
    full round makes no progress.  This is the classic "workable
    heuristic" the paper mentions skipping.
    """
    if start.n not in space.ns:
        raise ValueError(f"start.n={start.n} is not in the space's sizes {space.ns}")
    current = start
    best = evaluate_config(current, batch=batch, arch=arch)
    evaluations = 1
    history = [best.gflops if best.ok else 0.0]

    def candidates_along(dim: str, base: KernelConfig):
        if dim == "nb":
            for nb in space.nbs:
                yield base.with_(nb=min(nb, base.n))
        elif dim == "looking":
            for lk in space.lookings:
                yield base.with_(looking=lk)
        elif dim == "unroll":
            for ur in space.unrolls:
                yield base.with_(unroll=ur)
        elif dim == "chunk":
            for chunk in space.chunkings:
                if chunk is None:
                    yield base.with_(chunked=False)
                else:
                    yield base.with_(chunked=True, chunk_size=chunk)
        elif dim == "cache":
            for cp in space.cache_prefs:
                yield base.with_(cache_pref=cp)
        else:  # pragma: no cover - internal dimension list is fixed
            raise ValueError(f"unknown dimension {dim!r}")

    for _ in range(max_rounds):
        improved = False
        for dim in ("nb", "looking", "unroll", "chunk", "cache"):
            for cand in candidates_along(dim, current):
                if cand == current:
                    continue
                rec = evaluate_config(cand, batch=batch, arch=arch)
                evaluations += 1
                if rec.ok and rec.gflops > best.gflops:
                    best = rec
                    current = cand
                    improved = True
                history.append(best.gflops if best.ok else 0.0)
        if not improved:
            break
    if not best.ok:
        raise RuntimeError("coordinate descent found no successful configuration")
    return SearchResult(best=best, evaluations=evaluations, history=tuple(history))
