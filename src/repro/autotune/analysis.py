"""Postmortem analysis of the autotuning dataset (Section IV).

Two products:

* **Table I** — the predictive power of each tuning parameter, measured
  as random-forest permutation importance (R ``randomForest``'s
  ``%IncMSE``).  The expected shape: chunking and the tile size carry the
  most signal, chunk size little, and the L1/shared cache knob none (it
  may legitimately come out negative).
* **Figure 21** — the quality of a regression forest of the performance
  landscape, reported as the correlation between out-of-bag predictions
  and observations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autotune.dataset import FEATURE_NAMES, SweepDataset
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import mse, pearson_r, r2_score

#: Table I's human-readable parameter descriptions, keyed like
#: :data:`repro.autotune.dataset.FEATURE_NAMES`.
PARAMETER_EXPLANATIONS = {
    "n": ("integer", "size of single matrix"),
    "nb": ("integer", "internal blocking"),
    "looking": ("ternary", "Left, Right, or Top"),
    "chunked": ("binary", "yes or no"),
    "chunk_size": ("integer", "matrix count in chunk"),
    "unroll": ("binary", "use unrolling?"),
    "cache_pref": ("binary", "more L1 or shared mem."),
}


def fit_forest(
    dataset: SweepDataset,
    n_estimators: int = 500,
    max_depth: int | None = None,
    min_samples_leaf: int = 5,
    seed: int = 0,
) -> tuple[RandomForestRegressor, np.ndarray, np.ndarray]:
    """Fit the Section IV regression forest; returns (forest, X, y)."""
    x, y = dataset.feature_matrix()
    forest = RandomForestRegressor(
        n_estimators=n_estimators,
        max_depth=max_depth,
        min_samples_leaf=min_samples_leaf,
        seed=seed,
    )
    forest.fit(x, y)
    return forest, x, y


def parameter_importance(
    dataset: SweepDataset,
    n_estimators: int = 200,
    seed: int = 0,
) -> dict[str, float]:
    """Table I: ``%IncMSE`` permutation importance per tuning parameter."""
    forest, _, _ = fit_forest(dataset, n_estimators=n_estimators, seed=seed)
    scores = forest.permutation_importance(seed=seed + 1)
    return dict(zip(FEATURE_NAMES, (float(s) for s in scores)))


@dataclass(frozen=True)
class ForestFitQuality:
    """Figure 21 summary: how well the forest models the landscape."""

    oob_r: float  # Pearson r between OOB prediction and observation
    oob_r2: float
    oob_mse: float
    train_r: float
    average_depth: float
    n_trees: int
    n_samples: int
    observed: np.ndarray
    predicted_oob: np.ndarray


def forest_fit_quality(
    dataset: SweepDataset,
    n_estimators: int = 200,
    seed: int = 0,
) -> ForestFitQuality:
    """Fit the forest and report the Figure 21 predicted-vs-observed study."""
    forest, x, y = fit_forest(dataset, n_estimators=n_estimators, seed=seed)
    oob = forest.oob_prediction()
    train = forest.predict(x)
    return ForestFitQuality(
        oob_r=pearson_r(y, oob),
        oob_r2=r2_score(y, oob),
        oob_mse=mse(y, oob),
        train_r=pearson_r(y, train),
        average_depth=forest.average_depth(),
        n_trees=n_estimators,
        n_samples=y.shape[0],
        observed=y,
        predicted_oob=oob,
    )
