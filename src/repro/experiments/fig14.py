"""Figure 14: speedup of the interleaved implementation over MAGMA.

The interleaved code "substantially outperforms the traditional
implementation in MAGMA 2.2.0" for small sizes, while "the performance of
the interleaved implementation levels off, and is surpassed by the
performance of the traditional implementation in MAGMA, for larger
sizes".  Both sides use IEEE arithmetic (stock MAGMA builds are IEEE
compliant).
"""

from __future__ import annotations

from repro.autotune.dataset import SweepDataset
from repro.baselines.magma import estimate_magma_performance
from repro.experiments.common import (
    PAPER_BATCH,
    ExperimentResult,
    is_ieee,
    standard_sweep,
)


def run(sweep: SweepDataset | None = None, batch: int = PAPER_BATCH) -> ExperimentResult:
    sweep = sweep if sweep is not None else standard_sweep()
    interleaved = sweep.best_series(is_ieee)
    ns = sorted(interleaved)
    magma = {n: estimate_magma_performance(n, batch=batch).gflops for n in ns}
    speedup = {n: interleaved[n] / magma[n] for n in ns}

    small = [n for n in ns if n <= 16]
    large = [n for n in ns if n >= 48]
    checks = {
        "speedup > 2x for tiny matrices": all(speedup[n] > 2.0 for n in small),
        "speedup decreases from small to large": (
            sum(speedup[n] for n in small) / len(small)
            > sum(speedup[n] for n in large) / len(large)
        ),
        "magma catches up at larger sizes": min(speedup[n] for n in large) < 1.3,
    }
    result = ExperimentResult(
        experiment="fig14",
        title="Speedup of the interleaved implementation over MAGMA",
        series={
            "interleaved": interleaved,
            "magma": magma,
            "speedup": speedup,
        },
        checks=checks,
    )
    result.notes.append(
        "paper anchor: large speedups for very small matrices; MAGMA overtakes "
        "at the top of the size range"
    )
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
