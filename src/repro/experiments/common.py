"""Shared infrastructure for the experiment harnesses.

The paper's Section III/IV figures are all views of one exhaustive sweep.
:func:`standard_sweep` builds that dataset once (sizes 4..64 in steps of
4, the full cross of the tuning parameters including both arithmetic
modes and both cache preferences — about 20k configurations, of which the
oversized fully-unrolled kernels fail, mirroring the paper's "successful
runs") and caches it as CSV under :data:`RESULTS_DIR`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.autotune.dataset import SweepDataset
from repro.autotune.space import ParameterSpace
from repro.autotune.sweep import run_sweep
from repro.utils.tables import format_series, format_table

#: Where experiment artefacts (sweep CSVs, result tables) are written.
RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))

#: The matrix sizes of the standard experiment grid.
STANDARD_NS = tuple(range(4, 65, 4))

#: The batch size used throughout the paper's Section III.
PAPER_BATCH = 16384


@dataclass
class ExperimentResult:
    """Outcome of one experiment harness."""

    experiment: str  # e.g. "fig13"
    title: str
    #: named series over n: {label: {n: value}}
    series: dict[str, dict[int, float]] = field(default_factory=dict)
    #: free-form table rows (headers, rows) when the experiment is tabular
    table: tuple[list[str], list[list]] | None = None
    #: named qualitative shape checks, True = the paper's shape holds
    checks: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable report: series/table plus check outcomes."""
        parts = [f"== {self.experiment}: {self.title} =="]
        if self.series:
            parts.append(format_series("", self.series).lstrip("\n"))
        if self.table is not None:
            headers, rows = self.table
            parts.append(format_table(headers, rows))
        if self.checks:
            parts.append("shape checks:")
            for name, ok in self.checks.items():
                parts.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())


def standard_space(
    ns: tuple[int, ...] = STANDARD_NS,
    fast_maths: tuple[bool, ...] = (False, True),
    cache_prefs: tuple[str, ...] = ("l1", "shared"),
) -> ParameterSpace:
    """The full experiment space over the standard size grid."""
    return ParameterSpace(ns=ns, fast_maths=fast_maths, cache_prefs=cache_prefs)


_SWEEP_CACHE: dict[tuple, SweepDataset] = {}


def standard_sweep(
    ns: tuple[int, ...] = STANDARD_NS,
    batch: int = PAPER_BATCH,
    refresh: bool = False,
    progress: bool = False,
) -> SweepDataset:
    """The shared exhaustive sweep, cached in memory and on disk.

    The on-disk cache (``results/sweep_n{first}-{last}_b{batch}.csv``)
    makes repeated benchmark runs cheap; delete the file or pass
    ``refresh=True`` to re-measure after model changes.
    """
    key = (ns, batch)
    if not refresh and key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"sweep_n{ns[0]}-{ns[-1]}_b{batch}.csv"
    if path.exists() and not refresh:
        dataset = SweepDataset.load_csv(path)
    else:
        space = standard_space(ns=ns)
        callback = None
        if progress:
            def callback(done: int, total: int) -> None:
                if done % 500 == 0 or done == total:
                    print(f"  sweep progress: {done}/{total}", flush=True)
        dataset = run_sweep(space, batch=batch, progress=callback)
        dataset.save_csv(path)
    _SWEEP_CACHE[key] = dataset
    return dataset


def is_ieee(record) -> bool:
    return not record.fast_math


def is_fast(record) -> bool:
    return record.fast_math
