"""Figure 15: best performance for different tiling factors.

"For sizes smaller than 20, tiling makes no difference, as the system is
able to preserve data in registers throughout the factorization.  This
behavior deteriorates between 20 and 40.  Past 40, no blocking (nb = 1)
has no data reuse and the code becomes memory bound.  Introducing
blocking gradually increases performance, until it levels off around 8."
"""

from __future__ import annotations

from repro.autotune.dataset import SweepDataset
from repro.experiments.common import ExperimentResult, standard_sweep

#: Tiling factors plotted (the paper's x-bins run 1..8 in this figure).
NB_VALUES = (1, 2, 4, 6, 8)


def run(sweep: SweepDataset | None = None) -> ExperimentResult:
    sweep = sweep if sweep is not None else standard_sweep()
    series: dict[str, dict[int, float]] = {}
    for nb in NB_VALUES:
        series[f"nb={nb}"] = sweep.best_series(
            lambda r, nb=nb: r.nb == min(nb, r.n)
        )

    ns = sorted(series["nb=8"])
    small = [n for n in ns if n <= 16]
    large = [n for n in ns if n >= 48]

    def spread(n: int) -> float:
        vals = [series[f"nb={nb}"].get(n) for nb in NB_VALUES]
        vals = [v for v in vals if v is not None]
        return max(vals) / min(vals)

    checks = {
        "tiling makes no difference below n=20": all(spread(n) < 1.15 for n in small),
        "nb=1 collapses for large sizes": all(
            series["nb=1"][n] < 0.6 * series["nb=8"][n] for n in large
        ),
        "blocking gradually increases performance at large n": all(
            series["nb=2"][n] > series["nb=1"][n]
            and series["nb=4"][n] > series["nb=2"][n]
            for n in large
        ),
        "levels off around nb=8": all(
            series["nb=8"][n] > 0.85 * series["nb=6"][n] for n in large
        ),
    }
    return ExperimentResult(
        experiment="fig15",
        title="Best performance for different tiling factors (Gflop/s)",
        series=series,
        checks=checks,
    )


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
