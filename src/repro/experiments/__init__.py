"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes ``run(...) -> ExperimentResult`` (the structured
series plus shape checks) and a ``main()`` that prints the same rows the
paper's figure plots.  The benchmark suite under ``benchmarks/`` wraps
these; they can also be run directly::

    python -m repro.experiments.fig13
    python -m repro.experiments.table1

All figure experiments share one exhaustive sweep
(:func:`repro.experiments.common.standard_sweep`), cached on disk under
``results/`` — the analogue of the paper's measurement dataset.
"""

from repro.experiments.common import (
    ExperimentResult,
    standard_space,
    standard_sweep,
    RESULTS_DIR,
)

__all__ = ["ExperimentResult", "standard_space", "standard_sweep", "RESULTS_DIR"]
