"""Extension experiment: performance versus batch size.

The paper fixes the batch at 16,384 matrices.  That number is
load-bearing: 16,384 one-thread-per-matrix kernels are only 512 warps
across 56 SMs, so the machine runs far below full occupancy, and that —
not raw bandwidth — shapes the Figure 13 plateau.  This experiment
sweeps the batch size at fixed matrix sizes and shows the three regimes
the model predicts:

1. **overhead-bound** — tiny batches amortise the launch poorly;
2. **latency/work-bound** — performance climbs as warps fill the SMs;
3. **saturated** — bytes dominate and Gflop/s levels off.
"""

from __future__ import annotations

from repro.core.config import KernelConfig
from repro.experiments.common import ExperimentResult
from repro.gpusim.model import estimate_performance

BATCHES = (256, 1024, 4096, 16384, 65536, 262144)
SIZES = (8, 16, 32)


def run() -> ExperimentResult:
    series: dict[str, dict[int, float]] = {}
    for n in SIZES:
        cfg = KernelConfig(n=n, nb=min(8, n), looking="top", unroll="partial")
        points = {}
        for batch in BATCHES:
            est = estimate_performance(cfg, batch=batch)
            points[batch] = est.gflops
        series[f"n={n}"] = points

    checks = {}
    for n in SIZES:
        pts = series[f"n={n}"]
        checks[f"n={n}: performance grows with batch"] = (
            pts[BATCHES[0]] < pts[BATCHES[2]] < pts[BATCHES[-1]] * 1.001
        )
        checks[f"n={n}: saturates at large batches"] = (
            pts[BATCHES[-1]] < 1.25 * pts[BATCHES[-2]]
        )
    # The paper's operating point sits just below saturation: bigger
    # batches still gain a few percent.
    pts16 = series["n=16"]
    checks["paper's 16384 batch is just below saturation"] = (
        1.02 * pts16[16384] < pts16[262144] < 1.4 * pts16[16384]
    )

    result = ExperimentResult(
        experiment="batch_scaling",
        title="Gflop/s vs batch size (extension; the paper fixes 16384)",
        series=series,
        checks=checks,
    )
    result.notes.append(
        "series x-axis is the batch size; 16384 matrices = 512 warps on 56 "
        "SMs, which is why the paper's plateau sits where it does"
    )
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
