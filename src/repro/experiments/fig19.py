"""Figure 19: partial versus full unrolling.

"Full unrolling pays off up to the size of 20, and then the benefits
diminish, and the partial unrolling takes over.  Either the number of
instructions overwhelm the compiler, or instruction fetching and caching
becomes a problem, or both."
"""

from __future__ import annotations

from repro.autotune.dataset import SweepDataset
from repro.experiments.common import ExperimentResult, standard_sweep


def run(sweep: SweepDataset | None = None) -> ExperimentResult:
    sweep = sweep if sweep is not None else standard_sweep()
    partial = sweep.best_series(lambda r: r.unroll == "partial")
    full = sweep.best_series(lambda r: r.unroll == "full")
    ns = sorted(partial)
    small = [n for n in ns if n <= 20]
    large = [n for n in ns if n >= 40]

    # The crossover size: first n where partial *strictly* beats full (at
    # small sizes both are bound by the same memory/latency limit and tie).
    crossover = next(
        (n for n in ns if partial[n] > 1.02 * full.get(n, 0.0)), ns[-1]
    )
    checks = {
        "full unrolling pays off for small sizes": all(
            full[n] >= partial[n] * 0.999 for n in small
        ),
        "partial takes over for large sizes": all(
            partial[n] >= full.get(n, 0.0) * 0.999 for n in large
        ),
        "crossover in the paper's 20-40 window": 20 <= crossover <= 40,
    }
    result = ExperimentResult(
        experiment="fig19",
        title="Partial vs full unrolling, best performance (Gflop/s)",
        series={"partial": partial, "full": full},
        checks=checks,
    )
    result.notes.append(f"modelled crossover at n={crossover} (paper: past ~20)")
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
