"""Figure 16: best performance for different orders of evaluation.

"Up to the size of 20, there is no difference in performance ... Past the
size of 20, full unrolling stops being beneficial and tile operations are
executed according to the order in the source code.  At this point, the
implementation with the least memory traffic wins.  While there is no
difference in the number of memory reads, the lazier the order of
evaluation, the less writes there are.  Therefore, the right looking
implementation is the slowest, the left looking is faster, and the top
looking is the fastest."
"""

from __future__ import annotations

from repro.autotune.dataset import SweepDataset
from repro.core.config import KernelConfig
from repro.core.schedule import build_schedule, schedule_counts
from repro.experiments.common import ExperimentResult, standard_sweep

LOOKINGS = ("right", "left", "top")


def write_volumes(n: int, nb: int) -> dict[str, int]:
    """Stored elements per matrix for each looking variant (the mechanism)."""
    out = {}
    for looking in LOOKINGS:
        counts = schedule_counts(
            build_schedule(KernelConfig(n=n, nb=nb, looking=looking))
        )
        out[looking] = counts.stores
    return out


def run(sweep: SweepDataset | None = None) -> ExperimentResult:
    sweep = sweep if sweep is not None else standard_sweep()
    series = {
        looking: sweep.best_series(
            lambda r, looking=looking: r.looking == looking
        )
        for looking in LOOKINGS
    }
    ns = sorted(series["top"])
    small = [n for n in ns if n <= 16]
    large = [n for n in ns if n >= 48]

    def spread(n: int) -> float:
        vals = [series[lk][n] for lk in LOOKINGS]
        return max(vals) / min(vals)

    vol = write_volumes(48, 8)
    checks = {
        "no difference below n=20": all(spread(n) < 1.1 for n in small),
        "top fastest at large sizes": all(
            series["top"][n] >= series["left"][n] * 0.999
            and series["top"][n] >= series["right"][n] * 0.999
            for n in large
        ),
        "right slowest at large sizes": all(
            series["right"][n] <= series["left"][n] * 1.001 for n in large
        ),
        "write volume: right > left > top": vol["right"] > vol["left"] > vol["top"],
    }
    result = ExperimentResult(
        experiment="fig16",
        title="Best performance for different orders of evaluation (Gflop/s)",
        series=series,
        checks=checks,
    )
    result.notes.append(
        f"stores per matrix at n=48, nb=8: right={vol['right']}, "
        f"left={vol['left']}, top={vol['top']} (reads are equal)"
    )
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
