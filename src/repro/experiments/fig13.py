"""Figure 13: top performance of the interleaved implementation.

"Figure 13 shows the overall performance for a batch of size 16,384 ...
The figure shows performance when using IEEE compliant arithmetic, and
when using the --use_fast_math option ... For smaller matrices, the code
achieves 600 GFLOPS for the IEEE compliant case, and approaches 800
GFLOPS for the --use_fast_math case."

Series: best Gflop/s over the whole tuning space, per matrix size, for
IEEE and fast-math arithmetic.
"""

from __future__ import annotations

from repro.autotune.dataset import SweepDataset
from repro.experiments.common import (
    ExperimentResult,
    is_fast,
    is_ieee,
    standard_sweep,
)


def run(sweep: SweepDataset | None = None) -> ExperimentResult:
    sweep = sweep if sweep is not None else standard_sweep()
    ieee = sweep.best_series(is_ieee)
    fast = sweep.best_series(is_fast)
    ns = sorted(ieee)

    small = [n for n in ns if n <= 12]
    mid = [n for n in ns if 16 <= n <= 40]
    checks = {
        # Performance grows out of the launch-overhead regime.
        "rises with n for small sizes": all(
            ieee[a] < ieee[b] for a, b in zip(small, small[1:])
        ),
        # fast-math never loses and clearly wins somewhere in the middle.
        "fast_math >= ieee everywhere": all(
            fast[n] >= ieee[n] * 0.999 for n in ns
        ),
        "fast_math gap visible at mid sizes": any(
            fast[n] > 1.05 * ieee[n] for n in mid
        ),
        # The curve levels off rather than keeps climbing at the same rate.
        "levels off past n=40": max(ieee[n] for n in ns if n >= 40)
        < 1.35 * min(ieee[n] for n in ns if n >= 40),
        "ieee plateau in the hundreds of Gflop/s": 400
        < max(ieee.values())
        < 1200,
    }
    result = ExperimentResult(
        experiment="fig13",
        title="Top performance of the interleaved implementation (Gflop/s)",
        series={"ieee": ieee, "fast_math": fast},
        checks=checks,
    )
    result.notes.append(
        "paper anchors: ~600 Gflop/s IEEE and ~800 Gflop/s fast-math at small-mid n"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
