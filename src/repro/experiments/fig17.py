"""Figure 17: best performance with and without chunking.

"Clearly, chunking is very beneficial to performance.  While we cannot
say exactly why this is the case, intuitively, this is the expected
outcome.  The spatial locality principle takes effect at some level of
the memory hierarchy."  (Our model makes the mechanism concrete: DRAM
row-buffer locality of the stride between a matrix's elements — 128 bytes
chunked at warp size versus the whole padded batch unchunked.)
"""

from __future__ import annotations

from repro.autotune.dataset import SweepDataset
from repro.experiments.common import ExperimentResult, standard_sweep
from repro.gpusim.arch import P100
from repro.gpusim.dram import layout_locality_factor
from repro.layouts.base import BatchSpec
from repro.layouts.chunked import ChunkedInterleavedLayout
from repro.layouts.interleaved import InterleavedLayout


def run(sweep: SweepDataset | None = None) -> ExperimentResult:
    sweep = sweep if sweep is not None else standard_sweep()
    chunked = sweep.best_series(lambda r: r.chunked)
    simple = sweep.best_series(lambda r: not r.chunked)
    ns = sorted(chunked)
    large = [n for n in ns if n >= 32]

    spec = BatchSpec(batch=16384, n=32)
    loc_chunked = layout_locality_factor(ChunkedInterleavedLayout(32), spec, P100)
    loc_simple = layout_locality_factor(InterleavedLayout(), spec, P100)

    checks = {
        "chunking never loses": all(chunked[n] >= simple[n] * 0.999 for n in ns),
        "chunking clearly wins at memory-bound sizes": all(
            chunked[n] > 1.3 * simple[n] for n in large
        ),
        "mechanism: chunked stride keeps row locality": loc_chunked > loc_simple,
    }
    result = ExperimentResult(
        experiment="fig17",
        title="Best performance with and without chunking (Gflop/s)",
        series={"chunked": chunked, "non_chunked": simple},
        checks=checks,
    )
    result.notes.append(
        f"modelled DRAM locality factors at n=32, batch 16384: "
        f"chunked(32)={loc_chunked:.2f}, non-chunked={loc_simple:.2f}"
    )
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
