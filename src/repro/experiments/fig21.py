"""Figure 21: accuracy of the random-forest model of the landscape.

"We then proceed to model the data with a random forest ... The generated
model has 500 trees of average depth 11.  The constructed model allows us
to plot a density point cloud that indicates the quality of the
predictive power with respect to the measured performance."

We report the out-of-bag predicted-vs-observed correlation (the honest
version of that point cloud) plus the forest geometry, and emit a coarse
ASCII density plot of the cloud.
"""

from __future__ import annotations

import numpy as np

from repro.autotune.analysis import forest_fit_quality
from repro.autotune.dataset import SweepDataset
from repro.experiments.common import ExperimentResult, standard_sweep


def ascii_density(observed: np.ndarray, predicted: np.ndarray, size: int = 18) -> str:
    """Coarse character-cell density plot of predicted vs observed."""
    lo = float(min(observed.min(), predicted.min()))
    hi = float(max(observed.max(), predicted.max()))
    span = hi - lo or 1.0
    grid = np.zeros((size, size), dtype=int)
    xi = np.clip(((observed - lo) / span * (size - 1)).astype(int), 0, size - 1)
    yi = np.clip(((predicted - lo) / span * (size - 1)).astype(int), 0, size - 1)
    np.add.at(grid, (yi, xi), 1)
    shades = " .:-=+*#%@"
    peak = grid.max() or 1
    lines = []
    for row in grid[::-1]:
        lines.append(
            "".join(shades[min(len(shades) - 1, int(v / peak * (len(shades) - 1)))] for v in row)
        )
    lines.append(f"x: observed, y: OOB predicted; range [{lo:.0f}, {hi:.0f}] Gflop/s")
    return "\n".join(lines)


def run(
    sweep: SweepDataset | None = None,
    n_estimators: int = 150,
    seed: int = 0,
) -> ExperimentResult:
    sweep = sweep if sweep is not None else standard_sweep()
    dataset = sweep.filter(lambda r: not r.fast_math)
    quality = forest_fit_quality(dataset, n_estimators=n_estimators, seed=seed)

    checks = {
        "OOB prediction strongly correlated with observation": quality.oob_r > 0.9,
        "OOB R^2 is high": quality.oob_r2 > 0.8,
        "trees grow to double-digit depth (paper: avg 11)": 6.0
        <= quality.average_depth
        <= 40.0,
    }
    result = ExperimentResult(
        experiment="fig21",
        title="Random-forest model accuracy (predicted vs observed)",
        table=(
            ["metric", "value"],
            [
                ["trees", quality.n_trees],
                ["samples", quality.n_samples],
                ["average depth", round(quality.average_depth, 1)],
                ["OOB pearson r", round(quality.oob_r, 4)],
                ["OOB R^2", round(quality.oob_r2, 4)],
                ["OOB MSE", round(quality.oob_mse, 2)],
                ["train pearson r", round(quality.train_r, 4)],
            ],
        ),
        checks=checks,
    )
    result.notes.append(ascii_density(quality.observed, quality.predicted_oob))
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
