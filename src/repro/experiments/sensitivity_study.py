"""Extension experiment: robustness of conclusions to model calibration.

Every calibrated constant in :mod:`repro.gpusim.arch` is a potential
objection to the reproduction: would the paper's findings still hold if
the constant were somewhat different?  This study perturbs each soft
parameter by ±25 % and re-derives the *qualitative* conclusions on a
reduced grid:

* chunked beats non-chunked (Figure 17),
* top-looking beats right-looking at large n (Figure 16),
* full unrolling wins at n = 16 and partial at n = 48 (Figure 19),
* chunk 32 beats chunk 512 (Figure 18).

A conclusion that flips under a 25 % calibration nudge would be an
artefact of tuning; none should.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import KernelConfig
from repro.experiments.common import ExperimentResult
from repro.gpusim.arch import P100, GPUArchitecture
from repro.gpusim.model import estimate_performance

#: The calibrated constants under scrutiny.
PERTURBED_FIELDS = (
    "ieee_div_cycles",
    "icache_bytes",
    "row_miss_efficiency",
    "far_stride_efficiency",
    "mlp_per_thread",
    "write_cost_factor",
    "scalar_window_statements",
)


def _variants() -> list[tuple[str, GPUArchitecture]]:
    variants: list[tuple[str, GPUArchitecture]] = [("baseline", P100)]
    for field in PERTURBED_FIELDS:
        base = getattr(P100, field)
        for factor, tag in ((0.75, "-25%"), (1.25, "+25%")):
            value = base * factor
            if isinstance(base, int):
                value = max(1, int(round(value)))
            arch = replace(P100, name=f"P100[{field}{tag}]", **{field: value})
            variants.append((f"{field} {tag}", arch))
    return variants


def _conclusions(arch: GPUArchitecture) -> dict[str, bool]:
    """Re-derive the qualitative findings under one architecture."""
    # The demand cache is keyed by arch.name; perturbed variants carry
    # unique names so entries never collide.
    def perf(**kw) -> float:
        return estimate_performance(KernelConfig(**kw), batch=16384, arch=arch).gflops

    chunked = perf(n=48, nb=8, looking="top", chunked=True, chunk_size=32)
    simple = perf(n=48, nb=8, looking="top", chunked=False)
    top = perf(n=48, nb=8, looking="top")
    right = perf(n=48, nb=8, looking="right")
    full16 = perf(n=16, nb=8, unroll="full")
    part16 = perf(n=16, nb=8, unroll="partial")
    full48 = perf(n=48, nb=8, unroll="full")
    part48 = perf(n=48, nb=8, unroll="partial")
    c32 = perf(n=48, nb=8, chunked=True, chunk_size=32)
    c512 = perf(n=48, nb=8, chunked=True, chunk_size=512)
    return {
        "chunked beats non-chunked": chunked > simple,
        "top beats right at n=48": top > right,
        "full unrolling wins at n=16": full16 >= part16 * 0.999,
        "partial takes over at n=48": part48 > full48,
        "chunk 32 beats chunk 512": c32 > c512,
    }


def run() -> ExperimentResult:
    rows = []
    stable: dict[str, bool] = {}
    baseline = _conclusions(P100)
    for name, arch in _variants():
        conclusions = _conclusions(arch)
        rows.append([name] + ["yes" if v else "NO" for v in conclusions.values()])
        for key, value in conclusions.items():
            stable[key] = stable.get(key, True) and value

    checks = {f"'{k}' holds under every perturbation": v for k, v in stable.items()}
    checks["baseline reproduces all conclusions"] = all(baseline.values())

    result = ExperimentResult(
        experiment="sensitivity_study",
        title="Calibration sensitivity: do the paper's findings survive ±25%?",
        table=(
            ["variant"] + list(baseline.keys()),
            rows,
        ),
        checks=checks,
    )
    result.notes.append(
        f"{len(PERTURBED_FIELDS)} calibrated constants perturbed both ways "
        "(15 architecture variants including the baseline)"
    )
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
