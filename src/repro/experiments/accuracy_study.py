"""Extension experiment: single-precision accuracy vs conditioning.

The paper computes in float32 throughout and never quantifies the
numerical cost.  This study charts the factorization's backward error
``||A - L L^T|| / ||A||`` against the input condition number, for both
the float32 kernels (the paper's setting) and the double-precision
extension, confirming the textbook expectation: Cholesky is backward
stable, so the error tracks machine epsilon — *not* kappa — until the
matrix is numerically indefinite at the working precision, at which
point float32 factorizations start failing outright while float64
continues.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import KernelConfig
from repro.core.factorize import batch_cholesky
from repro.core.validate import factorization_info
from repro.experiments.common import ExperimentResult
from repro.utils.condition import conditioned_spd_batch
from repro.utils.errors import factorization_error

CONDITIONS = (1e1, 1e3, 1e5, 1e6, 1e7, 1e8)
N = 16
BATCH = 64


def _measure(precision: str):
    errors = {}
    failures = {}
    cfg = KernelConfig(n=N, nb=4, looking="top", precision=precision)
    for kappa in CONDITIONS:
        a = conditioned_spd_batch(BATCH, N, kappa, seed=int(np.log10(kappa)))
        l = batch_cholesky(a.astype(np.float64), cfg)
        info = factorization_info(l)
        ok = info == 0
        failures[int(np.log10(kappa))] = int((~ok).sum())
        if ok.any():
            errors[int(np.log10(kappa))] = factorization_error(a[ok], l[ok])
        else:
            errors[int(np.log10(kappa))] = float("nan")
    return errors, failures


def run() -> ExperimentResult:
    err32, fail32 = _measure("single")
    err64, fail64 = _measure("double")

    rows = []
    for kappa in CONDITIONS:
        k = int(np.log10(kappa))
        rows.append(
            [
                f"1e{k}",
                f"{err32[k]:.1e}",
                fail32[k],
                f"{err64[k]:.1e}",
                fail64[k],
            ]
        )

    eps32 = float(np.finfo(np.float32).eps)
    well = [err32[int(np.log10(k))] for k in CONDITIONS if k <= 1e5]
    checks = {
        "float32 backward error tracks eps for kappa <= 1e5": all(
            e < 100 * eps32 for e in well
        ),
        "float64 is uniformly more accurate": all(
            err64[int(np.log10(k))] < err32[int(np.log10(k))]
            for k in CONDITIONS
            if not np.isnan(err32[int(np.log10(k))])
        ),
        "float64 never fails on these inputs": all(v == 0 for v in fail64.values()),
        "float32 failures appear only near eps^-1 conditioning": all(
            fail32[int(np.log10(k))] == 0 for k in CONDITIONS if k <= 1e5
        ),
    }
    result = ExperimentResult(
        experiment="accuracy_study",
        title=f"Backward error vs condition number (n={N}, batch {BATCH})",
        table=(
            ["kappa", "fp32 error", "fp32 failures", "fp64 error", "fp64 failures"],
            rows,
        ),
        checks=checks,
    )
    result.notes.append(
        "Cholesky is backward stable: the relative residual sits near the "
        "working precision's epsilon regardless of kappa, until the matrix "
        "is numerically indefinite (kappa ~ 1/eps) and factorization fails"
    )
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
