"""Extension experiment: does the tuning transfer across GPUs?

Autotuning exists because winners do not transfer cleanly between
machines — the premise of the ATLAS lineage the paper cites.  This study
quantifies it inside the model: sweep a reduced space on the P100 (the
paper's card) and on a V100, then cross-apply each machine's winners:

* how often is the P100's winning configuration also the V100's?
* how much performance does running the *other* machine's winner cost?

Re-tuning should recover a measurable margin over imported tables —
that margin is the value of autotuning per deployment.
"""

from __future__ import annotations

from repro.autotune.dataset import SweepDataset
from repro.autotune.space import ParameterSpace
from repro.autotune.sweep import run_sweep
from repro.experiments.common import ExperimentResult
from repro.gpusim.arch import P100, V100

NS = (8, 16, 24, 32, 48, 64)
SPACE = ParameterSpace(
    ns=NS,
    nbs=(1, 2, 4, 6, 8),
    chunkings=(None, 32, 64, 256, 512),
    cache_prefs=("l1",),
)
BATCH = 16384


def _lookup(dataset: SweepDataset, rec) -> float:
    """Gflop/s of a specific configuration inside a sweep dataset."""
    for r in dataset.successful():
        if (
            r.n == rec.n
            and r.nb == rec.nb
            and r.looking == rec.looking
            and r.chunked == rec.chunked
            and r.chunk_size == rec.chunk_size
            and r.unroll == rec.unroll
        ):
            return r.gflops
    raise KeyError(f"configuration not found in the other sweep: {rec}")


def run() -> ExperimentResult:
    p100 = run_sweep(SPACE, batch=BATCH, arch=P100)
    v100 = run_sweep(SPACE, batch=BATCH, arch=V100)
    best_p = p100.best_per_n()
    best_v = v100.best_per_n()

    rows = []
    same = 0
    transfer_fracs = []
    for n in NS:
        wp, wv = best_p[n], best_v[n]
        identical = (
            wp.nb == wv.nb
            and wp.looking == wv.looking
            and wp.chunked == wv.chunked
            and wp.chunk_size == wv.chunk_size
            and wp.unroll == wv.unroll
        )
        same += identical
        # Run the P100's winner on the V100 and compare to retuning.
        imported = _lookup(v100, wp)
        frac = imported / wv.gflops
        transfer_fracs.append(frac)
        rows.append(
            [
                n,
                f"nb={wp.nb} {wp.looking[0]} {wp.unroll[:4]} c{wp.chunk_size if wp.chunked else '-'}",
                f"nb={wv.nb} {wv.looking[0]} {wv.unroll[:4]} c{wv.chunk_size if wv.chunked else '-'}",
                round(wv.gflops, 1),
                round(imported, 1),
                f"{frac:.2f}",
            ]
        )

    checks = {
        "V100 is faster than P100 at every size (more SMs + bandwidth)": all(
            best_v[n].gflops > best_p[n].gflops for n in NS
        ),
        "imported tables are usable (>=70% of retuned)": all(
            f >= 0.70 for f in transfer_fracs
        ),
        "retuning still pays somewhere": any(f < 0.97 for f in transfer_fracs),
        "winners do not transfer identically everywhere": same < len(NS),
    }
    result = ExperimentResult(
        experiment="portability_study",
        title="Tuning portability: P100 winners applied to a V100",
        table=(
            ["n", "P100 winner", "V100 winner", "V100 retuned", "P100-import", "fraction"],
            rows,
        ),
        checks=checks,
    )
    result.notes.append(
        f"{same}/{len(NS)} sizes share the identical winning configuration; "
        "the gap between 'retuned' and 'import' is the per-machine value of "
        "autotuning (the ATLAS premise the paper builds on)"
    )
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
