"""Figure 20: all kernels for n = 24 and n = 48 with chunk size 64.

"The kernels are sorted into 9 bins across the x-axis by their nb; within
each nb there are up to 12 kernels.  For n = 24, the chunked, fully
unrolled versions were best, and in particular the left-looking one with
nb = 2.  However, for n = 48 ... overtaken by the top-looking, partially
unrolled versions, in particular with nb = 7.  For all sizes, the
non-chunked, fully unrolled codes were consistently the worst performing.
In general, the chunked version was better than its non-chunked
counterpart."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autotune.runner import SweepRecord, evaluate_config
from repro.core.config import KernelConfig
from repro.experiments.common import PAPER_BATCH, ExperimentResult

#: Chunk size the paper fixes for this figure.
CHUNK = 64
SIZES = (24, 48)
NB_BINS = tuple(range(1, 10))


@dataclass(frozen=True)
class KernelPoint:
    """One scatter point: a full kernel variant and its Gflop/s."""

    nb: int
    looking: str
    unroll: str
    chunked: bool
    gflops: float
    ok: bool

    def label(self) -> str:
        chunk = "chunked" if self.chunked else "non-chunked"
        return f"nb={self.nb} {self.looking} {self.unroll} {chunk}"


def kernels_for(n: int, batch: int = PAPER_BATCH) -> list[KernelPoint]:
    """All kernel variants of the figure for one matrix size."""
    points = []
    for nb in NB_BINS:
        if min(nb, n) != nb:
            continue
        for looking in ("right", "left", "top"):
            for unroll in ("partial", "full"):
                for chunked in (True, False):
                    rec: SweepRecord = evaluate_config(
                        KernelConfig(
                            n=n,
                            nb=nb,
                            looking=looking,
                            chunked=chunked,
                            chunk_size=CHUNK,
                            unroll=unroll,
                        ),
                        batch=batch,
                    )
                    points.append(
                        KernelPoint(
                            nb=nb,
                            looking=looking,
                            unroll=unroll,
                            chunked=chunked,
                            gflops=rec.gflops,
                            ok=rec.ok,
                        )
                    )
    return points


def run(batch: int = PAPER_BATCH) -> ExperimentResult:
    all_points = {n: kernels_for(n, batch) for n in SIZES}
    rows = []
    checks: dict[str, bool] = {}
    notes = []
    for n, points in all_points.items():
        ok_points = [p for p in points if p.ok]
        best = max(ok_points, key=lambda p: p.gflops)
        rows.extend(
            [n, p.nb, p.looking, p.unroll, "yes" if p.chunked else "no",
             round(p.gflops, 1) if p.ok else "failed"]
            for p in sorted(points, key=lambda p: (p.nb, p.looking, p.unroll, p.chunked))
        )
        notes.append(f"n={n}: best kernel is {best.label()} ({best.gflops:.0f} Gflop/s)")

        # The paper's "consistently the worst" group: non-chunked fully
        # unrolled.  It never wins and always trails its chunked
        # counterparts; at n=48 it is the worst group outright.
        nc_full = [p.gflops for p in ok_points if not p.chunked and p.unroll == "full"]
        ch_full = [p.gflops for p in ok_points if p.chunked and p.unroll == "full"]
        checks[f"n={n}: non-chunked fully-unrolled never wins"] = max(nc_full) < best.gflops
        checks[f"n={n}: non-chunked fully-unrolled trails chunked counterparts"] = (
            float(np.mean(nc_full)) < float(np.mean(ch_full))
        )
        if n >= 48:
            others = [
                p.gflops for p in ok_points if p.chunked or p.unroll != "full"
            ]
            checks[f"n={n}: non-chunked fully-unrolled is the worst group"] = (
                float(np.mean(nc_full)) < float(np.mean(others))
            )
        # Chunked beats its non-chunked counterpart, variant by variant.
        wins = 0
        pairs = 0
        by_key = {(p.nb, p.looking, p.unroll, p.chunked): p for p in ok_points}
        for (nb, lk, ur, ch), p in by_key.items():
            if ch:
                continue
            other = by_key.get((nb, lk, ur, True))
            if other is not None:
                pairs += 1
                if other.gflops >= p.gflops * 0.999:
                    wins += 1
        checks[f"n={n}: chunked beats non-chunked counterpart"] = wins >= 0.9 * pairs

    best24 = max((p for p in all_points[24] if p.ok), key=lambda p: p.gflops)
    best48 = max((p for p in all_points[48] if p.ok), key=lambda p: p.gflops)
    checks["n=24: a chunked fully-unrolled kernel wins"] = (
        best24.chunked and best24.unroll == "full"
    )
    checks["n=48: a top-looking partially-unrolled kernel wins"] = (
        best48.looking == "top" and best48.unroll == "partial"
    )

    result = ExperimentResult(
        experiment="fig20",
        title=f"All kernels for n=24 and n=48 with chunk size {CHUNK}",
        table=(["n", "nb", "looking", "unroll", "chunked", "gflops"], rows),
        checks=checks,
        notes=notes,
    )
    result.notes.append(
        "paper anchors: n=24 best is chunked fully-unrolled left-looking nb=2; "
        "n=48 best is top-looking partially-unrolled nb=7"
    )
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
