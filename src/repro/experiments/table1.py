"""Table I: predictive power of the tuning parameters.

"To identify the aforementioned influence of the parameters, we show in
Table I their predictive power of performance.  We can see that the tile
size nb and chunking have the strongest effect, while cache has the
weakest."  The measure is random-forest permutation importance (R
``randomForest``'s %IncMSE) — which is why the useless cache knob can
come out *negative* (-18.6 in the paper).
"""

from __future__ import annotations

from repro.autotune.analysis import PARAMETER_EXPLANATIONS, parameter_importance
from repro.autotune.dataset import SweepDataset
from repro.experiments.common import ExperimentResult, standard_sweep

#: The paper's Table I values, for side-by-side reporting.
PAPER_TABLE1 = {
    "n": 43.1,
    "nb": 103.9,
    "looking": 99.9,
    "chunked": 157.4,
    "chunk_size": 25.9,
    "unroll": 85.7,
    "cache_pref": -18.6,
}


def run(
    sweep: SweepDataset | None = None,
    n_estimators: int = 150,
    seed: int = 0,
) -> ExperimentResult:
    sweep = sweep if sweep is not None else standard_sweep()
    # Restrict to IEEE rows so arithmetic does not act as a hidden factor
    # (the paper's table has no fast-math row).
    dataset = sweep.filter(lambda r: not r.fast_math)
    importance = parameter_importance(dataset, n_estimators=n_estimators, seed=seed)

    rows = []
    for name, score in importance.items():
        kind, explanation = PARAMETER_EXPLANATIONS[name]
        rows.append(
            [name, round(score, 1), PAPER_TABLE1[name], kind, explanation]
        )

    tuning_only = {k: v for k, v in importance.items() if k != "n"}
    strongest_two = sorted(tuning_only, key=tuning_only.get, reverse=True)[:2]
    layout_family = {"chunked", "chunk_size"}
    checks = {
        # The paper's headline: "the tile size nb and chunking have the
        # strongest effect, while cache has the weakest."  Our model
        # attributes part of the layout signal to the chunk-size integer
        # (its 256/512 occupancy collapse is priced strongly), so the
        # check accepts either member of the layout family.
        "layout (chunking/chunk size) among the two strongest": bool(
            layout_family & set(strongest_two)
        ),
        "nb among the strongest": "nb" in strongest_two
        or tuning_only["nb"] >= sorted(tuning_only.values())[-3],
        "cache has the weakest effect": importance["cache_pref"]
        == min(importance.values()),
        "cache importance is ~zero or negative": importance["cache_pref"] < 2.0,
        "every physical knob clearly out-ranks cache": all(
            v > importance["cache_pref"] + 20 for k, v in tuning_only.items()
            if k != "cache_pref"
        ),
    }
    result = ExperimentResult(
        experiment="table1",
        title="Predictive power of tuning parameters (%IncMSE)",
        table=(
            ["parameter", "importance", "paper", "type", "explanation"],
            rows,
        ),
        checks=checks,
    )
    result.notes.append(
        "absolute %IncMSE values depend on forest size and dataset; the "
        "paper-vs-model comparison is about ordering, not magnitudes"
    )
    result.notes.append(
        "known divergence: the paper splits the layout signal as chunking "
        "157 / chunk-size 26, while the model attributes more of it to the "
        "chunk-size integer (its 256/512 thread-block collapse is a strong, "
        "permutable signal); both agree the layout family and nb dominate "
        "and the cache knob is noise"
    )
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
