"""Encoding study — the paper's categorical-encoding caveat, quantified.

Section IV: "we have a mix of parameters that are represented by discrete
(e.g., blocking factor) and categorical (e.g., unrolling) variables.  Each
class of these variables can be addressed independently by various machine
learning classifiers, but mixing them together poses some challenges.  For
starters, encoding of the categories may adversely influence the
classification outcome."

This experiment measures that influence for the one genuinely categorical
multi-valued variable — the ternary *looking* parameter — by fitting the
Section IV forest twice: once with the arbitrary ordinal coding
(left=0, right=1, top=2) and once with a one-hot expansion, then comparing
out-of-bag fit quality and the importance attributed to the variable.
"""

from __future__ import annotations

import numpy as np

from repro.autotune.dataset import FEATURE_NAMES, SweepDataset
from repro.experiments.common import ExperimentResult, standard_sweep
from repro.ml.encoding import expand_one_hot
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import mse, pearson_r

LOOKING_COLUMN = FEATURE_NAMES.index("looking")


def _fit(x: np.ndarray, y: np.ndarray, n_estimators: int, seed: int):
    forest = RandomForestRegressor(n_estimators=n_estimators, seed=seed).fit(x, y)
    oob = forest.oob_prediction()
    return forest, mse(y, oob), pearson_r(y, oob)


def run(
    sweep: SweepDataset | None = None,
    n_estimators: int = 120,
    seed: int = 0,
) -> ExperimentResult:
    sweep = sweep if sweep is not None else standard_sweep()
    dataset = sweep.filter(lambda r: not r.fast_math)
    x, y = dataset.feature_matrix()

    ordinal_forest, ordinal_mse, ordinal_r = _fit(x, y, n_estimators, seed)
    x_hot, hot_cols = expand_one_hot(x, LOOKING_COLUMN, n_categories=3)
    onehot_forest, onehot_mse, onehot_r = _fit(x_hot, y, n_estimators, seed)

    imp_ord = ordinal_forest.permutation_importance(seed=seed + 1)
    imp_hot = onehot_forest.permutation_importance(seed=seed + 1)
    looking_ord = float(imp_ord[LOOKING_COLUMN])
    # One-hot importance of the variable = sum over its indicator columns.
    looking_hot = float(sum(imp_hot[c] for c in hot_cols))

    rows = [
        ["ordinal", round(ordinal_mse, 2), round(ordinal_r, 4), round(looking_ord, 1)],
        ["one-hot", round(onehot_mse, 2), round(onehot_r, 4), round(looking_hot, 1)],
    ]
    ratio = max(ordinal_mse, onehot_mse) / min(ordinal_mse, onehot_mse)
    checks = {
        "both encodings model the landscape": ordinal_r > 0.9 and onehot_r > 0.9,
        # The paper's caveat, confirmed: the coding of a categorical
        # measurably influences the fit.  With the arbitrary ordinal order
        # (left=0, right=1, top=2), isolating `right` needs two splits,
        # so one-hot should fit at least as well.
        "encoding influences the outcome (the paper's caveat)": ratio > 1.02,
        "one-hot fits at least as well as the arbitrary ordinal": onehot_mse
        <= ordinal_mse * 1.02,
        "looking carries signal under both encodings": looking_ord > 0
        and looking_hot > 0,
    }
    result = ExperimentResult(
        experiment="encoding_study",
        title="Ordinal vs one-hot encoding of the looking ternary",
        table=(
            ["encoding", "OOB MSE", "OOB pearson r", "looking importance"],
            rows,
        ),
        checks=checks,
    )
    result.notes.append(
        f"MSE ratio between encodings: {ratio:.3f} (1.0 = no influence) — "
        "the paper's warning that 'encoding of the categories may adversely "
        "influence the classification outcome' is confirmed and quantified"
    )
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
