"""Figure 18: best performance with chunking, for different chunk sizes.

"It is important to observe that this parameter also defines the number
of threads in a thread block.  32 seems to be the best choice ... 64
performs almost equally well, but then the performance drops slightly for
128 and 256, and significantly for 512."
"""

from __future__ import annotations

import numpy as np

from repro.autotune.dataset import SweepDataset
from repro.experiments.common import ExperimentResult, standard_sweep
from repro.layouts.chunked import SUPPORTED_CHUNK_SIZES


def run(sweep: SweepDataset | None = None) -> ExperimentResult:
    sweep = sweep if sweep is not None else standard_sweep()
    series = {
        f"chunk={cs}": sweep.best_series(
            lambda r, cs=cs: r.chunked and r.chunk_size == cs
        )
        for cs in SUPPORTED_CHUNK_SIZES
    }
    ns = sorted(series["chunk=32"])

    def mean(cs: int) -> float:
        return float(np.mean([series[f"chunk={cs}"][n] for n in ns]))

    means = {cs: mean(cs) for cs in SUPPORTED_CHUNK_SIZES}
    checks = {
        "32 is the best choice": means[32] >= max(means.values()) * 0.999,
        "64 performs almost equally well": means[64] > 0.9 * means[32],
        "drops for 128 and 256": means[128] <= means[64] * 1.001
        and means[256] < means[64],
        "drops significantly for 512": means[512] < 0.8 * means[32],
    }
    result = ExperimentResult(
        experiment="fig18",
        title="Best performance with chunking, per chunk size (Gflop/s)",
        series=series,
        checks=checks,
    )
    result.notes.append(
        "mean best Gflop/s per chunk size: "
        + ", ".join(f"{cs}: {means[cs]:.0f}" for cs in SUPPORTED_CHUNK_SIZES)
    )
    return result


def main() -> None:  # pragma: no cover
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
