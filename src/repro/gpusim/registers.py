"""Register residency: an LRU allocation pass over kernel traces.

For *fully unrolled* kernels the compiler sees the whole factorization as
straight-line code and performs scalar replacement: a tile loaded once can
stay in registers across later operations, redundant loads disappear, and
intermediate stores become dead (only the final value of each tile needs
writing).  That is exactly why, in the paper, "for sizes smaller than 20,
tiling makes no difference, as the system is able to preserve data in
registers throughout the factorization" (Figure 15) and why this behaviour
"deteriorates between 20 and 40" — the register file runs out.

For *partially unrolled* kernels the outer loops index tiles with runtime
variables, so values cannot live past an iteration: every scheduled load
and store really happens.

This module models the fully unrolled case with a tile-granularity LRU
allocator: loads of resident tiles are free, stores mark tiles dirty
(write-back deferred), and capacity evictions write dirty victims back and
force later reloads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.schedule import TileOp


@dataclass(frozen=True)
class RegisterAllocation:
    """Result of the residency pass (element counts are per thread)."""

    load_elements: int  # loads that actually reach memory
    store_elements: int  # stores that actually reach memory
    spill_elements: int  # local-memory round trips from over-budget ops
    peak_live: int  # largest register working set reached (elements)
    eliminated_loads: int
    eliminated_stores: int

    @property
    def total_elements(self) -> int:
        return self.load_elements + self.store_elements + self.spill_elements


def _tile_size(op: TileOp) -> int:
    if op.kind in ("load_lower", "store_lower"):
        kb = op.shape[0]
        return kb * (kb + 1) // 2
    mb, nbc = op.shape
    return mb * nbc


def _compute_working_set(op: TileOp) -> int:
    """Register elements one compute op needs live simultaneously."""
    if op.kind == "potrf":
        kb = op.shape[0]
        return kb * (kb + 1) // 2
    if op.kind == "trsm":
        mb, kb = op.shape
        return mb * kb + kb * (kb + 1) // 2
    if op.kind == "syrk":
        mb, kb = op.shape
        return mb * (mb + 1) // 2 + mb * kb
    if op.kind == "gemm":
        mb, nb2, kb = op.shape
        return mb * nb2 + mb * kb + nb2 * kb
    raise ValueError(f"not a compute op: {op.kind!r}")


def scalar_replacement_efficiency(static_statements: int, window_statements: int) -> float:
    """Fraction of ideally-eliminable accesses the compiler actually removes.

    Scalar replacement over straight-line code is an all-pairs analysis;
    past a window of roughly ``window_statements`` statements the compiler
    stops finding (or stops being willing to keep live) the long-range
    reuses.  Modelled as a square-root decay — gentle at first, material
    for the ``n > 24`` fully unrolled kernels whose code runs to tens of
    thousands of statements.
    """
    if window_statements <= 0:
        raise ValueError(f"window must be positive, got {window_statements}")
    if static_statements <= window_statements:
        return 1.0
    return (window_statements / static_statements) ** 0.5


def compute_spill_elements(ops, budget_elements: int) -> int:
    """Local-memory traffic forced by compute ops exceeding the budget.

    When a compute op's live working set does not fit the register budget,
    the compiler spills the overflow to local memory; each excess element
    makes a store+load round trip per op execution.  This is what makes
    very large tiles (and whole-matrix-in-registers attempts past n ~ 22)
    collapse instead of merely levelling off.
    """
    if budget_elements <= 0:
        raise ValueError(f"budget must be positive, got {budget_elements}")
    spill = 0
    for op in ops:
        if op.is_memory:
            continue
        overflow = _compute_working_set(op) - budget_elements
        if overflow > 0:
            spill += 2 * overflow
    return spill


def allocate_registers(ops, budget_elements: int) -> RegisterAllocation:
    """Run the LRU residency pass over a flat tile-op schedule.

    Parameters
    ----------
    ops:
        The :class:`~repro.core.schedule.TileOp` sequence of one thread.
    budget_elements:
        Register budget available for tile data, in elements (one float32
        per 32-bit register).  The budget is clamped up to the largest
        single working set an individual operation needs — the compiler
        cannot spill the operands of the instruction it is executing.

    Notes
    -----
    Compute ops refresh the recency of their operand tiles so the LRU
    order reflects actual use, and mark their *target* tile dirty: the
    updated value lives in registers and must reach memory eventually
    even if the kernel's own store gets eliminated.
    """
    if budget_elements <= 0:
        raise ValueError(f"budget must be positive, got {budget_elements}")

    resident: OrderedDict[tuple, list] = OrderedDict()  # coord -> [size, dirty]
    live = 0
    peak_live = 0
    mem_loads = 0
    mem_stores = 0
    elim_loads = 0
    elim_stores = 0
    budget = budget_elements

    def touch(coord: tuple) -> None:
        if coord in resident:
            resident.move_to_end(coord)

    def evict_to(limit: int) -> None:
        nonlocal live, mem_stores
        while live > limit and resident:
            coord, (size, dirty) = next(iter(resident.items()))
            del resident[coord]
            live -= size
            if dirty:
                mem_stores += size

    for op in ops:
        if op.is_load:
            size = _tile_size(op)
            entry = resident.get(op.target)
            if entry is not None and entry[0] >= size:
                elim_loads += size  # already resident: the load is free
                touch(op.target)
                continue
            if entry is not None:
                live -= entry[0]
                del resident[op.target]
            if size > budget:
                # The tile cannot be register-cached at all: it streams
                # through on every access.
                mem_loads += size
                continue
            evict_to(budget - size)
            resident[op.target] = [size, False]
            live += size
            peak_live = max(peak_live, live)
            mem_loads += size
        elif op.is_store:
            size = _tile_size(op)
            entry = resident.get(op.target)
            if entry is not None:
                # Defer the write-back; it happens on eviction or at exit.
                entry[1] = True
                entry[0] = max(entry[0], size)
                touch(op.target)
                elim_stores += size
            else:
                mem_stores += size
        else:
            for coord in op.operands:
                touch(coord)
            entry = resident.get(op.target)
            if entry is not None:
                entry[1] = True
                touch(op.target)

    # Flush dirty tiles at kernel exit.
    for size, dirty in resident.values():
        if dirty:
            mem_stores += size

    return RegisterAllocation(
        load_elements=mem_loads,
        store_elements=mem_stores,
        spill_elements=compute_spill_elements(ops, budget),
        peak_live=peak_live,
        eliminated_loads=elim_loads,
        eliminated_stores=elim_stores,
    )
