"""Warp-level coalescing model (Section I.D of the paper).

A warp load is served by one 128-byte transaction per distinct cache line
its 32 lane addresses touch.  The *coalescing multiplier* of a layout is
the ratio of bytes actually transferred to bytes requested, averaged over
the elements of a matrix — 1.0 is perfect.

The multiplier is computed from concrete lane addresses produced by the
layout's own offset function (:mod:`repro.layouts.addressing`), not from a
formula per layout, so any future layout is priced automatically.
"""

from __future__ import annotations

from functools import lru_cache

from repro.layouts.addressing import (
    CACHE_LINE_BYTES,
    transactions_for_addresses,
    warp_byte_addresses,
)
from repro.layouts.base import WARP_SIZE, BatchSpec, Layout

#: Elements sampled per matrix when n*n is large (keeps sweeps fast while
#: remaining exact for the small matrices the paper studies).
_MAX_SAMPLED_ELEMENTS = 4096


def _elements_to_sample(n: int) -> list[tuple[int, int]]:
    coords = [(i, j) for j in range(n) for i in range(n)]
    if len(coords) <= _MAX_SAMPLED_ELEMENTS:
        return coords
    step = len(coords) // _MAX_SAMPLED_ELEMENTS
    return coords[::step]


@lru_cache(maxsize=512)
def _multiplier_cached(layout_name: str, batch: int, n: int, itemsize: int) -> float:
    from repro.layouts.base import get_layout

    layout = get_layout(layout_name)
    spec = BatchSpec(batch=batch, n=n, itemsize=itemsize)
    ideal_bytes = WARP_SIZE * itemsize
    total_ratio = 0.0
    coords = _elements_to_sample(n)
    # Warp 0 is representative: all interleaved layouts are periodic in the
    # warp index, and the canonical layout's pattern repeats every warp too.
    for i, j in coords:
        addrs = warp_byte_addresses(layout, spec, 0, i, j)
        tx = transactions_for_addresses(addrs)
        total_ratio += tx * CACHE_LINE_BYTES / ideal_bytes
    return total_ratio / len(coords)


def coalescing_multiplier(layout: Layout, spec: BatchSpec) -> float:
    """Average bytes-transferred over bytes-requested for warp accesses.

    1.0 for the interleaved layouts (any n); ``line_bytes / (warp * 4)``
    -fold waste in the worst case for the canonical layout with tiny
    matrices, where all 32 lanes hit different lines.
    """
    return _multiplier_cached(layout.name, spec.batch, spec.n, spec.itemsize)


def transactions_per_warp_access(layout: Layout, spec: BatchSpec) -> float:
    """Average 128-byte transactions one warp access needs under ``layout``."""
    mult = coalescing_multiplier(layout, spec)
    return mult * (WARP_SIZE * spec.itemsize) / CACHE_LINE_BYTES


def worst_case_multiplier(itemsize: int = 4) -> float:
    """Multiplier when every lane of a warp touches its own cache line.

    32 lanes fetching one 128-byte line each to serve ``itemsize`` bytes
    apiece transfer ``line/itemsize`` times the requested volume.
    """
    return CACHE_LINE_BYTES / itemsize
