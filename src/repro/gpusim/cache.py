"""Set-associative LRU cache simulator.

The paper observes that for large batches the caches "only serve the
purpose of streaming buffers" — the working set of 16384 small matrices is
tens of megabytes against a 4 MiB L2.  The ablation benchmark
(`benchmarks/bench_ablation_l2.py`) uses this simulator to *demonstrate*
that claim: L2 hit rates on kernel address streams collapse once the batch
outgrows the cache.

The simulator is deliberately exact (per-line LRU, configurable geometry),
because tests assert classic cache invariants against it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Access statistics accumulated by :class:`SetAssociativeCache`."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    Parameters
    ----------
    size_bytes:
        Total capacity; must be divisible by ``line_bytes * ways``.
    line_bytes:
        Cache-line size (128 for the modelled GPU's L2 granularity).
    ways:
        Associativity; ``ways >= num_lines`` makes the cache fully
        associative.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 128, ways: int = 16) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry parameters must be positive")
        if size_bytes % line_bytes:
            raise ValueError(
                f"size {size_bytes} not divisible by line size {line_bytes}"
            )
        num_lines = size_bytes // line_bytes
        ways = min(ways, num_lines)
        if num_lines % ways:
            raise ValueError(
                f"{num_lines} lines not divisible by associativity {ways}"
            )
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = num_lines // ways
        #: per-set OrderedDict of resident tags (LRU order: oldest first)
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    @property
    def size_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_bytes

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        if address < 0:
            raise ValueError(f"address must be nonnegative, got {address}")
        line = address // self.line_bytes
        set_index = line % self.num_sets
        tag = line // self.num_sets
        target = self._sets[set_index]
        self.stats.accesses += 1
        if tag in target:
            target.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(target) >= self.ways:
            target.popitem(last=False)
            self.stats.evictions += 1
        target[tag] = None
        return False

    def access_all(self, addresses) -> int:
        """Touch many addresses; returns the number of hits."""
        return sum(1 for a in addresses if self.access(int(a)))

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(s) for s in self._sets)

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> None:
        """Invalidate all lines and reset statistics."""
        for s in self._sets:
            s.clear()
        self.reset_stats()
