"""End-to-end performance model: kernel trace -> seconds -> Gflop/s.

The model is a wave/roofline hybrid driven entirely by quantities derived
from the *actual generated kernel*:

1. The dynamic tile-op schedule gives exact per-thread memory traffic and
   operation mix; for fully unrolled kernels the register-residency pass
   (:mod:`repro.gpusim.registers`) removes the loads/stores the compiler's
   scalar replacement eliminates.
2. Occupancy follows from the register demand and the thread-block size
   (= chunk size), including forced spilling for oversized blocks.
3. Memory time = bytes moved / achievable bandwidth, where achievable
   bandwidth is peak x coalescing x DRAM row locality, capped by Little's
   law (outstanding bytes / latency) at low occupancy.
4. Compute time prices the per-thread issue stream (with IEEE or
   fast-math divide/sqrt costs) over the resident warps, degraded by the
   instruction-fetch factor for oversized fully unrolled code.
5. Kernel time = max(memory, compute) + launch overhead.

Gflop/s always uses the paper's nominal ``n^3/3`` flop count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import KernelConfig, Unrolling
from repro.core.trace import KernelTrace, build_trace
from repro.gpusim.arch import GPUArchitecture, P100
from repro.gpusim.coalescing import coalescing_multiplier
from repro.gpusim.dram import layout_locality_factor
from repro.gpusim.icache import icache_throughput_factor
from repro.gpusim.occupancy import Occupancy, compute_occupancy
from repro.gpusim.pipeline import issue_efficiency, thread_cycles
from repro.gpusim.registers import (
    allocate_registers,
    compute_spill_elements,
    scalar_replacement_efficiency,
)
from repro.layouts.base import BatchSpec
from repro.utils.flops import cholesky_flops


@dataclass(frozen=True)
class PerfEstimate:
    """Modelled execution of one batch kernel launch."""

    config: KernelConfig
    batch: int
    seconds: float
    gflops: float
    # breakdown
    mem_seconds: float
    compute_seconds: float
    overhead_seconds: float
    bytes_moved: float
    achievable_bandwidth_gbs: float
    locality_factor: float
    coalescing: float
    icache_factor: float
    issue_eff: float
    occupancy: Occupancy
    load_elements_per_thread: int
    store_elements_per_thread: int
    spill_elements_per_thread: int

    @property
    def bound(self) -> str:
        """Which term dominates: ``"memory"`` or ``"compute"``."""
        return "memory" if self.mem_seconds >= self.compute_seconds else "compute"


#: (config.cache_key(), arch.name) -> _register_demand result; the pass
#: walks the full trace (hundreds of thousands of ops for nb=1 kernels)
#: and is identical across the 12 chunking/cache variants sharing a trace.
_DEMAND_CACHE: dict[tuple, tuple] = {}


def _register_demand(trace: KernelTrace, config: KernelConfig, arch: GPUArchitecture):
    """(regs_demand, load_elems, store_elems, spill_elems) for the model.

    Fully unrolled kernels get the residency pass (with the per-thread
    register budget); partially unrolled kernels keep three live tiles and
    perform every scheduled access.  Both pay local-memory spill traffic
    for compute ops whose working set exceeds the budget.
    """
    key = (config.trace_key(), arch.name)
    hit = _DEMAND_CACHE.get(key)
    if hit is not None:
        return hit
    result = _register_demand_uncached(trace, config, arch)
    _DEMAND_CACHE[key] = result
    return result


def _register_demand_uncached(
    trace: KernelTrace, config: KernelConfig, arch: GPUArchitecture
):
    rpe = config.regs_per_element
    budget = (arch.max_registers_per_thread - arch.register_overhead) // rpe
    if config.unroll is Unrolling.FULL:
        alloc = allocate_registers(trace.ops, budget)
        demand = min(
            alloc.peak_live * rpe + arch.register_overhead,
            arch.max_registers_per_thread,
        )
        # The ideal-LRU elimination is tempered by how much straight-line
        # code the compiler can actually analyse (Section III: "the number
        # of instructions overwhelm the compiler").
        eff = scalar_replacement_efficiency(
            trace.static_statements, arch.scalar_window_statements
        )
        missed_loads = int(round(alloc.eliminated_loads * (1.0 - eff)))
        missed_stores = int(round(alloc.eliminated_stores * (1.0 - eff)))
        return (
            demand,
            alloc.load_elements + missed_loads,
            alloc.store_elements + missed_stores,
            alloc.spill_elements,
        )
    nb = config.effective_nb
    demand = 3 * nb * nb * rpe + arch.register_overhead
    spill = compute_spill_elements(trace.ops, budget)
    return demand, trace.load_elements, trace.store_elements, spill


def estimate_solve_performance(
    n: int,
    nrhs: int = 1,
    batch: int = 16384,
    chunked: bool = True,
    chunk_size: int = 32,
    fast_math: bool = False,
    arch: GPUArchitecture = P100,
):
    """Model one generated batch-solve launch (forward + backward subst.).

    Returns ``(seconds, gflops)`` with the nominal ``2 n^2 nrhs`` flop
    convention for a triangular solve pair.  The machinery mirrors
    :func:`estimate_performance`: same occupancy, coalescing (perfect for
    interleaved layouts), DRAM locality and issue model, fed by the solve
    kernel's exact trace.
    """
    from repro.codegen.solvekernel import generate_solve_source
    from repro.gpusim.occupancy import compute_occupancy as _occ

    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    kernel = generate_solve_source(n, nrhs)
    layout_cfg = KernelConfig(
        n=n, chunked=chunked, chunk_size=chunk_size, fast_math=fast_math
    )
    layout = layout_cfg.layout()
    spec = BatchSpec(batch=batch, n=n, itemsize=4)
    block_threads = layout_cfg.block_threads
    padded = -(-batch // block_threads) * block_threads
    total_blocks = padded // block_threads
    warps_per_block = block_threads // arch.warp_size

    regs = min(arch.max_registers_per_thread, n * nrhs + arch.register_overhead)
    occ = _occ(arch, regs, block_threads, total_blocks)

    locality = layout_locality_factor(layout, spec, arch)
    weighted = kernel.load_elements + arch.write_cost_factor * kernel.store_elements
    bytes_total = weighted * spec.itemsize * padded
    peak_bw = arch.dram_bandwidth_gbs * 1e9
    in_flight = (
        occ.warps_per_sm * occ.active_sms * arch.warp_size * arch.mlp_per_thread * 4
    )
    bw = max(1.0, min(peak_bw * locality, in_flight / arch.mem_latency_s))
    mem_seconds = bytes_total / bw

    cycles = thread_cycles(
        kernel.ops, kernel.load_elements + kernel.store_elements, fast_math, arch
    )
    eff = issue_efficiency(occ.warps_per_sm, arch)
    warps_assigned = -(-total_blocks // occ.active_sms) * warps_per_block
    compute_seconds = cycles * warps_assigned / (
        (arch.issue_rate_per_sm / arch.warp_size) * arch.clock_ghz * 1e9 * eff
    )
    seconds = max(mem_seconds, compute_seconds) + arch.launch_overhead_s
    gflops = 2.0 * n * n * nrhs * batch / seconds / 1e9
    return seconds, gflops


def estimate_performance(
    config: KernelConfig,
    batch: int = 16384,
    arch: GPUArchitecture = P100,
) -> PerfEstimate:
    """Model the execution of ``config`` on a batch of ``batch`` matrices."""
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    trace = build_trace(config)
    layout = config.layout()
    spec = BatchSpec(batch=batch, n=config.n, itemsize=config.itemsize)

    # --- launch geometry -------------------------------------------------
    block_threads = config.block_threads
    padded = -(-batch // block_threads) * block_threads
    total_blocks = padded // block_threads
    warps_per_block = block_threads // arch.warp_size

    # --- registers & occupancy ------------------------------------------
    demand, load_elems, store_elems, spill_elems = _register_demand(trace, config, arch)
    occ = compute_occupancy(arch, demand, block_threads, total_blocks)
    spill_elems += occ.spilled_regs * 2  # statically demoted registers

    # --- memory side ------------------------------------------------------
    coal = coalescing_multiplier(layout, spec)
    locality = layout_locality_factor(layout, spec, arch)
    weighted_elems = (
        load_elems + arch.write_cost_factor * store_elems
    ) * coal + spill_elems * (1.0 + arch.write_cost_factor) / 2.0
    bytes_per_thread = weighted_elems * spec.itemsize
    bytes_total = bytes_per_thread * padded

    peak_bw = arch.dram_bandwidth_gbs * 1e9
    stream_bw = peak_bw * locality
    in_flight = (
        occ.warps_per_sm * occ.active_sms * arch.warp_size * arch.mlp_per_thread * spec.itemsize
    )
    latency_bw = in_flight / arch.mem_latency_s
    achievable_bw = max(1.0, min(stream_bw, latency_bw))
    mem_seconds = bytes_total / achievable_bw

    # --- compute side -----------------------------------------------------
    cycles = thread_cycles(
        trace.counts.mix,
        load_elems + store_elems + spill_elems,
        config.fast_math,
        arch,
    )
    ic_factor = (
        icache_throughput_factor(trace.static_statements, arch)
        if config.unroll is Unrolling.FULL
        else 1.0
    )
    eff = issue_efficiency(occ.warps_per_sm, arch)
    warp_issue_rate = arch.issue_rate_per_sm / arch.warp_size  # warp-instr/cycle
    if config.itemsize == 8:
        warp_issue_rate *= arch.fp64_rate_fraction
    warps_assigned = -(-total_blocks // occ.active_sms) * warps_per_block
    clock_hz = arch.clock_ghz * 1e9
    compute_seconds = (
        cycles * warps_assigned / (warp_issue_rate * clock_hz * eff * ic_factor)
    )

    # --- combine ----------------------------------------------------------
    seconds = max(mem_seconds, compute_seconds) + arch.launch_overhead_s
    gflops = cholesky_flops(config.n) * batch / seconds / 1e9

    return PerfEstimate(
        config=config,
        batch=batch,
        seconds=seconds,
        gflops=gflops,
        mem_seconds=mem_seconds,
        compute_seconds=compute_seconds,
        overhead_seconds=arch.launch_overhead_s,
        bytes_moved=bytes_total,
        achievable_bandwidth_gbs=achievable_bw / 1e9,
        locality_factor=locality,
        coalescing=coal,
        icache_factor=ic_factor,
        issue_eff=eff,
        occupancy=occ,
        load_elements_per_thread=load_elems,
        store_elements_per_thread=store_elems,
        spill_elements_per_thread=spill_elems,
    )
