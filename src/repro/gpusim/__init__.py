"""Trace-driven analytic performance model of a P100-class GPU.

The paper's results were measured on an NVIDIA P100 (Pascal) with CUDA 8.0
— hardware this reproduction does not have.  Instead of timing Python (which
would reflect NumPy dispatch, not GPU behaviour), every experiment prices
the *actual generated kernel's* trace with this model, which implements the
mechanisms the paper attributes its findings to:

* **Coalescing** (:mod:`~repro.gpusim.coalescing`) — warp accesses to
  layout addresses become 128-byte transactions; interleaved layouts
  coalesce perfectly, the canonical layout degrades as matrices shrink.
* **DRAM row-buffer locality** (:mod:`~repro.gpusim.dram`) — the stride
  between a matrix's consecutive elements (4·chunk bytes when chunked,
  4·batch when not) determines row-hit rates; this is the chunking effect
  of Figures 17 and 18.
* **Register residency** (:mod:`~repro.gpusim.registers`) — an LRU
  register-allocation pass over the trace models the compiler keeping
  tiles in registers across fully unrolled code; for n ≲ 20 the whole
  matrix stays resident, which is why tiling and looking stop mattering
  there (Figures 15, 16, 19).
* **Occupancy** (:mod:`~repro.gpusim.occupancy`) — registers/thread and
  the thread-block size (= chunk size) bound blocks per SM; large chunks
  quantise occupancy coarsely and spill (Figure 18's 512 collapse).
* **Instruction-cache pressure** (:mod:`~repro.gpusim.icache`) — fully
  unrolled kernels past n ≈ 20 exceed the fetch working set (Figure 19).
* **Pipeline costs** (:mod:`~repro.gpusim.pipeline`) — IEEE-compliant
  square root and division are multi-instruction sequences; with
  ``--use_fast_math`` they become cheap SFU approximations (Figure 13).

:mod:`~repro.gpusim.model` combines them into seconds and Gflop/s.
"""

from repro.gpusim.arch import GPUArchitecture, P100
from repro.gpusim.coalescing import coalescing_multiplier
from repro.gpusim.cache import SetAssociativeCache
from repro.gpusim.dram import row_locality_factor
from repro.gpusim.registers import RegisterAllocation, allocate_registers
from repro.gpusim.occupancy import Occupancy, compute_occupancy
from repro.gpusim.icache import icache_throughput_factor
from repro.gpusim.pipeline import thread_cycles
from repro.gpusim.model import PerfEstimate, estimate_performance

__all__ = [
    "GPUArchitecture",
    "P100",
    "coalescing_multiplier",
    "SetAssociativeCache",
    "row_locality_factor",
    "RegisterAllocation",
    "allocate_registers",
    "Occupancy",
    "compute_occupancy",
    "icache_throughput_factor",
    "thread_cycles",
    "PerfEstimate",
    "estimate_performance",
]
