"""Bottleneck attribution: explain *why* a configuration performs as it does.

Autotuner users rarely want a number; they want to know what to change.
:func:`explain` turns one :class:`~repro.gpusim.model.PerfEstimate` into a
ranked list of limiting factors with concrete, configuration-level
suggestions — the model's mechanisms translated back into the paper's
tuning vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import KernelConfig
from repro.gpusim.arch import GPUArchitecture, P100
from repro.gpusim.model import PerfEstimate, estimate_performance


@dataclass(frozen=True)
class Finding:
    """One limiting factor, with its estimated impact and a suggestion."""

    factor: str
    impact: float  # fraction of ideal performance lost to this factor (0..1)
    detail: str
    suggestion: str


def diagnose(est: PerfEstimate, arch: GPUArchitecture = P100) -> list[Finding]:
    """Ranked limiting factors of one modelled launch."""
    findings: list[Finding] = []
    config = est.config
    occ = est.occupancy

    # --- memory-side losses ----------------------------------------------
    if est.coalescing > 1.01:
        findings.append(
            Finding(
                factor="coalescing",
                impact=1.0 - 1.0 / est.coalescing,
                detail=f"warp accesses transfer {est.coalescing:.1f}x the bytes they use",
                suggestion="use an interleaved layout (chunked or simple)",
            )
        )
    if est.locality_factor < 0.99:
        findings.append(
            Finding(
                factor="dram locality",
                impact=1.0 - est.locality_factor,
                detail=(
                    f"strided element walk achieves {est.locality_factor:.0%} of "
                    "peak DRAM bandwidth"
                ),
                suggestion=(
                    "enable chunking with a small chunk (32/64)"
                    if not config.chunked
                    else "reduce the chunk size toward 32"
                ),
            )
        )
    peak_bw = arch.dram_bandwidth_gbs
    if est.achievable_bandwidth_gbs < 0.9 * peak_bw * est.locality_factor:
        findings.append(
            Finding(
                factor="latency bound",
                impact=1.0
                - est.achievable_bandwidth_gbs / (peak_bw * est.locality_factor),
                detail=(
                    f"only {occ.warps_per_sm:.1f} warps/SM in flight — "
                    f"{est.achievable_bandwidth_gbs:.0f} of "
                    f"{peak_bw * est.locality_factor:.0f} GB/s reachable"
                ),
                suggestion="increase the batch size (more matrices = more warps)",
            )
        )

    # --- traffic volume ----------------------------------------------------
    compulsory = config.n * (config.n + 1)  # one sweep in + out, elements
    moved = est.load_elements_per_thread + est.store_elements_per_thread
    if moved > 2.5 * compulsory:
        findings.append(
            Finding(
                factor="register reuse",
                impact=1.0 - compulsory / moved,
                detail=(
                    f"{moved} elements moved per matrix vs ~{compulsory} compulsory"
                ),
                suggestion=(
                    "increase nb for more register-tile reuse"
                    if config.effective_nb < 8
                    else "try full unrolling (register residency) if n <= ~24"
                ),
            )
        )
    if est.spill_elements_per_thread > 0:
        findings.append(
            Finding(
                factor="register spills",
                impact=min(1.0, est.spill_elements_per_thread / max(1, moved)),
                detail=f"{est.spill_elements_per_thread} spill round-trips per thread",
                suggestion="reduce nb or the chunk (block) size",
            )
        )

    # --- compute-side losses -----------------------------------------------
    if est.icache_factor < 0.99:
        findings.append(
            Finding(
                factor="instruction fetch",
                impact=1.0 - est.icache_factor,
                detail="fully unrolled code exceeds the fetch working set",
                suggestion="switch to partial unrolling",
            )
        )
    if est.bound == "compute" and not config.fast_math:
        fast = estimate_performance(
            config.with_(fast_math=True), batch=est.batch, arch=arch
        )
        if fast.gflops > 1.05 * est.gflops:
            findings.append(
                Finding(
                    factor="ieee arithmetic",
                    impact=1.0 - est.gflops / fast.gflops,
                    detail="IEEE divide/sqrt sequences dominate the issue stream",
                    suggestion="compile with --use_fast_math if accuracy permits",
                )
            )
    if occ.active_sms < arch.sms:
        findings.append(
            Finding(
                factor="idle SMs",
                impact=1.0 - occ.active_sms / arch.sms,
                detail=f"launch fills only {occ.active_sms} of {arch.sms} SMs",
                suggestion="reduce the chunk (block) size or increase the batch",
            )
        )

    findings.sort(key=lambda f: f.impact, reverse=True)
    return findings


def explain(
    config: KernelConfig, batch: int = 16384, arch: GPUArchitecture = P100
) -> str:
    """Human-readable bottleneck report for one configuration."""
    est = estimate_performance(config, batch=batch, arch=arch)
    lines = [
        f"{config.describe()}  @ batch {batch}",
        f"  {est.gflops:.0f} Gflop/s, {est.bound}-bound "
        f"(mem {est.mem_seconds * 1e6:.1f} us, compute "
        f"{est.compute_seconds * 1e6:.1f} us)",
    ]
    findings = diagnose(est, arch)
    if not findings:
        lines.append("  no significant losses identified — near the model's ceiling")
    for f in findings:
        lines.append(
            f"  [{f.impact:5.1%}] {f.factor}: {f.detail}\n"
            f"           -> {f.suggestion}"
        )
    return "\n".join(lines)
