"""Instruction pipeline costs: issue cycles per thread.

Prices one thread's dynamic instruction stream in issue slots:

* multiply-adds and multiplies — one slot each (single FP32 instruction);
* loads/stores — one slot per element access (the LDG/STG instruction;
  the memory system cost is modelled separately);
* divisions and square roots — IEEE-compliant versions compile to
  multi-instruction software sequences, ``--use_fast_math`` versions to
  short SFU-based approximations.  This asymmetry is the entire
  Figure-13 IEEE-vs-fast-math effect.
"""

from __future__ import annotations

from repro.gpusim.arch import GPUArchitecture
from repro.utils.opmix import OpMixCounter

#: Extra issue cycles per spilled register per dynamic kernel pass —
#: spilled values bounce through local memory (one load + one store).
SPILL_CYCLES_PER_REG = 2.0


def thread_cycles(
    mix: OpMixCounter,
    mem_elements: int,
    fast_math: bool,
    arch: GPUArchitecture,
    spilled_regs: int = 0,
) -> float:
    """Issue slots one thread needs for its whole kernel execution.

    Parameters
    ----------
    mix:
        Scalar-operation counts of the kernel trace.
    mem_elements:
        Elements actually moved to/from memory (after any register
        residency pass) — each is one memory instruction to issue.
    fast_math:
        Selects the IEEE or fast-math cost of divisions and square roots.
    spilled_regs:
        Per-thread registers demoted to local memory; each costs
        additional traffic instructions.
    """
    if mem_elements < 0:
        raise ValueError(f"mem_elements must be nonnegative, got {mem_elements}")
    if spilled_regs < 0:
        raise ValueError(f"spilled_regs must be nonnegative, got {spilled_regs}")
    cycles = float(mix.fma + mix.mul)
    cycles += mix.div * arch.div_cycles(fast_math)
    cycles += mix.sqrt * arch.sqrt_cycles(fast_math)
    cycles += mem_elements * arch.mem_issue_cycles
    cycles += spilled_regs * SPILL_CYCLES_PER_REG
    return cycles


def issue_efficiency(warps_per_sm: float, arch: GPUArchitecture) -> float:
    """Fraction of peak issue rate achieved at a given occupancy.

    The schedulers need enough eligible warps to cover ALU latency; below
    ``issue_saturation_warps`` per SM, throughput scales roughly linearly.
    The unrolled straight-line kernels carry high instruction-level
    parallelism, so a modest floor applies even for a single warp.
    """
    if warps_per_sm < 0:
        raise ValueError(f"warps_per_sm must be nonnegative, got {warps_per_sm}")
    if warps_per_sm == 0:
        return 0.0
    frac = warps_per_sm / arch.issue_saturation_warps
    return min(1.0, max(0.20, frac))
