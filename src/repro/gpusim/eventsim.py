"""Event-driven warp-level simulator — a cross-check for the analytic model.

The analytic model (:mod:`repro.gpusim.model`) collapses an entire launch
into closed-form memory and issue terms.  This module simulates the same
launch explicitly: warps hold per-thread tile-op cursors, an SM interleaves
its resident warps cycle by cycle, memory operations occupy a bandwidth-
limited memory subsystem with a fixed latency, and compute operations
occupy issue slots.  It is deliberately simple (in-order warps, one
outstanding memory batch per warp, no divergence — the kernels have none)
but shares *no arithmetic* with the analytic model, so agreement between
the two is meaningful evidence that neither has a bookkeeping bug.

Complexity is O(events), so use it for reduced launches (a few SMs' worth
of blocks); the ablation benchmark compares both models over a grid and
asserts they agree within a factor of two — the right expectation for an
analytic model versus a discrete simulation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.config import KernelConfig, Unrolling
from repro.core.trace import build_trace
from repro.gpusim.arch import GPUArchitecture, P100
from repro.gpusim.occupancy import compute_occupancy
from repro.obs.tracer import get_tracer
from repro.utils.flops import cholesky_flops


@dataclass
class _Warp:
    """One warp's progress through its instruction segments."""

    segments: list[tuple[str, float]]  # ("compute", cycles) / ("mem", bytes)
    index: int = 0
    ready_at: float = 0.0  # cycle at which the warp can issue again

    @property
    def done(self) -> bool:
        return self.index >= len(self.segments)


def _warp_segments(config: KernelConfig, arch: GPUArchitecture) -> list[tuple[str, float]]:
    """Compile the kernel trace into alternating compute/memory segments.

    Each tile op becomes one segment: memory ops move their element bytes
    (x32 lanes), compute ops occupy their issue cycles.  For fully
    unrolled kernels the register-residency pass prunes eliminated
    accesses first, replaying its decisions op by op.
    """
    trace = build_trace(config)
    itemsize = config.itemsize
    segments: list[tuple[str, float]] = []

    if config.unroll is Unrolling.FULL:
        budget = (arch.max_registers_per_thread - arch.register_overhead) // (
            config.regs_per_element
        )
        # Re-run the allocator to learn the per-op hit/miss pattern: we
        # replay it here with the same LRU rules to tag each memory op.
        from collections import OrderedDict

        resident: OrderedDict[tuple, list] = OrderedDict()
        live = 0

        def tile_elems(op):
            if op.kind in ("load_lower", "store_lower"):
                kb = op.shape[0]
                return kb * (kb + 1) // 2
            return op.shape[0] * op.shape[1]

        for op in trace.ops:
            if op.is_load:
                size = tile_elems(op)
                entry = resident.get(op.target)
                if entry is not None and entry[0] >= size:
                    resident.move_to_end(op.target)
                    continue  # register hit: no memory segment
                if entry is not None:
                    live -= entry[0]
                    del resident[op.target]
                if size <= budget:
                    while live + size > budget and resident:
                        coord, (esize, dirty) = next(iter(resident.items()))
                        del resident[coord]
                        live -= esize
                        if dirty:
                            segments.append(("mem", esize * itemsize * arch.warp_size))
                    resident[op.target] = [size, False]
                    live += size
                segments.append(("mem", size * itemsize * arch.warp_size))
            elif op.is_store:
                entry = resident.get(op.target)
                if entry is not None:
                    entry[1] = True
                    resident.move_to_end(op.target)
                else:
                    segments.append(("mem", tile_elems(op) * itemsize * arch.warp_size))
            else:
                ops = op.ops
                cycles = float(ops.fma + ops.mul)
                cycles += ops.div * arch.div_cycles(config.fast_math)
                cycles += ops.sqrt * arch.sqrt_cycles(config.fast_math)
                segments.append(("compute", cycles))
        for size, dirty in resident.values():
            if dirty:
                segments.append(("mem", size * itemsize * arch.warp_size))
    else:
        for op in trace.ops:
            if op.is_memory:
                segments.append(("mem", op.elems * itemsize * arch.warp_size))
            else:
                ops = op.ops
                cycles = float(ops.fma + ops.mul)
                cycles += ops.div * arch.div_cycles(config.fast_math)
                cycles += ops.sqrt * arch.sqrt_cycles(config.fast_math)
                segments.append(("compute", cycles))
    return segments


@dataclass(frozen=True)
class EventSimResult:
    """Outcome of one simulated launch."""

    seconds: float
    gflops: float
    cycles: float
    mem_bytes: float
    issue_busy_cycles: float


def simulate_launch(
    config: KernelConfig,
    batch: int,
    arch: GPUArchitecture = P100,
) -> EventSimResult:
    """Simulate one batch launch warp by warp.

    One SM is simulated carrying its fair share of the launch's warps
    (launches are homogeneous, so SMs finish together); memory bandwidth
    is the SM's fair share of DRAM bandwidth.
    """
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    tracer = get_tracer()
    wall_t0 = tracer.now() if tracer.enabled else 0.0
    block_threads = config.block_threads
    padded = -(-batch // block_threads) * block_threads
    total_blocks = padded // block_threads
    warps_per_block = block_threads // arch.warp_size

    demand = 3 * config.effective_nb**2 * config.regs_per_element + arch.register_overhead
    occ = compute_occupancy(arch, demand, block_threads, total_blocks)
    resident_warps = max(1, int(round(occ.warps_per_sm)))
    active_sms = occ.active_sms
    my_blocks = -(-total_blocks // active_sms)
    my_warps_total = my_blocks * warps_per_block

    base_segments = _warp_segments(config, arch)
    clock_hz = arch.clock_ghz * 1e9
    bw_per_sm = arch.dram_bandwidth_gbs * 1e9 / active_sms  # bytes/s fair share
    bytes_per_cycle = bw_per_sm / clock_hz
    mem_latency_cycles = arch.mem_latency_s * clock_hz
    issue_rate = arch.issue_rate_per_sm / arch.warp_size  # warp-instr/cycle
    if config.itemsize == 8:
        issue_rate *= arch.fp64_rate_fraction

    now = 0.0
    mem_free_at = 0.0  # memory pipe busy-until (bandwidth occupancy)
    issue_free_at = 0.0  # issue pipe busy-until (shared by resident warps)
    issue_busy = 0.0
    mem_bytes = 0.0
    remaining = my_warps_total
    # Active warps round-robin; finished ones are replaced while work remains.
    heap: list[tuple[float, int]] = []
    warps: dict[int, _Warp] = {}
    next_id = 0
    for _ in range(min(resident_warps, remaining)):
        warps[next_id] = _Warp(segments=base_segments)
        heapq.heappush(heap, (0.0, next_id))
        next_id += 1
        remaining -= 1

    while heap:
        now, wid = heapq.heappop(heap)
        warp = warps[wid]
        if warp.done:
            del warps[wid]
            if remaining > 0:
                warps[next_id] = _Warp(segments=base_segments)
                heapq.heappush(heap, (now, next_id))
                next_id += 1
                remaining -= 1
            continue
        kind, amount = warp.segments[warp.index]
        warp.index += 1
        if kind == "compute":
            # The SM's schedulers are a shared pipe: this segment occupies
            # issue slots for amount/issue_rate cycles, queueing behind
            # whatever the other resident warps already issued.
            busy = amount / issue_rate
            start = max(now, issue_free_at)
            issue_free_at = start + busy
            issue_busy += busy
            heapq.heappush(heap, (start + busy, wid))
        else:
            mem_bytes += amount
            start = max(now, mem_free_at)
            transfer = amount / bytes_per_cycle
            mem_free_at = start + transfer
            finish = start + transfer + mem_latency_cycles
            heapq.heappush(heap, (finish, wid))

    total_cycles = max(now, mem_free_at)
    seconds = total_cycles / clock_hz + arch.launch_overhead_s
    gflops = cholesky_flops(config.n) * batch / seconds / 1e9
    if tracer.enabled:
        tracer.record(
            "eventsim",
            wall_t0,
            tracer.now(),
            cat="gpusim",
            track="eventsim",
            n=config.n,
            batch=batch,
            modeled_us=seconds * 1e6,
            gflops=gflops,
        )
    return EventSimResult(
        seconds=seconds,
        gflops=gflops,
        cycles=total_cycles,
        mem_bytes=mem_bytes * active_sms,
        issue_busy_cycles=issue_busy,
    )
