"""DRAM row-buffer locality model — the mechanism behind chunking.

The paper's explanation for Figure 17 ("the spatial locality principle
takes effect at some level of the memory hierarchy") is made concrete
here.  Inside one thread block, the kernel walks a matrix's elements in
ascending element id; under an interleaved layout, consecutive element
ids are ``itemsize * group`` bytes apart, where *group* is the chunk size
(chunked layout) or the whole padded batch (simple layout):

* chunk 32  → 128-byte stride: eight consecutive accesses per 1 KiB DRAM
  row → high row-hit rate;
* chunk 512 → 2 KiB stride: every access opens a new row;
* no chunking at batch 16384 → 64 KiB stride: every access opens a new
  row *and* the footprint sweeps pages so fast that address translation
  stops helping, which is the extra penalty the far-stride floor models.

Row hits stream at full bandwidth; row misses pay activate/precharge and
are additionally constrained by bank parallelism, summarised as a fixed
efficiency factor.
"""

from __future__ import annotations

from repro.gpusim.arch import GPUArchitecture
from repro.layouts.addressing import matrix_element_stride_bytes
from repro.layouts.base import BatchSpec, Layout

#: Stride beyond which the additional far-stride (TLB) penalty applies.
FAR_STRIDE_BYTES = 16 * 1024


def row_locality_factor(stride_bytes: int, arch: GPUArchitecture) -> float:
    """Achievable fraction of peak DRAM bandwidth for a strided walk.

    ``stride_bytes`` is the distance between consecutively accessed
    128-byte transactions.  The return value multiplies peak bandwidth.
    """
    if stride_bytes <= 0:
        raise ValueError(f"stride must be positive, got {stride_bytes}")
    row = arch.dram_row_bytes
    if stride_bytes <= arch.line_bytes:
        # Consecutive transactions touch adjacent lines: pure streaming.
        return 1.0
    if stride_bytes >= row:
        # Every transaction opens a row; very large strides also defeat
        # address translation.
        if stride_bytes >= FAR_STRIDE_BYTES:
            return arch.far_stride_efficiency
        return arch.row_miss_efficiency
    # Partial locality: a 1 KiB row serves row/stride transactions before
    # the walk leaves it.
    hit_rate = 1.0 - stride_bytes / row
    return hit_rate + (1.0 - hit_rate) * arch.row_miss_efficiency


def layout_locality_factor(layout: Layout, spec: BatchSpec, arch: GPUArchitecture) -> float:
    """Row-locality factor for a batch layout, from its real element stride."""
    stride = matrix_element_stride_bytes(layout, spec)
    if stride <= spec.itemsize:
        # Canonical layout: elements of one matrix are contiguous.
        return 1.0
    return row_locality_factor(stride, arch)
