"""Occupancy: how many blocks and warps an SM can host.

The chunk size doubles as the thread-block size in the paper's kernels,
"It is important to observe that this parameter also defines the number of
threads in a thread block" (Figure 18).  Occupancy is bounded by three
per-SM limits — thread count, block slots, and the register file — and by
the total amount of work: a 16384-matrix batch is only 512 warps, far less
than 56 SMs can nominally hold, so the machine usually runs at low
occupancy regardless.

When even a single block's registers exceed the register file, the
compiler must lower the per-thread register count to fit, and the overflow
spills to local memory — that collapse is what makes 512-thread chunks
slow in Figure 18.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.arch import GPUArchitecture


@dataclass(frozen=True)
class Occupancy:
    """Occupancy outcome for one kernel launch."""

    regs_per_thread: int  # after any forced lowering
    spilled_regs: int  # per-thread registers that had to spill
    blocks_per_sm: int  # hardware limit (not counting available work)
    warps_per_sm: float  # actually resident, including the work limit
    active_sms: int
    limited_by: str  # "threads" | "blocks" | "registers" | "work"

    @property
    def occupancy_fraction(self) -> float:
        """Resident warps over the hardware maximum (64 on the P100)."""
        return self.warps_per_sm / 64.0


def _round_regs(regs: int, arch: GPUArchitecture) -> int:
    unit = arch.register_alloc_unit
    return -(-max(regs, 32) // unit) * unit


def compute_occupancy(
    arch: GPUArchitecture,
    regs_per_thread: int,
    block_threads: int,
    total_blocks: int,
) -> Occupancy:
    """Occupancy of a launch of ``total_blocks`` blocks of ``block_threads``.

    ``regs_per_thread`` is the kernel's demand before hardware caps; it is
    rounded to the allocation unit and clamped to the per-thread maximum
    (demand beyond the cap spills).
    """
    if block_threads <= 0 or block_threads % arch.warp_size:
        raise ValueError(
            f"block_threads must be a positive multiple of {arch.warp_size}, "
            f"got {block_threads}"
        )
    if total_blocks <= 0:
        raise ValueError(f"total_blocks must be positive, got {total_blocks}")

    demand = _round_regs(regs_per_thread, arch)
    spilled = 0
    if demand > arch.max_registers_per_thread:
        spilled += demand - arch.max_registers_per_thread
        demand = _round_regs(arch.max_registers_per_thread, arch)
        demand = min(demand, arch.max_registers_per_thread)

    # A single block must fit in the register file; otherwise the compiler
    # lowers the per-thread allocation and the overflow spills.
    per_block_regs = demand * block_threads
    if per_block_regs > arch.register_file_per_sm:
        lowered = arch.register_file_per_sm // block_threads
        lowered = max(32, (lowered // arch.register_alloc_unit) * arch.register_alloc_unit)
        spilled += demand - lowered
        demand = lowered

    by_threads = arch.max_threads_per_sm // block_threads
    by_blocks = arch.max_blocks_per_sm
    by_regs = arch.register_file_per_sm // (demand * block_threads)
    blocks_per_sm = max(1, min(by_threads, by_blocks, by_regs))
    # Tie-break toward the architectural limits: a kernel exactly filling
    # the block slots is "blocks"-limited even if registers also just fit.
    if by_blocks == blocks_per_sm:
        limited_by = "blocks"
    elif by_threads == blocks_per_sm:
        limited_by = "threads"
    else:
        limited_by = "registers"

    warps_per_block = block_threads // arch.warp_size
    hw_warps = blocks_per_sm * warps_per_block

    # Work limit: spread the launch's blocks over the SMs.
    active_sms = min(arch.sms, total_blocks)
    avg_blocks = total_blocks / active_sms
    work_warps = min(avg_blocks, blocks_per_sm) * warps_per_block
    if work_warps < hw_warps:
        limited_by = "work"
    warps = min(float(hw_warps), work_warps)

    return Occupancy(
        regs_per_thread=demand,
        spilled_regs=spilled,
        blocks_per_sm=blocks_per_sm,
        warps_per_sm=warps,
        active_sms=active_sms,
        limited_by=limited_by,
    )
