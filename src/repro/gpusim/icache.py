"""Instruction-fetch pressure: why full unrolling stops paying off.

Completely unrolling the whole factorization produces straight-line code
whose size grows with ``n**3``.  Once it exceeds the front end's effective
fetch working set, every pass over the code streams instructions from L2
and the issue rate drops — the paper's Figure 19: "Either the number of
instructions overwhelm the compiler, or instruction fetching and caching
becomes a problem, or both."

Partially unrolled kernels re-execute small loop bodies that stay resident,
so their *static* code size is what matters, and it is tiny.
"""

from __future__ import annotations

from repro.gpusim.arch import GPUArchitecture

#: Fetch throughput never collapses entirely; L2-streamed code still issues
#: at a fraction of the peak rate.
_MIN_FACTOR = 0.35
#: How sharply throughput degrades per doubling of the overflow.
_OVERFLOW_SLOPE = 0.55


def code_bytes(static_statements: int, arch: GPUArchitecture) -> float:
    """Estimated SASS footprint of a kernel from its statement count."""
    if static_statements < 0:
        raise ValueError(f"statement count must be nonnegative, got {static_statements}")
    return static_statements * arch.sass_bytes_per_statement


def icache_throughput_factor(static_statements: int, arch: GPUArchitecture) -> float:
    """Multiplier (0..1] on issue throughput due to instruction fetch.

    1.0 while the code fits the fetch working set; beyond it the factor
    decays with the overflow ratio and floors at the L2-streaming rate.
    """
    size = code_bytes(static_statements, arch)
    if size <= arch.icache_bytes:
        return 1.0
    overflow = size / arch.icache_bytes
    factor = 1.0 / (1.0 + _OVERFLOW_SLOPE * (overflow - 1.0))
    return max(_MIN_FACTOR, factor)
