"""GPU architecture description and the calibrated P100 instance.

Hard parameters (SM count, clocks, bandwidth, register file, warp size,
scheduler limits) are NVIDIA's published P100 figures.  Soft parameters —
quantities NVIDIA does not publish, marked *calibrated* below — were fixed
once against the qualitative anchors of the paper's Section III and are
never varied per experiment:

* ``ieee_div_cycles`` / ``ieee_sqrt_cycles``: IEEE-compliant single-
  precision division and square root compile to multi-instruction
  software sequences on Pascal (tens of issue slots); the fast-math
  variants map to SFU ``rcp``/``rsqrt`` approximations.  Anchor: the
  IEEE-vs-fast-math gap of Figure 13 (~600 vs ~800 Gflop/s).
* ``icache_bytes`` / ``sass_bytes_per_statement``: effective instruction-
  fetch working set.  Anchor: full unrolling stops paying off near
  n = 20 (Figure 19).
* ``dram_row_bytes`` / ``row_miss_efficiency`` / ``far_stride_efficiency``:
  row-buffer locality of the HBM2 stack.  Anchor: chunked beats
  non-chunked clearly, chunk 32/64 best, 512 noticeably worse
  (Figures 17, 18).
* ``mem_latency_s`` / ``mlp_per_thread`` / ``issue_saturation_warps``:
  latency-hiding behaviour.  Anchor: overall plateau of Figure 13 at a
  16384-matrix batch (only 512 warps on 56 SMs — the machine runs far
  below full occupancy, which is what caps the plateau).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUArchitecture:
    """Parameters of a modelled GPU."""

    name: str

    # --- published hardware parameters ---------------------------------
    sms: int
    fp32_cores_per_sm: int
    clock_ghz: float
    dram_bandwidth_gbs: float
    l2_bytes: int
    line_bytes: int
    register_file_per_sm: int  # 32-bit registers
    max_registers_per_thread: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    warp_size: int
    register_alloc_unit: int  # per-thread register allocation granularity

    # --- calibrated parameters (see module docstring) -------------------
    ieee_div_cycles: float
    ieee_sqrt_cycles: float
    fast_div_cycles: float
    fast_sqrt_cycles: float
    mem_issue_cycles: float  # issue slots per load/store instruction
    icache_bytes: int
    sass_bytes_per_statement: float
    dram_row_bytes: int
    row_miss_efficiency: float  # bandwidth fraction when every access opens a row
    far_stride_efficiency: float  # floor for very large strides (TLB-hostile)
    #: Effective cost of a stored byte relative to a loaded byte: stores
    #: bypass the read-only cache path, turn L2 lines dirty (write-back on
    #: eviction) and interleave read/write bursts at the DRAM.  This is the
    #: mechanism behind Figure 16: reads are equal across looking variants,
    #: so their ordering is decided by write volume.
    write_cost_factor: float
    mem_latency_s: float
    mlp_per_thread: float  # outstanding loads a thread sustains
    issue_saturation_warps: float  # warps/SM needed to saturate issue
    launch_overhead_s: float
    #: Register overhead beyond tile data: addresses, loop counters, ABI.
    register_overhead: int
    #: Straight-line statement count up to which the compiler's scalar
    #: replacement stays fully effective; beyond it, redundant-access
    #: elimination degrades (the paper: "the number of instructions
    #: overwhelm the compiler").
    scalar_window_statements: int
    #: FP64 issue rate as a fraction of FP32 (1:2 on the P100's GP100).
    fp64_rate_fraction: float = 0.5

    # --- derived --------------------------------------------------------

    @property
    def peak_fp32_gflops(self) -> float:
        """Peak single-precision throughput (FMA counted as 2 flops)."""
        return 2.0 * self.sms * self.fp32_cores_per_sm * self.clock_ghz

    @property
    def issue_rate_per_sm(self) -> float:
        """FP32 instructions issued per cycle per SM."""
        return float(self.fp32_cores_per_sm)

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    def div_cycles(self, fast_math: bool) -> float:
        return self.fast_div_cycles if fast_math else self.ieee_div_cycles

    def sqrt_cycles(self, fast_math: bool) -> float:
        return self.fast_sqrt_cycles if fast_math else self.ieee_sqrt_cycles


#: NVIDIA Tesla P100 (SXM2), the paper's platform: 56 SMs x 64 FP32 cores at
#: 1.303 GHz boost (9.3 Tflop/s FP32), 732 GB/s HBM2, 4 MiB L2, 256 KiB
#: register file per SM.
P100 = GPUArchitecture(
    name="P100",
    sms=56,
    fp32_cores_per_sm=64,
    clock_ghz=1.303,
    dram_bandwidth_gbs=732.0,
    l2_bytes=4 * 1024 * 1024,
    line_bytes=128,
    register_file_per_sm=65536,
    max_registers_per_thread=255,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    warp_size=32,
    register_alloc_unit=8,
    # calibrated:
    ieee_div_cycles=48.0,
    ieee_sqrt_cycles=36.0,
    fast_div_cycles=5.0,
    fast_sqrt_cycles=5.0,
    mem_issue_cycles=1.0,
    icache_bytes=48 * 1024,
    sass_bytes_per_statement=8.0,
    dram_row_bytes=1024,
    row_miss_efficiency=0.5,
    far_stride_efficiency=0.44,
    write_cost_factor=1.5,
    mem_latency_s=450e-9,
    mlp_per_thread=4.0,
    issue_saturation_warps=16.0,
    launch_overhead_s=4e-6,
    register_overhead=24,
    scalar_window_statements=6000,
)

#: NVIDIA Tesla V100 (SXM2) — the P100's successor: 80 SMs x 64 FP32 at
#: 1.53 GHz (15.7 Tflop/s FP32), 900 GB/s HBM2, 6 MiB L2, same register
#: file and scheduler limits per SM, somewhat lower memory latency and
#: 16-byte-wide instructions (Volta's encoding).  Calibrated parameters
#: carry over from the P100 fit except where Volta is publicly known to
#: differ; used by the tuning-portability study, not by the paper's
#: figures.
V100 = GPUArchitecture(
    name="V100",
    sms=80,
    fp32_cores_per_sm=64,
    clock_ghz=1.530,
    dram_bandwidth_gbs=900.0,
    l2_bytes=6 * 1024 * 1024,
    line_bytes=128,
    register_file_per_sm=65536,
    max_registers_per_thread=255,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    warp_size=32,
    register_alloc_unit=8,
    # calibrated (inherited from the P100 fit unless noted):
    ieee_div_cycles=48.0,
    ieee_sqrt_cycles=36.0,
    fast_div_cycles=5.0,
    fast_sqrt_cycles=5.0,
    mem_issue_cycles=1.0,
    icache_bytes=96 * 1024,  # Volta's 128 KiB L1I/L1.5 front end
    sass_bytes_per_statement=16.0,  # Volta's wide instruction encoding
    dram_row_bytes=1024,
    row_miss_efficiency=0.5,
    far_stride_efficiency=0.44,
    write_cost_factor=1.5,
    mem_latency_s=400e-9,
    mlp_per_thread=4.0,
    issue_saturation_warps=16.0,
    launch_overhead_s=4e-6,
    register_overhead=24,
    scalar_window_statements=6000,
)
