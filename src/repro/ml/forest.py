"""Random forests in regression mode (Breiman 2001).

The Section IV analysis fits "a random forest [with] 500 trees of average
depth 11 [...] in the regression mode"; Table I reports each parameter's
predictive power with a measure that can go *negative* (the cache knob is
-18.6) — the signature of R ``randomForest``'s out-of-bag permutation
importance, ``%IncMSE``.  This implementation provides all of it:

* bootstrap bagging with per-tree feature subsampling,
* out-of-bag predictions (the honest Figure 21 axis),
* ``%IncMSE`` permutation importance,
* proximities (fraction of trees in which two rows share a leaf).
"""

from __future__ import annotations

import numpy as np

from repro.ml.metrics import mse
from repro.ml.tree import RegressionTree


class RandomForestRegressor:
    """Bagged regression forest.

    Parameters
    ----------
    n_estimators:
        Number of trees (the paper uses 500).
    max_features:
        Features per split; ``None`` uses max(1, p // 3), R's regression
        default.
    max_depth, min_samples_leaf, max_bins:
        Passed to each :class:`~repro.ml.tree.RegressionTree`.
    seed:
        Reproducible bootstrap and feature sampling.
    """

    def __init__(
        self,
        n_estimators: int = 500,
        max_features: int | None = None,
        max_depth: int | None = None,
        min_samples_leaf: int = 5,
        max_bins: int = 64,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_bins = max_bins
        self.seed = seed
        self.trees: list[RegressionTree] = []
        self._oob_masks: list[np.ndarray] = []
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError(f"incompatible shapes X={x.shape}, y={y.shape}")
        if x.shape[0] < 2:
            raise ValueError("need at least two samples")
        m, p = x.shape
        max_features = self.max_features or max(1, p // 3)
        root_rng = np.random.default_rng(self.seed)
        self.trees = []
        self._oob_masks = []
        for _ in range(self.n_estimators):
            rng = np.random.default_rng(root_rng.integers(0, 2**63 - 1))
            idx = rng.integers(0, m, size=m)
            oob = np.ones(m, dtype=bool)
            oob[idx] = False
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                max_bins=self.max_bins,
                rng=rng,
            )
            tree.fit(x[idx], y[idx])
            self.trees.append(tree)
            self._oob_masks.append(oob)
        self._x = x
        self._y = y
        return self

    def _check_fitted(self) -> None:
        if not self.trees:
            raise RuntimeError("forest is not fitted")

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Mean prediction across all trees."""
        self._check_fitted()
        x = np.asarray(x, dtype=np.float64)
        acc = np.zeros(x.shape[0], dtype=np.float64)
        for tree in self.trees:
            acc += tree.predict(x)
        return acc / len(self.trees)

    def oob_prediction(self) -> np.ndarray:
        """Out-of-bag prediction for each training row.

        Rows that were in-bag for every tree (rare beyond ~10 trees) fall
        back to the full-forest prediction.
        """
        self._check_fitted()
        x, _ = self._training_data()
        acc = np.zeros(x.shape[0], dtype=np.float64)
        counts = np.zeros(x.shape[0], dtype=np.float64)
        for tree, oob in zip(self.trees, self._oob_masks):
            if not np.any(oob):
                continue
            acc[oob] += tree.predict(x[oob])
            counts[oob] += 1.0
        never_oob = counts == 0
        if np.any(never_oob):
            acc[never_oob] = self.predict(x[never_oob])
            counts[never_oob] = 1.0
        return acc / counts

    def oob_mse(self) -> float:
        _, y = self._training_data()
        return mse(y, self.oob_prediction())

    def _training_data(self) -> tuple[np.ndarray, np.ndarray]:
        if self._x is None or self._y is None:
            raise RuntimeError("forest is not fitted")
        return self._x, self._y

    # ------------------------------------------------------------------
    # Importance & proximity
    # ------------------------------------------------------------------

    def permutation_importance(self, seed: int = 17) -> np.ndarray:
        """R-style ``%IncMSE`` per feature.

        For each tree and feature: the increase in out-of-bag MSE after
        permuting that feature's OOB values, averaged over trees and
        normalised by its standard error — R ``randomForest``'s
        ``importance(..., type=1)``.  Irrelevant features fluctuate around
        zero and can come out negative.
        """
        self._check_fitted()
        x, y = self._training_data()
        rng = np.random.default_rng(seed)
        p = x.shape[1]
        increases = np.zeros((len(self.trees), p), dtype=np.float64)
        for t, (tree, oob) in enumerate(zip(self.trees, self._oob_masks)):
            if not np.any(oob):
                continue
            x_oob = x[oob]
            y_oob = y[oob]
            base = mse(y_oob, tree.predict(x_oob))
            for feature in range(p):
                xp = x_oob.copy()
                xp[:, feature] = rng.permutation(xp[:, feature])
                increases[t, feature] = mse(y_oob, tree.predict(xp)) - base
        means = increases.mean(axis=0)
        stds = increases.std(axis=0, ddof=1) if len(self.trees) > 1 else np.ones(p)
        stderr = stds / np.sqrt(len(self.trees))
        with np.errstate(divide="ignore", invalid="ignore"):
            scores = np.where(stderr > 0, means / stderr, means)
        return scores

    def proximity(self, x: np.ndarray | None = None, max_rows: int = 2000) -> np.ndarray:
        """Proximity matrix: fraction of trees where rows co-land in a leaf.

        The original algorithm "can compute proximities between the data
        points" (Section IV).  Quadratic in rows, so capped at
        ``max_rows``.
        """
        self._check_fitted()
        if x is None:
            x, _ = self._training_data()
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] > max_rows:
            raise ValueError(
                f"proximity over {x.shape[0]} rows exceeds max_rows={max_rows}; "
                "subsample first"
            )
        m = x.shape[0]
        prox = np.zeros((m, m), dtype=np.float64)
        for tree in self.trees:
            leaves = tree.apply(x)
            same = leaves[:, None] == leaves[None, :]
            prox += same
        return prox / len(self.trees)

    def average_depth(self) -> float:
        """Mean maximum depth across trees (the paper reports ~11)."""
        self._check_fitted()
        return float(np.mean([t.depth() for t in self.trees]))
