"""Statistical-learning substrate for the Section IV analysis.

No scikit-learn is available offline, and the paper used R's
``randomForest`` anyway — so this package implements, from scratch on
NumPy, exactly what the analysis needs:

* :mod:`repro.ml.tree` — CART regression trees with histogram-based
  splitting;
* :mod:`repro.ml.forest` — Breiman random forests in regression mode with
  bootstrap bagging, out-of-bag predictions, permutation importance (the
  ``%IncMSE`` measure R reports — which can be *negative* for useless
  variables, as the paper's Table I shows for the cache parameter), and
  proximity computation;
* :mod:`repro.ml.metrics` — MSE, R², Pearson correlation.
"""

from repro.ml.tree import RegressionTree
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import mse, r2_score, pearson_r

__all__ = [
    "RegressionTree",
    "RandomForestRegressor",
    "mse",
    "r2_score",
    "pearson_r",
]
