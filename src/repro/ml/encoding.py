"""Encodings for mixed discrete/categorical tuning variables.

Section IV: "we have a mix of parameters that are represented by discrete
(e.g., blocking factor) and categorical (e.g., unrolling) variables [...]
encoding of the categories may adversely influence the classification
outcome."  Trees are invariant to monotone recoding of ordered variables
and to the 0/1 orientation of binaries, but the *ternary* looking variable
genuinely depends on coding; these helpers let the analysis compare
ordinal and one-hot treatments.
"""

from __future__ import annotations

import numpy as np


def ordinal_encode(values, categories) -> np.ndarray:
    """Integer code per value following the order of ``categories``."""
    categories = list(categories)
    lookup = {c: i for i, c in enumerate(categories)}
    if len(lookup) != len(categories):
        raise ValueError(f"duplicate categories in {categories!r}")
    out = np.empty(len(values), dtype=np.float64)
    for i, v in enumerate(values):
        try:
            out[i] = lookup[v]
        except KeyError:
            raise ValueError(f"value {v!r} not in categories {categories!r}") from None
    return out


def one_hot_encode(values, categories) -> np.ndarray:
    """One indicator column per category, shape ``(rows, len(categories))``."""
    codes = ordinal_encode(values, categories).astype(np.int64)
    out = np.zeros((len(values), len(list(categories))), dtype=np.float64)
    out[np.arange(len(values)), codes] = 1.0
    return out


def expand_one_hot(
    x: np.ndarray, column: int, n_categories: int
) -> tuple[np.ndarray, list[int]]:
    """Replace one ordinal-coded column of ``x`` with one-hot columns.

    Returns the expanded matrix and the indices of the new columns (at the
    end), so importance scores can be re-aggregated per original variable.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"X must be 2-D, got {x.shape}")
    if not 0 <= column < x.shape[1]:
        raise ValueError(f"column {column} out of range for {x.shape[1]} features")
    codes = x[:, column].astype(np.int64)
    if codes.min() < 0 or codes.max() >= n_categories:
        raise ValueError(
            f"column {column} holds codes outside [0, {n_categories})"
        )
    hot = np.zeros((x.shape[0], n_categories), dtype=np.float64)
    hot[np.arange(x.shape[0]), codes] = 1.0
    rest = np.delete(x, column, axis=1)
    expanded = np.hstack([rest, hot])
    new_cols = list(range(rest.shape[1], rest.shape[1] + n_categories))
    return expanded, new_cols
