"""CART regression trees with histogram-based split search.

Split quality is the classic variance-reduction criterion.  Candidate
thresholds are the boundaries of (at most) ``max_bins`` quantile bins of
the node's data, which makes split search ``O(m · bins)`` per feature
instead of ``O(m log m)`` — the standard trick that keeps a 500-tree
forest on a 15k-row autotuning dataset cheap, and exact for the low-
cardinality tuning parameters (every distinct value gets its own bin).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    """One tree node; leaves carry a prediction, internal nodes a split."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    n_samples: int = 0
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """A CART regression tree.

    Parameters
    ----------
    max_depth:
        Depth limit (root = depth 0); ``None`` grows until purity or
        ``min_samples_leaf`` stops it.
    min_samples_leaf:
        Minimum rows on each side of a split.
    max_features:
        Features considered per split: an int, or ``None`` for all —
        random forests pass ~p/3 here (R's regression default).
    max_bins:
        Cap on candidate thresholds per feature.
    rng:
        Random generator for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 5,
        max_features: int | None = None,
        max_bins: int = 64,
        rng: np.random.Generator | None = None,
    ) -> None:
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if max_depth is not None and max_depth < 0:
            raise ValueError(f"max_depth must be nonnegative, got {max_depth}")
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_bins = max_bins
        self.rng = rng or np.random.default_rng()
        self.root: _Node | None = None
        self.n_features_: int | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {x.shape}")
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"X has {x.shape[0]} rows but y has {y.shape[0]}")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_features_ = x.shape[1]
        self.root = self._grow(x, y, depth=0)
        return self

    def _candidate_features(self) -> np.ndarray:
        p = self.n_features_
        k = self.max_features if self.max_features is not None else p
        k = max(1, min(k, p))
        if k == p:
            return np.arange(p)
        return self.rng.choice(p, size=k, replace=False)

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        """(feature, threshold, score) of the best variance-reducing split."""
        m = y.shape[0]
        total_sum = y.sum()
        total_sq = float(y @ y)
        base_sse = total_sq - total_sum**2 / m
        best = (None, 0.0, 0.0)  # feature, threshold, sse_reduction
        for feature in self._candidate_features():
            col = x[:, feature]
            values = np.unique(col)
            if values.size < 2:
                continue
            if values.size > self.max_bins:
                qs = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
                edges = np.unique(np.quantile(col, qs))
            else:
                edges = (values[:-1] + values[1:]) / 2.0
            if edges.size == 0:
                continue
            # Histogram pass: per-bin counts and y-sums, then prefix scans.
            bins = np.searchsorted(edges, col, side="right")
            nbins = edges.size + 1
            counts = np.bincount(bins, minlength=nbins).astype(np.float64)
            sums = np.bincount(bins, weights=y, minlength=nbins)
            sqs = np.bincount(bins, weights=y * y, minlength=nbins)
            cleft = np.cumsum(counts)[:-1]
            sleft = np.cumsum(sums)[:-1]
            qleft = np.cumsum(sqs)[:-1]
            cright = m - cleft
            sright = total_sum - sleft
            qright = total_sq - qleft
            valid = (cleft >= self.min_samples_leaf) & (cright >= self.min_samples_leaf)
            if not np.any(valid):
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                sse = (qleft - sleft**2 / cleft) + (qright - sright**2 / cright)
            sse = np.where(valid, sse, np.inf)
            idx = int(np.argmin(sse))
            reduction = base_sse - sse[idx]
            if reduction > best[2] + 1e-12:
                best = (int(feature), float(edges[idx]), float(reduction))
        return best

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(y.mean()), n_samples=y.shape[0], depth=depth)
        if self.max_depth is not None and depth >= self.max_depth:
            return node
        if y.shape[0] < 2 * self.min_samples_leaf:
            return node
        if np.all(y == y[0]):
            return node
        feature, threshold, reduction = self._best_split(x, y)
        if feature is None or reduction <= 0.0:
            return node
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    # ------------------------------------------------------------------
    # Prediction / introspection
    # ------------------------------------------------------------------

    def _check_fitted(self) -> _Node:
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        return self.root

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted values, shape ``(rows,)``."""
        root = self._check_fitted()
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_features_:
            raise ValueError(
                f"X must be 2-D with {self.n_features_} features, got {x.shape}"
            )
        out = np.empty(x.shape[0], dtype=np.float64)
        # Iterative vectorised descent: route row-index sets down the tree.
        stack = [(root, np.arange(x.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.prediction
                continue
            mask = x[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Leaf identifier of each row (used for proximity computation)."""
        root = self._check_fitted()
        x = np.asarray(x, dtype=np.float64)
        out = np.empty(x.shape[0], dtype=np.int64)
        leaf_ids: dict[int, int] = {}
        stack = [(root, np.arange(x.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = leaf_ids.setdefault(id(node), len(leaf_ids))
                continue
            mask = x[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    def depth(self) -> int:
        """Maximum leaf depth (the paper reports forests of avg depth 11)."""
        root = self._check_fitted()
        best = 0
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                best = max(best, node.depth)
            else:
                stack.extend((node.left, node.right))
        return best

    def node_count(self) -> int:
        root = self._check_fitted()
        count = 0
        stack = [root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend((node.left, node.right))
        return count
