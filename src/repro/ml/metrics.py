"""Regression metrics used by the Section IV analysis."""

from __future__ import annotations

import numpy as np


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty arrays")
    return y_true, y_pred


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination (1 = perfect, 0 = mean predictor)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    ss_res = np.sum((y_true - y_pred) ** 2)
    ss_tot = np.sum((y_true - y_true.mean()) ** 2)
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return float(1.0 - ss_res / ss_tot)


def pearson_r(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient (Figure 21's axis agreement)."""
    x, y = _check_pair(x, y)
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))
