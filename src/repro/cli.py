"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the library's workflows from the shell:

* ``factor``     — factorize a random SPD batch, verify, report the model.
* ``kernel``     — print the generated kernel source for a configuration.
* ``model``      — print the performance model's full breakdown.
* ``sweep``      — run an autotuning sweep and write the dataset CSV.
* ``experiment`` — run a paper experiment (fig13..fig21, table1) by name.
* ``serve-demo`` — replay a synthetic arrival trace through the adaptive
  batching service and print its metrics report (``--trace-out`` /
  ``--trace-jsonl`` / ``--prom-out`` / ``--metrics-json`` export the run's
  telemetry, ``--record-trace`` records the arrivals as a replayable
  workload trace; see ``docs/observability.md`` and ``docs/replay.md``).
* ``obs-summarize`` — per-stage latency breakdown of a recorded trace.
* ``replay-check`` — replay a recorded workload trace across a policy ×
  backend grid (or load a prior report) and gate throughput/p95/shed
  against a committed baseline; exits nonzero on regression.
"""

from __future__ import annotations

import argparse
import importlib
import sys

import numpy as np

EXPERIMENTS = (
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "table1",
    "encoding_study",
    "batch_scaling",
    "accuracy_study",
    "sensitivity_study",
    "portability_study",
)


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, required=True, help="matrix dimension")
    parser.add_argument("--nb", type=int, default=4, help="tile size")
    parser.add_argument(
        "--looking", choices=("right", "left", "top"), default="top"
    )
    parser.add_argument(
        "--layout",
        choices=("chunked", "interleaved"),
        default="chunked",
        help="chunked or simple interleaved layout",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=32, choices=(32, 64, 128, 256, 512)
    )
    parser.add_argument("--unroll", choices=("partial", "full"), default="partial")
    parser.add_argument("--fast-math", action="store_true")
    parser.add_argument("--uplo", choices=("lower", "upper"), default="lower")
    parser.add_argument(
        "--precision", choices=("single", "double"), default="single"
    )


def _config_from_args(args) -> "KernelConfig":
    from repro.core.config import KernelConfig

    return KernelConfig(
        n=args.n,
        nb=args.nb,
        looking=args.looking,
        chunked=args.layout == "chunked",
        chunk_size=args.chunk_size,
        unroll=args.unroll,
        fast_math=args.fast_math,
        uplo=args.uplo,
        precision=args.precision,
    )


def _cmd_factor(args) -> int:
    from repro.core.factorize import batch_cholesky
    from repro.gpusim.model import estimate_performance
    from repro.utils.errors import factorization_error
    from repro.utils.spd import random_spd_batch

    config = _config_from_args(args)
    a = random_spd_batch(args.batch, args.n, seed=args.seed)
    l = batch_cholesky(a, config)
    if args.uplo == "upper":
        # factorization_error expects lower factors; upper mode stores U
        # with A = U^T U, i.e. L = U^T.
        l = np.triu(l).transpose(0, 2, 1)
    err = factorization_error(a, l)
    est = estimate_performance(config, batch=args.batch)
    print(f"kernel          : {config.describe()}")
    print(f"batch           : {args.batch}")
    print(f"factorization ok: max rel error {err:.2e}")
    print(
        f"modelled P100   : {est.seconds * 1e6:.1f} us, {est.gflops:.0f} Gflop/s "
        f"({est.bound}-bound)"
    )
    return 0 if err < 1e-3 else 1


def _cmd_kernel(args) -> int:
    from repro.codegen.kernel import generate_kernel_source

    gk = generate_kernel_source(_config_from_args(args))
    print(f"# {gk.config.describe()} — {gk.static_statements} statements")
    print(gk.source)
    return 0


def _cmd_model(args) -> int:
    from repro.gpusim.model import estimate_performance

    est = estimate_performance(_config_from_args(args), batch=args.batch)
    occ = est.occupancy
    print(f"config              : {est.config.describe()}")
    print(f"batch               : {est.batch}")
    print(f"time                : {est.seconds * 1e6:.2f} us")
    print(f"gflops              : {est.gflops:.1f}")
    print(f"bound               : {est.bound}")
    print(f"  memory time       : {est.mem_seconds * 1e6:.2f} us")
    print(f"  compute time      : {est.compute_seconds * 1e6:.2f} us")
    print(f"  launch overhead   : {est.overhead_seconds * 1e6:.2f} us")
    print(f"bytes moved         : {est.bytes_moved / 1e6:.2f} MB")
    print(f"achievable bandwidth: {est.achievable_bandwidth_gbs:.0f} GB/s")
    print(f"  locality factor   : {est.locality_factor:.2f}")
    print(f"  coalescing waste  : {est.coalescing:.2f}x")
    print(f"icache factor       : {est.icache_factor:.2f}")
    print(f"issue efficiency    : {est.issue_eff:.2f}")
    print(
        f"occupancy           : {occ.warps_per_sm:.1f} warps/SM on "
        f"{occ.active_sms} SMs ({occ.limited_by}-limited, "
        f"{occ.regs_per_thread} regs/thread, {occ.spilled_regs} spilled)"
    )
    print(
        f"per-thread traffic  : {est.load_elements_per_thread} loads, "
        f"{est.store_elements_per_thread} stores, "
        f"{est.spill_elements_per_thread} spills (elements)"
    )
    return 0


def _cmd_schedule(args) -> int:
    from repro.core.schedule import schedule_summary

    print(schedule_summary(_config_from_args(args)))
    return 0


def _cmd_explain(args) -> int:
    from repro.gpusim.report import explain

    print(explain(_config_from_args(args), batch=args.batch))
    return 0


def _cmd_sweep(args) -> int:
    from repro.autotune.space import ParameterSpace
    from repro.autotune.sweep import run_sweep
    from repro.utils.tables import format_table

    ns = tuple(int(x) for x in args.ns.split(","))
    space = ParameterSpace(ns=ns)
    print(f"sweeping {space.size()} configurations over n in {ns} ...")
    dataset = run_sweep(space, batch=args.batch)
    if args.out:
        dataset.save_csv(args.out)
        print(f"dataset written to {args.out}")
    rows = [
        [n, round(rec.gflops, 1), rec.nb, rec.looking, rec.unroll,
         rec.chunk_size if rec.chunked else "-"]
        for n, rec in sorted(dataset.best_per_n().items())
    ]
    print(format_table(["n", "gflops", "nb", "looking", "unroll", "chunk"], rows))
    return 0


def _cmd_serve_demo(args) -> int:
    import json

    from repro.obs import (
        ChromeTraceSink,
        FlightRecorder,
        JsonlSink,
        Tracer,
        render_arena_prometheus,
        render_controller_prometheus,
        render_prometheus,
        render_prometheus_sharded,
        render_tier_prometheus,
        set_tracer,
    )
    from repro.serve import ServePolicy, run_demo

    policy = ServePolicy(
        target_batch=args.target_batch,
        max_delay_s=args.max_delay_ms / 1e3,
        max_queue_depth=args.queue_depth,
        request_timeout_s=args.timeout_ms / 1e3 if args.timeout_ms else None,
        backend=args.backend,
        process_workers=args.workers,
        shadow_fraction=args.shadow_fraction,
        snapshot_interval_s=(
            args.snapshot_interval / 1e3 if args.snapshot_interval else None
        ),
    )
    ns = tuple(int(x) for x in args.ns.split(","))

    sinks = []
    if args.trace_out:
        sinks.append(ChromeTraceSink(args.trace_out))
    if args.trace_jsonl:
        sinks.append(JsonlSink(args.trace_jsonl))
    flight = None
    if args.flight_out:
        # The recorder rides as a tracer sink so it sees every span —
        # including the shard_down / worker_death incident instants that
        # auto-trigger its postmortem dump.
        flight = FlightRecorder(
            capacity=args.flight_capacity, path=args.flight_out
        )
        sinks.append(flight)
    tracer = Tracer(sinks) if sinks else None
    previous = set_tracer(tracer) if tracer is not None else None
    if args.graph_demo:
        try:
            return _graph_demo(args, policy, ns)
        finally:
            if tracer is not None:
                set_tracer(previous)
                tracer.close()
    try:
        report, summary = run_demo(
            requests=args.requests,
            ns=ns,
            rate_hz=args.rate,
            policy=policy,
            solve_fraction=args.solve_fraction,
            nonspd_fraction=args.nonspd_fraction,
            seed=args.seed,
            record_trace=args.record_trace or None,
            shards=args.shards,
            placement=args.placement,
            controller=args.controller,
            controller_interval_ms=args.controller_interval or None,
            journal_out=args.journal_out or None,
            slo=args.slo or None,
            flight=flight,
            kill_shard=args.kill_shard,
            kill_at_ms=args.kill_at_ms,
            tiers=args.tiers or None,
        )
    finally:
        if tracer is not None:
            set_tracer(previous)
            tracer.close()
    print(report)
    if flight is not None and not flight.dumps:
        # No incident forced a dump; write the ring anyway so the run
        # always leaves a readable black box behind.
        flight.dump(args.flight_out, reason="final")
    written = [
        p
        for p in (
            args.trace_out, args.trace_jsonl, args.record_trace,
            args.journal_out if summary.journal is not None else "",
            args.flight_out if flight is not None else "",
        )
        if p
    ]
    if args.prom_out:
        if summary.per_shard:
            prom = render_prometheus_sharded(summary.metrics, summary.per_shard)
        else:
            prom = render_prometheus(summary.metrics)
        if summary.journal is not None:
            prom += render_controller_prometheus(summary.journal.status())
        # Empty string for untiered runs, so plain demos are untouched.
        prom += render_tier_prometheus(summary.metrics)
        # Likewise empty until some flush moved bytes through (or around)
        # the data plane — repro_arena_* series appear on every backend.
        prom += render_arena_prometheus(summary.metrics)
        with open(args.prom_out, "w", encoding="utf-8") as fh:
            fh.write(prom)
        written.append(args.prom_out)
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(summary.metrics.as_dict(), fh, indent=1)
            fh.write("\n")
        written.append(args.metrics_json)
    for path in written:
        print(f"wrote {path}")
    return 0 if summary.metrics.unaccounted == 0 else 1


def _graph_demo(args, policy, ns) -> int:
    """``serve-demo --graph-demo``: submit demo DAGs through the scheduler.

    The graph smoke test CI runs: build ``--graphs`` synthetic ladder
    DAGs (:func:`~repro.serve.graph.demo_graphs`), run them concurrently
    through one :class:`~repro.serve.graph.GraphScheduler`, and fail on
    any node failure or accounting leak — on either the node plane or
    the broker plane.
    """
    import json

    from repro.obs import render_graph_prometheus, render_prometheus
    from repro.serve import demo_graphs, run_graphs

    graphs = demo_graphs(count=args.graphs, ns=ns, seed=args.seed)
    summary = run_graphs(graphs, policy=policy)
    gm = summary.graph_metrics
    c = gm.counters
    lines = [
        f"graphs  : {len(graphs)} ladder DAGs, "
        f"{c['nodes']} nodes over {c['waves']} waves, n in {ns}",
        f"policy  : target_batch={policy.target_batch} "
        f"max_delay={policy.max_delay_s * 1e3:.1f}ms",
        f"backend : {summary.backend}"
        + (f" ({summary.shards} shards)" if summary.shards > 1 else ""),
        f"nodes   : {c['nodes_completed']} ok, {c['nodes_failed']} failed, "
        f"{c['nodes_dep_failed']} dep-failed, {c['nodes_shed']} shed "
        f"in {summary.elapsed_s * 1e3:.1f} ms",
        f"waves   : width mean {gm.histograms['wave_width'].mean:.1f}, "
        f"critical path mean "
        f"{gm.histograms['graph_critical_path_ms'].mean:.2f} ms",
        f"flushes : fill mean "
        f"{summary.metrics.histograms['batch_fill'].mean:.3f}, "
        f"batch mean {summary.metrics.histograms['batch_size'].mean:.1f}",
    ]
    print("\n".join(lines))
    if args.prom_out:
        prom = render_prometheus(summary.metrics)
        prom += render_graph_prometheus(gm)
        with open(args.prom_out, "w", encoding="utf-8") as fh:
            fh.write(prom)
        print(f"wrote {args.prom_out}")
    if args.metrics_json:
        payload = {"serve": summary.metrics.as_dict(), "graph": gm.as_dict()}
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")
        print(f"wrote {args.metrics_json}")
    healthy = (
        summary.ok
        and gm.unaccounted == 0
        and summary.metrics.unaccounted == 0
    )
    return 0 if healthy else 1


def _cmd_replay_check(args) -> int:
    from repro.serve.replay import (
        ArenaGate,
        ControllerGate,
        GateTolerances,
        compare_arena,
        compare_controlled,
        compare_reports,
        compare_slo,
        compare_tiers,
        load_report,
        policy_grid,
        render_arena,
        render_comparison,
        render_controlled,
        render_report,
        render_slo,
        render_tiers,
        run_replay_grid,
        save_report,
    )
    from repro.serve.trace import load_trace_file

    if bool(args.report) == bool(args.trace):
        print("replay-check: give exactly one of --report or --trace",
              file=sys.stderr)
        return 2

    controllers = tuple(
        name for name in args.controlled.split(",") if name
    )

    if args.report:
        current = load_report(args.report)
    else:
        trace = load_trace_file(args.trace)
        cells = policy_grid(
            backends=tuple(args.backends.split(",")),
            target_batches=tuple(int(x) for x in args.target_batches.split(",")),
            max_delays_ms=tuple(float(x) for x in args.max_delays_ms.split(",")),
            shards=tuple(int(x) for x in args.shards.split(",")),
            placements=tuple(args.placements.split(",")),
            controllers=(None, *controllers),
            graphs=(False, True) if args.graph else (False,),
            tiers=(None, args.tiers) if args.tiers else (None,),
            arenas=(False, True) if args.arena else (False,),
        )
        if controllers:
            from dataclasses import replace

            cells = [
                replace(c, controller_interval_ms=args.controller_interval_ms)
                if c.controller
                else c
                for c in cells
            ]
        current = run_replay_grid(
            trace,
            cells,
            trace_path=args.trace,
            progress=lambda label: print(f"replaying {label} ..."),
            slo=args.slo or None,
        )
        print()
        print(render_report(current))
        if args.out:
            save_report(args.out, current)
            print(f"wrote {args.out}")

    if args.journal_dir:
        written = _dump_journals(current, args.journal_dir)
        for path in written:
            print(f"wrote {path}")

    baseline = load_report(args.baseline)
    tol = GateTolerances(
        throughput_frac=args.throughput_tolerance,
        p95_frac=args.p95_tolerance,
        shed_abs=args.shed_tolerance,
        failure_abs=args.failure_tolerance,
        fill_abs=args.fill_tolerance,
    )
    findings = compare_reports(baseline, current, tol)
    print()
    print(render_comparison(findings, baseline, current))

    gate_controlled = controllers or any(
        run.get("controller") for run in current.get("runs", [])
    )
    if gate_controlled:
        ctl_gate = ControllerGate(
            throughput_frac=args.ctl_throughput_tolerance,
            p99_frac=args.ctl_p99_tolerance,
        )
        ctl_findings = compare_controlled(current, ctl_gate)
        print()
        print(render_controlled(ctl_findings, current))
        findings = list(findings) + list(ctl_findings)

    if args.slo:
        slo_findings = compare_slo(current)
        print()
        print(render_slo(slo_findings, current))
        findings = list(findings) + list(slo_findings)

    gate_tiers = bool(args.tiers) or any(
        run.get("tiers") for run in current.get("runs", [])
    )
    if gate_tiers:
        tier_findings = compare_tiers(baseline, current)
        print()
        print(render_tiers(tier_findings, current))
        findings = list(findings) + list(tier_findings)

    gate_arena = args.arena or any(
        str(run.get("label", "")).endswith("/arena")
        for run in current.get("runs", [])
    )
    if gate_arena:
        # The copy bill is deterministic; wall clocks are not.  Reuse the
        # report-level timing tolerance for the arena throughput check so
        # CI's loose setting covers both.
        arena_gate = ArenaGate(
            min_copy_reduction=args.arena_copy_reduction,
            throughput_frac=args.throughput_tolerance,
        )
        arena_findings = compare_arena(current, arena_gate, baseline=baseline)
        print()
        print(render_arena(arena_findings, current))
        findings = list(findings) + list(arena_findings)
    return 1 if findings else 0


def _dump_journals(report: dict, out_dir: str) -> list[str]:
    """Write each controlled run's decision journal under ``out_dir``."""
    import os

    os.makedirs(out_dir, exist_ok=True)
    written = []
    for run in report.get("runs", []):
        ctl = run.get("controller")
        if not ctl or not ctl.get("journal"):
            continue
        label = run.get("label", "run").replace("/", "_")
        path = os.path.join(out_dir, f"{label}.journal.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(ctl["journal"]) + "\n")
        written.append(path)
    return written


def _cmd_obs_summarize(args) -> int:
    from repro.obs import (
        check_request_spans,
        is_flight_record,
        load_flight_record,
        load_trace,
        summarize_flight_record,
        summarize_shards,
        summarize_trace,
    )

    if is_flight_record(args.trace):
        header, entries = load_flight_record(args.trace)
        print(summarize_flight_record(header, entries))
        return 0
    spans = load_trace(args.trace)
    print(summarize_trace(spans))
    shard_table = summarize_shards(spans)
    if shard_table:
        print()
        print(shard_table)
    if args.check:
        checked = check_request_spans(spans)
        print(f"request nesting ok ({checked} request(s) checked)")
    return 0


def _cmd_experiment(args) -> int:
    module = importlib.import_module(f"repro.experiments.{args.name}")
    result = module.run()
    print(result.render())
    if result.series and not args.no_plot:
        from repro.utils.ascii_plot import line_plot

        print()
        print(line_plot(result.series, title=result.title, ylabel="Gflop/s"))
    return 0 if result.all_checks_pass else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Batch Cholesky with interleaved layouts (IPDPS-W 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("factor", help="factorize a random batch and verify")
    _add_config_arguments(p)
    p.add_argument("--batch", type=int, default=4096)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_factor)

    p = sub.add_parser("kernel", help="print generated kernel source")
    _add_config_arguments(p)
    p.set_defaults(func=_cmd_kernel)

    p = sub.add_parser("model", help="print the performance-model breakdown")
    _add_config_arguments(p)
    p.add_argument("--batch", type=int, default=16384)
    p.set_defaults(func=_cmd_model)

    p = sub.add_parser("schedule", help="show a configuration's tile-op schedule")
    _add_config_arguments(p)
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("explain", help="diagnose a configuration's bottlenecks")
    _add_config_arguments(p)
    p.add_argument("--batch", type=int, default=16384)
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("sweep", help="run an autotuning sweep")
    p.add_argument("--ns", default="8,16,24,32", help="comma-separated sizes")
    p.add_argument("--batch", type=int, default=16384)
    p.add_argument("--out", default="", help="CSV output path")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "serve-demo",
        help="replay a synthetic arrival trace through the adaptive-batching service",
    )
    p.add_argument("--requests", type=int, default=400, help="trace length")
    p.add_argument("--ns", default="8,16,32", help="comma-separated matrix sizes")
    p.add_argument("--rate", type=float, default=60000.0, help="arrival rate (req/s)")
    p.add_argument("--target-batch", type=int, default=64, help="bucket flush size")
    p.add_argument(
        "--max-delay-ms", type=float, default=4.0, help="bucket latency deadline"
    )
    p.add_argument(
        "--timeout-ms", type=float, default=30000.0,
        help="per-request timeout (0 disables)",
    )
    p.add_argument("--queue-depth", type=int, default=8192, help="shed beyond this")
    p.add_argument(
        "--backend",
        choices=("inline", "process", "eventsim", "shadow", "arena-process"),
        default=None,
        help="flush executor backend (default: $REPRO_SERVE_BACKEND; "
             "arena-process when $REPRO_SERVE_ARENA is set, else inline)",
    )
    p.add_argument(
        "--workers", type=int, default=2,
        help="worker processes for --backend process",
    )
    p.add_argument(
        "--shadow-fraction", type=float, default=1.0,
        help="fraction of flushes mirrored through LAPACK for --backend shadow",
    )
    p.add_argument("--solve-fraction", type=float, default=0.4)
    p.add_argument(
        "--nonspd-fraction", type=float, default=0.01,
        help="fraction of deliberately non-SPD requests",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--trace-out", default="",
        help="write a Chrome-trace JSON (open in Perfetto / chrome://tracing)",
    )
    p.add_argument(
        "--trace-jsonl", default="",
        help="write the JSONL structured event log (input to obs-summarize)",
    )
    p.add_argument(
        "--prom-out", default="",
        help="write the final metrics in Prometheus text exposition format",
    )
    p.add_argument(
        "--metrics-json", default="",
        help="dump ServeMetrics.as_dict() as JSON at exit",
    )
    p.add_argument(
        "--snapshot-interval", type=float, default=0.0,
        help="telemetry snapshot period in ms (0 disables; needs tracing on)",
    )
    p.add_argument(
        "--record-trace", default="",
        help="record the demo's arrivals as a replayable workload trace "
             "(JSONL, see docs/replay.md)",
    )
    p.add_argument(
        "--shards", type=int, default=None,
        help="broker shards (default: $REPRO_SERVE_SHARDS or 1; >1 builds "
             "the sharded fabric, see docs/sharding.md)",
    )
    p.add_argument(
        "--placement", choices=("size", "hash"), default=None,
        help="shard placement policy (default: $REPRO_SERVE_PLACEMENT or size)",
    )
    p.add_argument(
        "--controller", default=None,
        help="online policy controller strategy (aimd, hill, or off; "
             "default: $REPRO_SERVE_CONTROLLER or off — see docs/control.md)",
    )
    p.add_argument(
        "--controller-interval", type=float, default=0.0,
        help="controller decision period in ms "
             "(0: $REPRO_SERVE_CONTROLLER_INTERVAL_MS or 250)",
    )
    p.add_argument(
        "--journal-out", default="",
        help="write the controller's decision journal (JSONL) here",
    )
    p.add_argument(
        "--slo", default="",
        help="SLO objectives to monitor, e.g. 'coalesce_p99_ms<250,"
             "service_p99_ms<1000'; '1' uses the defaults "
             "(default: $REPRO_SERVE_SLO or off — see docs/slo.md)",
    )
    p.add_argument(
        "--flight-out", default="",
        help="attach a flight recorder and write its postmortem JSONL "
             "here (auto-dumped on SLO breach / shard_down / "
             "worker_death; read back with obs-summarize)",
    )
    p.add_argument(
        "--flight-capacity", type=int, default=2048,
        help="flight-recorder ring size (most recent entries retained)",
    )
    p.add_argument(
        "--tiers", nargs="?", const="1", default="",
        help="SLA tiers and admission control: '1' uses the default "
             "gold/silver/best_effort policy, or give a spec like "
             "'best_effort:rate=5,burst=2;default=best_effort' "
             "(default: $REPRO_SERVE_TIERS or off — see docs/tiers.md)",
    )
    p.add_argument(
        "--kill-shard", type=int, default=None,
        help="fault injection: kill this shard id mid-replay "
             "(needs --shards > 1)",
    )
    p.add_argument(
        "--kill-at-ms", type=float, default=0.0,
        help="when to kill --kill-shard, ms after the replay clock starts",
    )
    p.add_argument(
        "--graph-demo", action="store_true",
        help="submit synthetic ladder DAGs through the GraphScheduler "
             "instead of independent requests (see docs/graphs.md)",
    )
    p.add_argument(
        "--graphs", type=int, default=6,
        help="DAG count for --graph-demo",
    )
    p.set_defaults(func=_cmd_serve_demo)

    p = sub.add_parser(
        "replay-check",
        help="replay a recorded trace across a policy grid and gate "
             "throughput/p95/shed against a committed baseline",
    )
    p.add_argument(
        "--baseline", required=True,
        help="committed baseline report JSON to gate against",
    )
    p.add_argument(
        "--trace", default="",
        help="workload trace (JSONL) to replay across the grid",
    )
    p.add_argument(
        "--report", default="",
        help="compare an existing replay report instead of running one",
    )
    p.add_argument(
        "--backends", default="inline",
        help="comma-separated executor backends to grid over",
    )
    p.add_argument(
        "--target-batches", default="64",
        help="comma-separated target_batch values to grid over",
    )
    p.add_argument(
        "--max-delays-ms", default="2",
        help="comma-separated max_delay deadlines (ms) to grid over",
    )
    p.add_argument(
        "--shards", default="1",
        help="comma-separated shard counts to grid over (cells with >1 "
             "shard get a /shN-<placement> label suffix)",
    )
    p.add_argument(
        "--placements", default="size",
        help="comma-separated placement policies (size,hash) for the "
             "sharded cells",
    )
    p.add_argument(
        "--out", default="", help="also write the fresh replay report here"
    )
    p.add_argument(
        "--throughput-tolerance", type=float, default=0.15,
        help="fractional throughput loss tolerated vs baseline",
    )
    p.add_argument(
        "--p95-tolerance", type=float, default=0.5,
        help="fractional p95 coalesce-latency growth tolerated",
    )
    p.add_argument(
        "--shed-tolerance", type=float, default=0.02,
        help="absolute shed-rate growth tolerated",
    )
    p.add_argument(
        "--failure-tolerance", type=float, default=0.02,
        help="absolute failure-rate growth tolerated",
    )
    p.add_argument(
        "--graph", action="store_true",
        help="add /graph grid cells that replay the trace's v2 graph "
             "annotations through the GraphScheduler (see docs/graphs.md)",
    )
    p.add_argument(
        "--fill-tolerance", type=float, default=0.5,
        help="absolute mean flush fill-ratio loss tolerated vs baseline "
             "(the wave fill-ratio gate of /graph cells)",
    )
    p.add_argument(
        "--controlled", default="",
        help="comma-separated controller strategies (aimd,hill) to add as "
             "controlled grid cells; each is gated against its static "
             "siblings with compare_controlled (see docs/control.md)",
    )
    p.add_argument(
        "--controller-interval-ms", type=float, default=10.0,
        help="decision period for the controlled cells",
    )
    p.add_argument(
        "--ctl-throughput-tolerance", type=float, default=0.15,
        help="fractional throughput shortfall a controlled cell may show "
             "vs the best static sibling",
    )
    p.add_argument(
        "--ctl-p99-tolerance", type=float, default=0.5,
        help="fractional p99 coalesce-latency growth a controlled cell "
             "may show vs the best static sibling",
    )
    p.add_argument(
        "--journal-dir", default="",
        help="dump each controlled cell's decision journal (JSONL) into "
             "this directory — CI uploads these as artifacts",
    )
    p.add_argument(
        "--slo", default="",
        help="gate every run's whole-run SLO verdict against these "
             "objectives, e.g. 'coalesce_p99_ms<50' — adds an slo block "
             "to freshly generated reports (see docs/slo.md)",
    )
    p.add_argument(
        "--tiers", nargs="?", const="1", default="",
        help="add /tiers grid cells replayed under admission control "
             "('1' for the default policy, or a TierPolicy spec) and "
             "gate per-tier p99 budgets, best-effort shedding, and "
             "tenant fairness with compare_tiers (see docs/tiers.md)",
    )
    p.add_argument(
        "--arena", action="store_true",
        help="add /arena grid cells replayed through the zero-copy "
             "shared-memory data plane (backend arena-process) and gate "
             "slot conservation plus the bytes-copied reduction against "
             "each cell's pickle sibling with compare_arena "
             "(see docs/dataplane.md)",
    )
    p.add_argument(
        "--arena-copy-reduction", type=float, default=2.0,
        help="minimum factor by which an /arena cell must cut flush-path "
             "copied bytes vs its pickle sibling",
    )
    p.set_defaults(func=_cmd_replay_check)

    p = sub.add_parser(
        "obs-summarize",
        help="per-stage latency breakdown of a trace written by --trace-out/"
             "--trace-jsonl or $REPRO_TRACE, or a flight-record digest "
             "(--flight-out dumps, see docs/slo.md)",
    )
    p.add_argument(
        "trace",
        help="trace file (Chrome JSON or JSONL event log) or flight record",
    )
    p.add_argument(
        "--check", action="store_true",
        help="also verify every request's stage chain nests correctly",
    )
    p.set_defaults(func=_cmd_obs_summarize)

    p = sub.add_parser("experiment", help="run a paper experiment")
    p.add_argument("name", choices=EXPERIMENTS)
    p.add_argument("--no-plot", action="store_true", help="skip the ASCII chart")
    p.set_defaults(func=_cmd_experiment)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=4, suppress=True)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
