"""SLO objectives, burn-rate monitoring, and the black-box flight recorder.

Three layers, each usable alone:

- :class:`SloObjective` / :class:`SloPolicy` — declarative latency
  objectives parsed from strings like ``"coalesce_p99_ms < 5"``: the
  stream (a :class:`~repro.serve.metrics.ServeMetrics` latency family),
  the quantile whose implied *target* sets the error budget (p99 → 99%
  of observations must land under the threshold, budget 1%), and the
  threshold in milliseconds.

- :class:`SloMonitor` — polls a live metrics provider, slices the
  cumulative :class:`~repro.obs.sketch.QuantileSketch` streams into
  **lossless sliding windows** (cumulative sketches subtract exactly),
  and evaluates every objective with classic multi-window burn-rate
  alerting: the *burn rate* is the window's bad fraction divided by the
  error budget (burn 1.0 = spending budget exactly at the sustainable
  rate), and a breach requires both the fast window (responsive) and the
  slow window (flap-resistant) to burn above threshold.  The fast burn
  rates feed back into the policy controller as an input signal.

- :class:`FlightRecorder` — a bounded in-memory ring buffer that rides
  as an ordinary obs span sink, retaining the most recent spans, counter
  samples, controller decisions, and SLO evaluations.  On an SLO breach,
  a ``shard_down`` instant (:class:`~repro.serve.shard.ShardedBroker`),
  or a ``worker_death`` instant (the process-pool backend), it dumps a
  postmortem JSONL bundle — the last N things that happened before the
  service got hurt — that ``python -m repro obs-summarize`` reads back.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs.sinks import SpanSink, span_to_dict
from repro.obs.sketch import QuantileSketch

#: Environment knob: ``$REPRO_SERVE_SLO`` attaches an :class:`SloMonitor`
#: to every serve front end (``replay_trace``, ``run_demo``), mirroring
#: ``$REPRO_SERVE_CONTROLLER``.  ``1``/``on`` uses :data:`DEFAULT_OBJECTIVES`;
#: any other value is parsed as an objective spec
#: (``"coalesce_p99_ms<5,service_p99_ms<20"``).
SLO_ENV = "REPRO_SERVE_SLO"

#: Generous monitoring defaults for ``$REPRO_SERVE_SLO=1``: wide enough
#: that a healthy CI run never breaches, tight enough that a stuck
#: broker (seconds-long coalesce waits) pages.
DEFAULT_OBJECTIVES = "coalesce_p99_ms<250,service_p99_ms<1000"

#: Format tag of a flight-record dump; bump on breaking layout changes.
FLIGHT_FORMAT = "repro.flight_record/v1"

#: Instant-span names that trigger an automatic flight-record dump when
#: the recorder has a configured path.
FLIGHT_TRIGGERS = ("shard_down", "worker_death")

#: Objective-string streams → ServeMetrics histogram families.
_STREAMS = {
    "coalesce": "coalesce_latency_ms",
    "coalesce_latency": "coalesce_latency_ms",
    "service": "flush_service_ms",
    "flush_service": "flush_service_ms",
}


def _stream_for(metric: str) -> str:
    """The sketch family an objective metric name points at.

    Exact aliases first (``coalesce`` → ``coalesce_latency_ms``), then
    the same aliasing applied to any *suffix* — so per-tier objectives
    like ``tier_gold_coalesce_p99_ms<50`` resolve to the admission
    layer's ``tier_gold_coalesce_latency_ms`` family without this module
    enumerating tiers.  Unknown names pass through unchanged (the
    monitor validates them against the live metrics object).
    """
    direct = _STREAMS.get(metric)
    if direct is not None:
        return direct
    for alias, family in _STREAMS.items():
        suffix = f"_{alias}"
        if metric.endswith(suffix):
            return metric[: -len(alias)] + family
    return metric

_OBJECTIVE_RE = re.compile(
    r"^\s*(?P<metric>[a-z_]+?)_p(?P<q>\d{2,3})_ms\s*<\s*"
    r"(?P<thr>\d+(?:\.\d+)?)\s*$"
)


@dataclass(frozen=True)
class SloObjective:
    """One latency objective: ``<quantile> of <stream> under <threshold>``."""

    name: str  # normalized spec, e.g. "coalesce_p99_ms<5"
    stream: str  # ServeMetrics histogram family
    quantile: float  # 0..100, e.g. 99.0 or 99.9
    threshold_ms: float

    @property
    def target(self) -> float:
        """Required good fraction (p99 → 0.99)."""
        return self.quantile / 100.0

    @property
    def budget(self) -> float:
        """Allowed bad fraction (p99 → 0.01)."""
        return 1.0 - self.target

    @classmethod
    def parse(cls, spec: str) -> "SloObjective":
        """Parse ``"coalesce_p99_ms < 5"`` (quantile digits: 50, 95, 99, 999).

        Three-digit quantiles read as a decimal after the second digit —
        ``p999`` is the 99.9th percentile, the standard tail shorthand.
        """
        m = _OBJECTIVE_RE.match(spec.strip().lower())
        if not m:
            raise ValueError(
                f"malformed SLO objective {spec!r} "
                "(expected e.g. 'coalesce_p99_ms < 5')"
            )
        metric, digits, thr = m.group("metric"), m.group("q"), m.group("thr")
        stream = _stream_for(metric)
        quantile = (
            float(digits)
            if len(digits) <= 2
            else float(f"{digits[:2]}.{digits[2:]}")
        )
        if not 0 < quantile < 100:
            raise ValueError(f"objective quantile must be in (0, 100), got p{digits}")
        threshold = float(thr)
        if threshold <= 0:
            raise ValueError(f"objective threshold must be positive, got {thr}")
        name = f"{metric}_p{digits}_ms<{thr}"
        return cls(
            name=name, stream=stream, quantile=quantile, threshold_ms=threshold
        )


def parse_objectives(spec: str) -> tuple[SloObjective, ...]:
    """Parse a comma-separated objective list; at least one required."""
    objectives = tuple(
        SloObjective.parse(part) for part in spec.split(",") if part.strip()
    )
    if not objectives:
        raise ValueError(f"no objectives in SLO spec {spec!r}")
    names = [o.name for o in objectives]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate objectives in SLO spec {spec!r}")
    return objectives


@dataclass(frozen=True)
class SloPolicy:
    """Objectives plus the burn-rate alerting shape.

    ``fast_window_s`` is the responsive window (how quickly a breach is
    noticed), ``slow_window_s`` the flap filter (a breach must also hold
    over the long window).  ``burn_threshold`` is in budget-spend units:
    1.0 means "spending the error budget exactly as fast as sustainable";
    a breach requires *both* windows above it.
    """

    objectives: tuple[SloObjective, ...]
    fast_window_s: float = 5.0
    slow_window_s: float = 60.0
    burn_threshold: float = 1.0
    poll_interval_s: float = 0.25

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError("SloPolicy needs at least one objective")
        if not 0 < self.fast_window_s <= self.slow_window_s:
            raise ValueError(
                f"need 0 < fast_window_s <= slow_window_s, got "
                f"{self.fast_window_s}, {self.slow_window_s}"
            )
        if self.burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be positive, got {self.burn_threshold}"
            )
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}"
            )

    @classmethod
    def parse(cls, spec: str, **kwargs) -> "SloPolicy":
        return cls(objectives=parse_objectives(spec), **kwargs)


@dataclass(frozen=True)
class SloStatus:
    """One objective's verdict for one evaluation instant."""

    objective: SloObjective
    state: str  # "ok" | "warn" | "breach"
    observed_ms: float  # fast-window quantile estimate
    bad_frac_fast: float
    bad_frac_slow: float
    burn_fast: float
    burn_slow: float
    window_count_fast: int
    window_count_slow: int

    def to_dict(self) -> dict:
        return {
            "objective": self.objective.name,
            "stream": self.objective.stream,
            "quantile": self.objective.quantile,
            "threshold_ms": self.objective.threshold_ms,
            "state": self.state,
            "observed_ms": self.observed_ms,
            "bad_frac_fast": self.bad_frac_fast,
            "bad_frac_slow": self.bad_frac_slow,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "window_count_fast": self.window_count_fast,
            "window_count_slow": self.window_count_slow,
        }


class SloMonitor:
    """Evaluates an :class:`SloPolicy` against a live metrics provider.

    ``metrics_fn`` returns the current cumulative metrics (duck-typed:
    anything with a ``histograms`` dict whose SLO streams are
    :class:`QuantileSketch` instances — a broker's ``metrics`` property).
    Each :meth:`poll` captures cheap sketch copies; sliding windows are
    exact sketch differences, so the windowed p99 and bad fraction carry
    no window-boundary error beyond the poll quantization.

    Drive it either from asyncio (``await monitor.start()`` beside the
    broker, like the policy controller) or by calling :meth:`poll`
    directly (tests, replay harnesses).  On a breach *transition* the
    monitor notes the event to the flight recorder, triggers its dump,
    and calls ``on_breach(status)``.
    """

    def __init__(
        self,
        slo: SloPolicy,
        metrics_fn,
        flight: "FlightRecorder | None" = None,
        on_breach=None,
        time_fn=time.monotonic,
    ) -> None:
        self.slo = slo
        self._metrics_fn = metrics_fn
        self.flight = flight
        self._on_breach = on_breach
        self._time = time_fn
        self._samples: deque = deque()  # (t, {stream: sketch copy})
        self._task = None
        self._in_breach: set[str] = set()
        self.statuses: list[SloStatus] = []
        self.evaluations = 0
        self.breaches = 0

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def _streams(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(o.stream for o in self.slo.objectives))

    def _capture(self) -> dict[str, QuantileSketch]:
        metrics = self._metrics_fn()
        caps: dict[str, QuantileSketch] = {}
        for stream in self._streams():
            hist = metrics.histograms.get(stream)
            if hist is None:
                raise ValueError(
                    f"SLO stream {stream!r} not in metrics histograms"
                )
            if not isinstance(hist, QuantileSketch):
                raise TypeError(
                    f"SLO stream {stream!r} is {type(hist).__name__}, not a "
                    "QuantileSketch — only sketch-backed latency families "
                    "support lossless windowing"
                )
            # The broker mutates bucket dicts on its own thread; a copy
            # caught mid-insert raises RuntimeError.  Retry — the race
            # window is a single dict insert.
            for attempt in range(3):
                try:
                    caps[stream] = hist.copy()
                    break
                except RuntimeError:
                    if attempt == 2:
                        raise
        return caps

    def _window(
        self, stream: str, cur: QuantileSketch, now: float, window_s: float
    ) -> QuantileSketch:
        """The exact sketch of ``stream`` observations in the last window."""
        base = None
        for t, caps in self._samples:
            if t <= now - window_s and stream in caps:
                base = caps[stream]
            elif t > now - window_s:
                break
        if base is None:
            # The run is younger than the window: everything so far is
            # "in window" — the honest reading for short demos.
            return cur
        return cur.delta(base)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def poll(self, now: float | None = None) -> list[SloStatus]:
        """One capture + evaluation cycle; returns per-objective statuses."""
        t = self._time() if now is None else now
        caps = self._capture()
        statuses = []
        for obj in self.slo.objectives:
            cur = caps[obj.stream]
            fast = self._window(obj.stream, cur, t, self.slo.fast_window_s)
            slow = self._window(obj.stream, cur, t, self.slo.slow_window_s)
            bad_fast = fast.fraction_above(obj.threshold_ms)
            bad_slow = slow.fraction_above(obj.threshold_ms)
            burn_fast = bad_fast / obj.budget
            burn_slow = bad_slow / obj.budget
            thr = self.slo.burn_threshold
            if burn_fast > thr and burn_slow > thr and fast.count:
                state = "breach"
            elif burn_fast > thr and fast.count:
                state = "warn"
            else:
                state = "ok"
            statuses.append(
                SloStatus(
                    objective=obj,
                    state=state,
                    observed_ms=fast.percentile(obj.quantile),
                    bad_frac_fast=bad_fast,
                    bad_frac_slow=bad_slow,
                    burn_fast=burn_fast,
                    burn_slow=burn_slow,
                    window_count_fast=fast.count,
                    window_count_slow=slow.count,
                )
            )
        self._samples.append((t, caps))
        self._prune(t)
        self.statuses = statuses
        self.evaluations += 1
        if self.flight is not None:
            self.flight.note(
                "slo", t=t, statuses=[s.to_dict() for s in statuses]
            )
        self._handle_transitions(statuses)
        return statuses

    def _prune(self, now: float) -> None:
        """Drop samples no window can reference (keep one slow-window base)."""
        horizon = now - self.slo.slow_window_s
        while len(self._samples) >= 2 and self._samples[1][0] <= horizon:
            self._samples.popleft()

    def _handle_transitions(self, statuses: list[SloStatus]) -> None:
        for status in statuses:
            name = status.objective.name
            if status.state == "breach" and name not in self._in_breach:
                self._in_breach.add(name)
                self.breaches += 1
                if self.flight is not None:
                    self.flight.note("slo_breach", **status.to_dict())
                    self.flight.trigger(f"slo_breach:{name}")
                if self._on_breach is not None:
                    self._on_breach(status)
            elif status.state == "ok" and name in self._in_breach:
                self._in_breach.discard(name)

    # ------------------------------------------------------------------
    # Controller feed
    # ------------------------------------------------------------------

    def burn_rates(self) -> dict[str, float]:
        """Last evaluation's fast burn rate per objective (controller input)."""
        return {
            s.objective.name: s.burn_fast for s in self.statuses
        }

    def status_dict(self) -> dict:
        """Report-shaped summary of the monitor's lifetime."""
        return {
            "objectives": [o.name for o in self.slo.objectives],
            "fast_window_s": self.slo.fast_window_s,
            "slow_window_s": self.slo.slow_window_s,
            "burn_threshold": self.slo.burn_threshold,
            "evaluations": self.evaluations,
            "breaches": self.breaches,
            "statuses": [s.to_dict() for s in self.statuses],
        }

    # ------------------------------------------------------------------
    # Asyncio lifecycle (mirrors PolicyController)
    # ------------------------------------------------------------------

    async def start(self) -> "SloMonitor":
        import asyncio

        if self._task is None or self._task.done():

            async def _run():
                while True:
                    await asyncio.sleep(self.slo.poll_interval_s)
                    self.poll()

            self._task = asyncio.get_running_loop().create_task(_run())
        return self

    async def close(self) -> None:
        import asyncio
        import contextlib

        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None
        # One final evaluation so short runs (demos, tests) always have
        # at least one status to report.
        self.poll()

    async def __aenter__(self) -> "SloMonitor":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()


def slo_from_env(metrics_fn, flight=None, **kwargs) -> SloMonitor | None:
    """A monitor when ``$REPRO_SERVE_SLO`` asks for one, else ``None``.

    ``1``/``on``/``true`` uses :data:`DEFAULT_OBJECTIVES`; any other
    non-empty value is parsed as an objective spec.  ``kwargs`` pass
    through to :class:`SloPolicy` (window lengths etc.).
    """
    raw = os.environ.get(SLO_ENV, "").strip()
    if not raw or raw.lower() in ("0", "off", "none", "false"):
        return None
    spec = DEFAULT_OBJECTIVES if raw.lower() in ("1", "on", "true") else raw
    policy = SloPolicy.parse(spec, **kwargs)
    return SloMonitor(policy, metrics_fn, flight=flight)


def evaluate_objectives(metrics, objectives) -> list[dict]:
    """Whole-run verdicts from cumulative metrics (for replay reports).

    Each entry carries the objective, the sketch-derived observed
    quantile, the exact bad fraction, the lifetime burn rate, and the
    ``ok`` verdict the ``replay-check --slo`` gate reads.
    """
    out = []
    for obj in objectives:
        hist = metrics.histograms.get(obj.stream)
        entry: dict = {
            "objective": obj.name,
            "stream": obj.stream,
            "quantile": obj.quantile,
            "threshold_ms": obj.threshold_ms,
        }
        if hist is None:
            entry.update(ok=False, error=f"stream {obj.stream!r} missing")
            out.append(entry)
            continue
        observed = hist.percentile(obj.quantile)
        entry["observed_ms"] = observed
        if isinstance(hist, QuantileSketch):
            bad_frac = hist.fraction_above(obj.threshold_ms)
            entry["bad_frac"] = bad_frac
            entry["burn"] = bad_frac / obj.budget
            entry["count"] = hist.count
            entry["ok"] = bad_frac <= obj.budget
        else:
            # Reservoir fallback: only the quantile estimate is available.
            entry["ok"] = observed <= obj.threshold_ms
        out.append(entry)
    return out


# ----------------------------------------------------------------------
# The flight recorder
# ----------------------------------------------------------------------


@dataclass
class _FlightEntry:
    """Internal: one ring-buffer record (kind + payload + capture order)."""

    seq: int
    kind: str
    payload: dict = field(default_factory=dict)


class FlightRecorder(SpanSink):
    """Bounded ring buffer of recent telemetry; dumps a postmortem bundle.

    Rides as an ordinary span sink on the obs tracer: spans and counter
    samples stream in continuously, and only the most recent
    ``capacity`` entries are retained — O(capacity) memory forever, no
    matter how long the service runs.  Components can also
    :meth:`note` structured events (controller decisions, SLO
    evaluations, snapshot deltas).

    A dump is triggered three ways: explicitly (:meth:`dump`), by an
    SLO breach (the monitor calls :meth:`trigger`), or automatically
    when a span named in :data:`FLIGHT_TRIGGERS` arrives — the
    ``shard_down`` instant the sharded broker emits when a shard dies,
    and the ``worker_death`` instant the process-pool backend emits when
    a worker is lost mid-flush.  Automatic dumps need a configured
    ``path``; each trigger overwrites it (latest incident wins) and is
    recorded in :attr:`dumps`.
    """

    def __init__(self, capacity: int = 2048, path: str | None = None) -> None:
        if capacity < 16:
            raise ValueError(f"capacity must be at least 16, got {capacity}")
        self.capacity = capacity
        self.path = path
        self._entries: deque[_FlightEntry] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.dumps: list[tuple[str, str]] = []  # (reason, path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _append(self, kind: str, payload: dict) -> None:
        with self._lock:
            self._seq += 1
            self._entries.append(_FlightEntry(self._seq, kind, payload))

    # ------------------------------------------------------------------
    # SpanSink surface
    # ------------------------------------------------------------------

    def on_span(self, span) -> None:
        self._append("span", span_to_dict(span))
        if span.name in FLIGHT_TRIGGERS and self.path is not None:
            self.trigger(span.name)

    def on_counter(self, name: str, t: float, values: dict) -> None:
        self._append("counter", {"name": name, "t": t, "values": dict(values)})

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None

    # ------------------------------------------------------------------
    # Structured notes
    # ------------------------------------------------------------------

    def note(self, kind: str, **payload) -> None:
        """Record one structured event (decision, snapshot, slo, ...)."""
        self._append(kind, payload)

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------

    def trigger(self, reason: str) -> str | None:
        """Dump to the configured path; no-op without one."""
        if self.path is None:
            return None
        return self.dump(self.path, reason=reason)

    def dump(self, path: str | None = None, reason: str = "manual") -> str:
        """Write the ring buffer as a JSONL bundle; returns the path.

        Line 1 is the header (format tag, reason, wall-clock stamp,
        entry count); each following line is one retained entry in
        capture order.  The buffer is *not* cleared — a later trigger
        dumps a longer story to the same path.
        """
        path = path or self.path
        if path is None:
            raise ValueError("no dump path configured")
        with self._lock:
            entries = list(self._entries)
        header = {
            "format": FLIGHT_FORMAT,
            "reason": reason,
            "dumped_at": time.time(),
            "entries": len(entries),
            "capacity": self.capacity,
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header) + "\n")
            for entry in entries:
                fh.write(
                    json.dumps(
                        {"seq": entry.seq, "kind": entry.kind, **entry.payload},
                        default=str,
                    )
                    + "\n"
                )
        self.dumps.append((reason, path))
        return path


def is_flight_record(path) -> bool:
    """Cheap sniff: does ``path`` start with a flight-record header?"""
    try:
        with open(path, encoding="utf-8") as fh:
            first = fh.readline()
        return json.loads(first).get("format") == FLIGHT_FORMAT
    except (OSError, ValueError):
        return False


def load_flight_record(path) -> tuple[dict, list[dict]]:
    """Load a dump written by :meth:`FlightRecorder.dump`."""
    with open(path, encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty flight record")
    header = json.loads(lines[0])
    if header.get("format") != FLIGHT_FORMAT:
        raise ValueError(
            f"{path}: expected {FLIGHT_FORMAT}, got {header.get('format')!r}"
        )
    entries = [json.loads(line) for line in lines[1:]]
    if len(entries) != header.get("entries"):
        raise ValueError(
            f"{path}: truncated flight record "
            f"({len(entries)} entries, header says {header.get('entries')})"
        )
    return header, entries


def summarize_flight_record(header: dict, entries: list[dict]) -> str:
    """Human-readable digest of one flight record."""
    from repro.utils.tables import format_table

    by_kind: dict[str, int] = {}
    for entry in entries:
        by_kind[entry.get("kind", "?")] = by_kind.get(entry.get("kind", "?"), 0) + 1
    lines = [
        f"flight record: reason={header.get('reason', '?')} "
        f"entries={header.get('entries')} capacity={header.get('capacity')}",
        format_table(
            ["kind", "entries"],
            [[kind, count] for kind, count in sorted(by_kind.items())],
        ),
    ]
    breaches = [e for e in entries if e.get("kind") == "slo_breach"]
    for breach in breaches[-5:]:
        lines.append(
            f"breach: {breach.get('objective', '?')} "
            f"observed={breach.get('observed_ms', 0.0):.3f}ms "
            f"burn_fast={breach.get('burn_fast', 0.0):.2f} "
            f"burn_slow={breach.get('burn_slow', 0.0):.2f}"
        )
    incidents = [
        e
        for e in entries
        if e.get("kind") == "span" and e.get("name") in FLIGHT_TRIGGERS
    ]
    for incident in incidents[-5:]:
        attrs = incident.get("attrs", {})
        detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        lines.append(f"incident: {incident.get('name')} {detail}".rstrip())
    spans = [e for e in entries if e.get("kind") == "span"]
    if spans:
        lines.append(f"last span: {spans[-1].get('name', '?')}")
    return "\n".join(lines)
