"""Trace sinks: where finished spans and counter samples go.

Three sinks cover the subsystem's needs:

* :class:`InMemorySink` — plain lists, for tests and ad-hoc analysis.
* :class:`JsonlSink` — one JSON object per line, append-friendly and
  greppable; the input format of ``python -m repro obs-summarize``.
* :class:`ChromeTraceSink` — the Chrome trace-event JSON that
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ load.
  Subsystem spans become complete (``X``) events on one named track per
  bucket/backend worker; request-stage spans become async (``b``/``e``)
  events keyed by request id, so each request renders as its own lane of
  nested submit → coalesce → flush → backend → scatter stages; counter
  samples become ``C`` events (live time-series tracks in the viewer).

Both file sinks buffer bounded amounts: the JSONL sink flushes every
``flush_every`` lines, and the Chrome sink caps its in-memory event list
at ``max_events`` (excess events are counted, not stored — a trace viewer
beats an OOM).  Timestamps arrive in seconds on the tracer's monotonic
clock and are exported in microseconds, the trace-event format's unit.
"""

from __future__ import annotations

import json


class SpanSink:
    """Interface a :class:`~repro.obs.tracer.Tracer` fans out to."""

    def on_span(self, span) -> None:
        raise NotImplementedError

    def on_counter(self, name: str, t: float, values: dict) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered output toward its destination."""

    def close(self) -> None:
        """Flush and release the sink; further events are undefined."""


class InMemorySink(SpanSink):
    """Collects spans and counter samples in lists (tests, analysis)."""

    def __init__(self) -> None:
        self.spans: list = []
        self.counters: list[tuple[str, float, dict]] = []

    def on_span(self, span) -> None:
        self.spans.append(span)

    def on_counter(self, name: str, t: float, values: dict) -> None:
        self.counters.append((name, t, dict(values)))

    def by_name(self, name: str) -> list:
        return [s for s in self.spans if s.name == name]


def span_to_dict(span) -> dict:
    """The structured-log representation of one finished span."""
    out = {
        "type": "span",
        "name": span.name,
        "cat": span.cat,
        "t0": span.t0,
        "t1": span.t1,
        "dur_ms": (span.t1 - span.t0) * 1e3,
        "span_id": span.span_id,
    }
    if span.parent_id is not None:
        out["parent_id"] = span.parent_id
    if span.track is not None:
        out["track"] = span.track
    if span.request is not None:
        out["request"] = span.request
    if span.attrs:
        out["attrs"] = dict(span.attrs)
    return out


class JsonlSink(SpanSink):
    """One JSON object per line: spans, counters, nothing clever."""

    def __init__(self, path: str, flush_every: int = 256) -> None:
        if flush_every <= 0:
            raise ValueError(f"flush_every must be positive, got {flush_every}")
        self.path = path
        self.flush_every = flush_every
        self._fh = open(path, "w", encoding="utf-8")
        self._buffer: list[str] = []

    def _push(self, obj: dict) -> None:
        self._buffer.append(json.dumps(obj, default=str))
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def on_span(self, span) -> None:
        self._push(span_to_dict(span))

    def on_counter(self, name: str, t: float, values: dict) -> None:
        self._push({"type": "counter", "name": name, "t": t, "values": dict(values)})

    def flush(self) -> None:
        if self._buffer and not self._fh.closed:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
            self._fh.flush()

    def close(self) -> None:
        self.flush()
        if not self._fh.closed:
            self._fh.close()


class ChromeTraceSink(SpanSink):
    """Chrome trace-event JSON, loadable in Perfetto / ``chrome://tracing``."""

    #: The pid all events carry; the format wants one, the value is free.
    PID = 1

    def __init__(self, path: str, max_events: int = 500_000) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.path = path
        self.max_events = max_events
        self.dropped = 0
        self._events: list[dict] = []
        self._tids: dict[str, int] = {}

    def _tid(self, track: str) -> int:
        if track not in self._tids:
            self._tids[track] = len(self._tids)
        return self._tids[track]

    def _append(self, *events: dict) -> None:
        # Drop whole spans, not half a b/e pair, when the cap is hit.
        if len(self._events) + len(events) > self.max_events:
            self.dropped += len(events)
            return
        self._events.extend(events)

    def on_span(self, span) -> None:
        args = {k: v for k, v in span.attrs.items()}
        ts = span.t0 * 1e6
        dur = max(0.0, (span.t1 - span.t0) * 1e6)
        if span.request is not None:
            # Async events keyed by (cat, id): one lane per request, the
            # viewer nests the stage intervals by timestamp.  Request
            # sequence numbers are only unique within one broker, so
            # shard-tagged spans qualify the lane id.
            rid = str(span.request)
            shard = span.attrs.get("shard") if span.attrs else None
            if shard is not None:
                rid = f"s{shard}:{rid}"
            self._append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "b",
                    "id": rid,
                    "pid": self.PID,
                    "tid": 0,
                    "ts": ts,
                    "args": args,
                },
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "e",
                    "id": rid,
                    "pid": self.PID,
                    "tid": 0,
                    "ts": ts + dur,
                },
            )
        else:
            self._append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "pid": self.PID,
                    "tid": self._tid(span.track or "main"),
                    "ts": ts,
                    "dur": dur,
                    "args": args,
                }
            )

    def on_counter(self, name: str, t: float, values: dict) -> None:
        self._append(
            {
                "name": name,
                "ph": "C",
                "pid": self.PID,
                "ts": t * 1e6,
                "args": {k: float(v) for k, v in values.items()},
            }
        )

    def _metadata(self) -> list[dict]:
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": self.PID,
                "args": {"name": "repro"},
            }
        ]
        for track, tid in sorted(self._tids.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self.PID,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        if self.dropped:
            events.append(
                {
                    "name": "events_dropped",
                    "ph": "M",
                    "pid": self.PID,
                    "args": {"count": self.dropped},
                }
            )
        return events

    def close(self) -> None:
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "traceEvents": self._metadata() + self._events,
                    "displayTimeUnit": "ms",
                },
                fh,
                default=str,
            )
        self._events = []
