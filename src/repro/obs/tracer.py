"""Span-based tracing: where one request's time actually goes.

A :class:`Tracer` turns runtime stages into *spans* — named intervals with
a category, optional display track, optional request id, and free-form
attributes — and fans finished spans out to its sinks
(:mod:`repro.obs.sinks`).  Two usage shapes cover every call site:

* ``with tracer.span("evaluate", cat="autotune"): ...`` for code that
  brackets the work it measures.  Entered spans publish themselves in a
  :mod:`contextvars` variable, so nested spans pick up their parent
  automatically (and correctly across asyncio tasks).
* ``tracer.record("coalesce", t0, t1, request=seq)`` for stages whose
  endpoints are known only after the fact — the broker learns a request's
  coalesce wait at flush time, not while it happens.

The tracer's clock is :func:`time.monotonic`, deliberately the same clock
asyncio's ``loop.time()`` reads, so timestamps taken by the event loop
(``enqueued_at``, flush start) can be recorded as span endpoints directly.

Tracing defaults to **off**: the module-level tracer is a
:class:`NullTracer` whose ``span()`` hands back one shared do-nothing
context manager and whose ``enabled`` flag lets hot paths skip even the
clock reads.  Install a real tracer with :func:`set_tracer` (the CLI does
this for ``--trace-out``) or via the ``REPRO_TRACE`` environment variable
(see :func:`tracer_from_env`).
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time

#: Environment variable that enables tracing process-wide: a path ending
#: in ``.jsonl`` gets the structured event log, any other path gets a
#: Chrome-trace JSON, and a bare ``1`` logs to ``repro-trace.jsonl``.
TRACE_ENV = "REPRO_TRACE"

_current_span: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Span:
    """One named interval; doubles as its own context manager.

    ``track`` names the display lane (Chrome-trace thread) for
    subsystem-level spans; ``request`` ties request-stage spans to one
    request id so exporters can render a per-request async lane.
    """

    __slots__ = (
        "tracer",
        "name",
        "cat",
        "track",
        "request",
        "t0",
        "t1",
        "attrs",
        "span_id",
        "parent_id",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        track: str | None,
        request: int | None,
        t0: float,
        attrs: dict,
        span_id: int,
        parent_id: int | None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.track = track
        self.request = request
        self.t0 = t0
        self.t1 = t0
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self._token = None

    def set(self, **attrs) -> "Span":
        """Attach attributes to an open span (chainable)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    def __enter__(self) -> "Span":
        self._token = _current_span.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.t1 = self.tracer.now()
        self.tracer._emit_span(self)
        return False


class _NullSpan:
    """The shared do-nothing span the disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing: every operation is a constant-time no-op.

    Call sites guard attribute computation with ``tracer.enabled``; the
    methods themselves are safe to call unconditionally.
    """

    enabled = False

    def now(self) -> float:
        return 0.0

    def span(self, name, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name, t0, t1, **kwargs) -> None:
        return None

    def instant(self, name, **kwargs) -> None:
        return None

    def counter(self, name, values, t=None) -> None:
        return None

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


#: The process-wide disabled tracer (a singleton so identity checks work).
NULL_TRACER = NullTracer()


class Tracer:
    """Fans spans, instants, and counter samples out to its sinks."""

    enabled = True

    def __init__(self, sinks=(), clock=time.monotonic) -> None:
        self.sinks = list(sinks)
        self._clock = clock
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    # Producing spans
    # ------------------------------------------------------------------

    def span(
        self,
        name: str,
        cat: str = "serve",
        track: str | None = None,
        request: int | None = None,
        parent: Span | None = None,
        **attrs,
    ) -> Span:
        """An open span starting now; close it with a ``with`` block."""
        if parent is None:
            parent = _current_span.get()
        return Span(
            tracer=self,
            name=name,
            cat=cat,
            track=track,
            request=request,
            t0=self.now(),
            attrs=attrs,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
        )

    def record(
        self,
        name: str,
        t0: float,
        t1: float,
        cat: str = "serve",
        track: str | None = None,
        request: int | None = None,
        parent: Span | None = None,
        **attrs,
    ) -> None:
        """Emit a finished span whose endpoints were measured elsewhere."""
        if parent is None:
            parent = _current_span.get()
        span = Span(
            tracer=self,
            name=name,
            cat=cat,
            track=track,
            request=request,
            t0=t0,
            attrs=attrs,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
        )
        span.t1 = t1
        self._emit_span(span)

    def instant(
        self,
        name: str,
        cat: str = "serve",
        track: str | None = None,
        request: int | None = None,
        **attrs,
    ) -> None:
        """A zero-duration marker (load shed, worker death, ...)."""
        t = self.now()
        self.record(name, t, t, cat=cat, track=track, request=request, **attrs)

    def counter(self, name: str, values: dict, t: float | None = None) -> None:
        """One sample of a named time series (queue depth, bucket fill)."""
        if t is None:
            t = self.now()
        with self._lock:
            for sink in self.sinks:
                sink.on_counter(name, t, values)

    # ------------------------------------------------------------------
    # Sink fan-out
    # ------------------------------------------------------------------

    def _emit_span(self, span: Span) -> None:
        with self._lock:
            for sink in self.sinks:
                sink.on_span(span)

    def flush(self) -> None:
        with self._lock:
            for sink in self.sinks:
                sink.flush()

    def close(self) -> None:
        with self._lock:
            for sink in self.sinks:
                sink.close()


class TaggedTracer:
    """A tracer view that stamps fixed attributes onto everything it emits.

    The sharded broker fabric (:mod:`repro.serve.shard`) hands each shard
    ``TaggedTracer({"shard": k})`` so every span, instant, and counter
    sample a shard's broker produces carries its shard id — which is what
    lets ``obs-summarize`` attribute a slow stage p95 to one loop.

    The inner tracer is resolved **dynamically**: with ``inner=None``
    (the default) every call reads the process-wide tracer via
    :func:`get_tracer`, so installing or swapping the global tracer after
    the fabric is built behaves exactly like it does for a plain broker.
    Counter series names get a ``[tag=value]`` suffix instead of span
    attributes, matching the broker's existing ``serve.bucket_fill[n=8]``
    convention.  :meth:`close` is deliberately a no-op — a shard closing
    must never tear down the shared tracer's sinks.
    """

    def __init__(self, tags: dict, inner=None) -> None:
        self.tags = dict(tags)
        self._inner = inner
        self._suffix = "".join(f"[{k}={v}]" for k, v in sorted(self.tags.items()))

    @property
    def inner(self):
        return self._inner if self._inner is not None else get_tracer()

    @property
    def enabled(self) -> bool:
        return self.inner.enabled

    def now(self) -> float:
        return self.inner.now()

    def span(self, name, **kwargs):
        return self.inner.span(name, **{**kwargs, **self.tags})

    def record(self, name, t0, t1, **kwargs) -> None:
        self.inner.record(name, t0, t1, **{**kwargs, **self.tags})

    def instant(self, name, **kwargs) -> None:
        self.inner.instant(name, **{**kwargs, **self.tags})

    def counter(self, name, values, t=None) -> None:
        self.inner.counter(f"{name}{self._suffix}", values, t=t)

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        return None


# ----------------------------------------------------------------------
# The process-wide tracer
# ----------------------------------------------------------------------

_tracer: "Tracer | NullTracer" = NULL_TRACER


def get_tracer() -> "Tracer | NullTracer":
    """The process-wide tracer (the disabled singleton by default)."""
    return _tracer


def set_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Install ``tracer`` process-wide; returns the previous one.

    ``None`` restores the disabled singleton.
    """
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def current_span() -> "Span | None":
    """The innermost open ``with``-entered span, if any."""
    return _current_span.get()


def tracer_from_env(environ=None) -> "Tracer | None":
    """Build a tracer from ``$REPRO_TRACE``, or ``None`` when unset.

    The value picks the sink: ``*.jsonl`` → structured event log, any
    other path → Chrome-trace JSON, bare ``1``/``true`` →
    ``repro-trace.jsonl`` in the working directory.
    """
    value = (environ if environ is not None else os.environ).get(TRACE_ENV, "")
    value = value.strip()
    if not value or value.lower() in ("0", "false", "off"):
        return None
    from repro.obs.sinks import ChromeTraceSink, JsonlSink

    if value.lower() in ("1", "true", "on"):
        value = "repro-trace.jsonl"
    if value.endswith(".jsonl"):
        return Tracer([JsonlSink(value)])
    return Tracer([ChromeTraceSink(value)])


def init_from_env() -> "Tracer | None":
    """Install the ``$REPRO_TRACE`` tracer (if any) and arrange its close.

    Called once at :mod:`repro.obs` import so any entry point — CLI,
    tests, one-off scripts — honours the toggle without plumbing.  A
    tracer that is still installed at interpreter exit is closed by an
    ``atexit`` hook so its sink files land on disk.
    """
    tracer = tracer_from_env()
    if tracer is None:
        return None
    set_tracer(tracer)
    import atexit

    def _close() -> None:
        if get_tracer() is tracer:
            tracer.close()

    atexit.register(_close)
    return tracer
