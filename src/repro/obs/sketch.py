"""Mergeable relative-error quantile sketch (DDSketch-style).

The serving layer's latency percentiles used to flow through the
reservoir-sampled :class:`~repro.serve.metrics.Histogram`, whose merge
thins samples and therefore *loses information* exactly where the
sharded fabric needs it most: a fleet p99 computed from merged
reservoirs is statistically unsound.  :class:`QuantileSketch` fixes
this with log-spaced buckets:

- every observation lands in the bucket ``i = ceil(log_gamma(v))``,
  where ``gamma = (1 + a) / (1 - a)`` for relative accuracy ``a``
  (default 1%);
- a quantile estimate is the midpoint of the bucket holding that rank,
  guaranteed within ``±a`` *relative* error of the true order
  statistic — tails included, which is the whole point for p99/p999;
- **merging is lossless**: bucket counts are integers, so folding N
  shard sketches together yields *bit-identical* bucket counts — and
  therefore bit-identical percentiles — no matter how the stream was
  partitioned or in which order the sketches are merged;
- count/sum/min/max are tracked exactly alongside, so means and
  extrema carry no sketch error at all.

Cumulative sketches subtract exactly too (bucket counts are monotonic
counters), which is how :mod:`repro.obs.slo` gets *lossless sliding
windows*: ``sketch(t2).delta(sketch(t1))`` is exactly the sketch of the
observations that arrived in ``(t1, t2]``.

The class duck-types the :class:`~repro.serve.metrics.Histogram`
surface (``count``/``total``/``mean``/``min``/``max``/``percentile``/
``merge``/``summary``) so it drops into :class:`ServeMetrics`,
Prometheus rendering, and report records without call-site changes.
"""

from __future__ import annotations

import math

#: Default relative accuracy: quantile estimates within 1% of the true
#: order statistic.  At 1% the sketch spans [1e-9, 1e9] in ~2100
#: buckets, of which a latency stream touches a few dozen.
DEFAULT_RELATIVE_ACCURACY = 0.01

#: Magnitudes below this collapse into the exact zero bucket: the log
#: mapping cannot represent 0, and sub-nanosecond latencies are noise.
MIN_TRACKABLE = 1e-9


class QuantileSketch:
    """Bounded-error quantile sketch with exact moments and lossless merge.

    ``relative_accuracy`` is the worst-case relative error of any
    quantile estimate.  Negative observations are supported (mirrored
    buckets) so the sketch can stand in for any histogram family, and
    values with magnitude below :data:`MIN_TRACKABLE` share one exact
    "zero" bucket.
    """

    def __init__(
        self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY
    ) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._neg_buckets: dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    # The log-bucket mapping
    # ------------------------------------------------------------------

    def _index(self, magnitude: float) -> int:
        """Bucket index of a positive magnitude: ``ceil(log_gamma(v))``."""
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _bucket_value(self, index: int) -> float:
        """Midpoint estimate of bucket ``index`` — within ±accuracy of
        every value the bucket covers (``(gamma^(i-1), gamma^i]``)."""
        return 2.0 * self._gamma**index / (1.0 + self._gamma)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if abs(value) < MIN_TRACKABLE:
            self._zero += 1
        elif value > 0:
            i = self._index(value)
            self._buckets[i] = self._buckets.get(i, 0) + 1
        else:
            i = self._index(-value)
            self._neg_buckets[i] = self._neg_buckets.get(i, 0) + 1

    # ------------------------------------------------------------------
    # Histogram-compatible surface
    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100), within the relative-error bound.

        A pure function of the bucket counts and exact extrema, so two
        sketches with equal buckets — e.g. a merged fleet sketch and the
        sketch of the concatenated stream — return bit-identical values.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.count:
            return 0.0
        if p == 0:
            return self.min
        if p == 100:
            return self.max
        rank = p / 100.0 * (self.count - 1)
        cum = 0
        # Negative buckets first (most negative = largest |index| first).
        for i in sorted(self._neg_buckets, reverse=True):
            cum += self._neg_buckets[i]
            if cum > rank:
                return self._clamp(-self._bucket_value(i))
        cum += self._zero
        if cum > rank:
            return self._clamp(0.0)
        for i in sorted(self._buckets):
            cum += self._buckets[i]
            if cum > rank:
                return self._clamp(self._bucket_value(i))
        return self.max

    def _clamp(self, estimate: float) -> float:
        """Clamp a bucket estimate into the exact observed range.

        Clamping can only move an estimate *toward* the true order
        statistic (which lies within [min, max]), so the relative-error
        bound survives.
        """
        return min(max(estimate, self._min), self._max)

    # ------------------------------------------------------------------
    # Threshold accounting (the SLO primitive)
    # ------------------------------------------------------------------

    def count_above(self, threshold: float) -> int:
        """Observations in buckets wholly above ``threshold`` (>= 0).

        Exact up to bucket resolution: observations in the single bucket
        *containing* the threshold are not counted, so the result can
        under-count by at most the observations within ``±accuracy`` of
        the threshold itself — the honest reading for burn-rate math.
        """
        t = float(threshold)
        if t < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if t < MIN_TRACKABLE:
            return sum(self._buckets.values())
        it = self._index(t)
        return sum(c for i, c in self._buckets.items() if i > it)

    def fraction_above(self, threshold: float) -> float:
        """``count_above / count``; 0.0 for an empty sketch."""
        if not self.count:
            return 0.0
        return self.count_above(threshold) / self.count

    # ------------------------------------------------------------------
    # Merge and windowing — both lossless
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "QuantileSketch") -> None:
        if not isinstance(other, QuantileSketch):
            raise TypeError(
                f"can only combine QuantileSketch, got {type(other).__name__}"
            )
        if not math.isclose(
            self.relative_accuracy, other.relative_accuracy, rel_tol=1e-12
        ):
            raise ValueError(
                f"accuracy mismatch: {self.relative_accuracy} vs "
                f"{other.relative_accuracy} — sketches must share a bucket "
                "layout to merge losslessly"
            )

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch in place (and return it).

        Bucket counts add as integers, so the merged sketch is
        *identical* to the sketch of the concatenated stream: percentile
        estimates are bit-for-bit equal regardless of how the stream was
        partitioned across shards or in which order parts are merged.
        Count, min, and max stay exact; ``total`` is a float sum and can
        differ across merge orders by rounding in the last ulp — it
        never feeds percentile computation.
        """
        self._check_compatible(other)
        self.count += other.count
        self.total += other.total
        if other.count:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        self._zero += other._zero
        for i, c in other._buckets.items():
            self._buckets[i] = self._buckets.get(i, 0) + c
        for i, c in other._neg_buckets.items():
            self._neg_buckets[i] = self._neg_buckets.get(i, 0) + c
        return self

    def copy(self) -> "QuantileSketch":
        out = QuantileSketch(relative_accuracy=self.relative_accuracy)
        out._buckets = dict(self._buckets)
        out._neg_buckets = dict(self._neg_buckets)
        out._zero = self._zero
        out.count = self.count
        out.total = self.total
        out._min = self._min
        out._max = self._max
        return out

    def delta(self, prev: "QuantileSketch") -> "QuantileSketch":
        """The exact sketch of observations added since ``prev``.

        ``prev`` must be an earlier capture of the *same* cumulative
        stream; bucket counts are monotonic counters, so the per-bucket
        difference is exactly the window's distribution (a restarted
        stream clamps at zero instead of going negative).  Lifetime
        extrema are not window extrema, so ``min``/``max`` are
        reconstructed from the window's own buckets — estimates within
        the usual relative-error bound.
        """
        self._check_compatible(prev)
        out = QuantileSketch(relative_accuracy=self.relative_accuracy)
        for i, c in self._buckets.items():
            d = c - prev._buckets.get(i, 0)
            if d > 0:
                out._buckets[i] = d
        for i, c in self._neg_buckets.items():
            d = c - prev._neg_buckets.get(i, 0)
            if d > 0:
                out._neg_buckets[i] = d
        out._zero = max(0, self._zero - prev._zero)
        out.count = out._zero + sum(out._buckets.values()) + sum(
            out._neg_buckets.values()
        )
        out.total = self.total - prev.total if out.count else 0.0
        if out.count:
            lo, hi = math.inf, -math.inf
            if out._zero:
                lo, hi = 0.0, 0.0
            if out._buckets:
                lo = min(lo, self._bucket_value(min(out._buckets)))
                hi = max(hi, self._bucket_value(max(out._buckets)))
            if out._neg_buckets:
                hi = max(hi, -self._bucket_value(min(out._neg_buckets)))
                lo = min(lo, -self._bucket_value(max(out._neg_buckets)))
            out._min, out._max = lo, hi
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "min": self.min,
            "max": self.max,
        }

    def to_dict(self) -> dict:
        """JSON-safe serialization; :meth:`from_dict` round-trips exactly."""
        out: dict = {
            "kind": "quantile_sketch",
            "relative_accuracy": self.relative_accuracy,
            "count": self.count,
            "total": self.total,
            "zero": self._zero,
            "buckets": {str(i): c for i, c in sorted(self._buckets.items())},
            "neg_buckets": {
                str(i): c for i, c in sorted(self._neg_buckets.items())
            },
        }
        if self.count:
            out["min"] = self._min
            out["max"] = self._max
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        if data.get("kind") != "quantile_sketch":
            raise ValueError(
                f"expected a quantile_sketch dict, got kind={data.get('kind')!r}"
            )
        out = cls(relative_accuracy=float(data["relative_accuracy"]))
        out._buckets = {int(i): int(c) for i, c in data.get("buckets", {}).items()}
        out._neg_buckets = {
            int(i): int(c) for i, c in data.get("neg_buckets", {}).items()
        }
        out._zero = int(data.get("zero", 0))
        out.count = int(data.get("count", 0))
        out.total = float(data.get("total", 0.0))
        if out.count:
            out._min = float(data["min"])
            out._max = float(data["max"])
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            self.relative_accuracy == other.relative_accuracy
            and self.count == other.count
            and self.total == other.total
            and self._zero == other._zero
            and self._min == other._min
            and self._max == other._max
            and self._buckets == other._buckets
            and self._neg_buckets == other._neg_buckets
        )

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(count={self.count}, "
            f"accuracy={self.relative_accuracy}, "
            f"buckets={len(self._buckets) + len(self._neg_buckets)})"
        )
