"""Trace post-processing: per-stage latency breakdowns and nesting checks.

``python -m repro obs-summarize <trace>`` lands here.  The loader accepts
both trace formats the sinks write — the JSONL structured event log and
the Chrome trace-event JSON (complete ``X`` events plus async ``b``/``e``
pairs) — and normalizes them into flat span dicts.  On top of that:

* :func:`summarize_trace` renders the per-stage latency table: for each
  span name, how many were recorded and the mean/p50/p95/max duration.
  Distributions reuse the serving layer's bounded
  :class:`~repro.serve.metrics.Histogram`, so arbitrarily long traces
  summarize in constant memory.
* :func:`check_request_spans` verifies the per-request story holds
  together: every completed request carries the full
  submit → coalesce → flush → backend → scatter chain, each stage nested
  inside the enclosing ``request`` span.  CI runs this against a real
  ``serve-demo --trace-out`` run.
"""

from __future__ import annotations

import json

#: The stage chain every completed request must show, in causal order.
REQUEST_STAGES = ("submit", "coalesce", "flush", "backend", "scatter")


def _spans_from_jsonl(lines) -> list[dict]:
    spans = []
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not JSON ({exc})") from None
        if obj.get("type") != "span":
            continue
        spans.append(obj)
    return spans


def _spans_from_chrome(events) -> list[dict]:
    spans = []
    open_async: dict[tuple, list[dict]] = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "X":
            spans.append(
                {
                    "name": ev.get("name", "?"),
                    "cat": ev.get("cat", ""),
                    "t0": ev.get("ts", 0.0) / 1e6,
                    "t1": (ev.get("ts", 0.0) + ev.get("dur", 0.0)) / 1e6,
                    "attrs": ev.get("args", {}),
                }
            )
        elif ph == "b":
            key = (ev.get("cat"), ev.get("id"), ev.get("name"))
            open_async.setdefault(key, []).append(ev)
        elif ph == "e":
            key = (ev.get("cat"), ev.get("id"), ev.get("name"))
            stack = open_async.get(key)
            if not stack:
                raise ValueError(f"async end without begin: {key}")
            begin = stack.pop()
            spans.append(
                {
                    "name": ev.get("name", "?"),
                    "cat": ev.get("cat", ""),
                    "t0": begin.get("ts", 0.0) / 1e6,
                    "t1": ev.get("ts", 0.0) / 1e6,
                    "request": _as_request(ev.get("id")),
                    "attrs": begin.get("args", {}),
                }
            )
    unclosed = [k for k, stack in open_async.items() if stack]
    if unclosed:
        raise ValueError(f"async begin without end: {unclosed[:3]}")
    return spans


def _as_request(rid):
    try:
        return int(rid)
    except (TypeError, ValueError):
        return rid


def load_trace(path: str) -> list[dict]:
    """Normalized span dicts from a JSONL or Chrome-trace file.

    The format is sniffed from the first non-space character: a Chrome
    trace is one JSON document (``{"traceEvents": [...]}`` or a bare
    array), the structured log is one object per line.
    """
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path} is empty")
    if stripped[0] == "[" or (stripped[0] == "{" and "\n" not in stripped.strip()):
        doc = json.loads(text)
        events = doc["traceEvents"] if isinstance(doc, dict) else doc
        return _spans_from_chrome(events)
    # JSONL — but a pretty-printed Chrome trace also starts with "{", so
    # fall back to whole-document parsing when the first line isn't JSON.
    first_line = stripped.splitlines()[0]
    try:
        json.loads(first_line)
    except json.JSONDecodeError:
        doc = json.loads(text)
        events = doc["traceEvents"] if isinstance(doc, dict) else doc
        return _spans_from_chrome(events)
    return _spans_from_jsonl(text.splitlines())


def _stage_histograms(spans: list[dict]):
    """Per-(category, name) duration histograms, in milliseconds."""
    from repro.serve.metrics import Histogram

    stages: dict[tuple[str, str], "Histogram"] = {}
    for span in spans:
        key = (span.get("cat", ""), span["name"])
        hist = stages.get(key)
        if hist is None:
            hist = stages[key] = Histogram()
        hist.observe((span["t1"] - span["t0"]) * 1e3)
    return stages


def stage_summary(spans: list[dict]) -> dict[str, dict]:
    """Structured per-stage latency summary for one loaded trace.

    Returns ``{"cat/name": {count, mean_ms, p50_ms, p95_ms, max_ms}}`` —
    the machine-readable sibling of :func:`summarize_trace`, consumed by
    the trace-replay benchmark report (:mod:`repro.serve.replay`).
    """
    out: dict[str, dict] = {}
    for (cat, name), h in sorted(_stage_histograms(spans).items()):
        out[f"{cat}/{name}"] = {
            "count": h.count,
            "mean_ms": h.mean,
            "p50_ms": h.percentile(50),
            "p95_ms": h.percentile(95),
            "max_ms": h.max,
        }
    return out


def shard_summary(spans: list[dict]) -> dict:
    """Per-shard stage summaries, keyed by the ``shard`` span attribute.

    Spans emitted through a shard's tagged tracer
    (:class:`~repro.obs.tracer.TaggedTracer`) carry ``shard=k`` in their
    attributes; grouping the stage histograms by that tag is what turns
    "the fabric's flush p95 is slow" into "shard 2's flush p95 is slow".
    Untagged spans (single-broker traces) produce an empty dict.
    """
    by_shard: dict = {}
    for span in spans:
        shard = (span.get("attrs") or {}).get("shard")
        if shard is None:
            continue
        by_shard.setdefault(shard, []).append(span)
    return {
        shard: stage_summary(sub)
        for shard, sub in sorted(by_shard.items(), key=lambda kv: str(kv[0]))
    }


def summarize_shards(spans: list[dict]) -> str:
    """The per-shard stage attribution table; empty for untagged traces."""
    from repro.utils.tables import format_table

    per = shard_summary(spans)
    if not per:
        return ""
    rows = []
    for shard, stages in per.items():
        for key, s in stages.items():
            rows.append(
                [
                    shard,
                    key,
                    s["count"],
                    s["mean_ms"],
                    s["p50_ms"],
                    s["p95_ms"],
                    s["max_ms"],
                ]
            )
    table = format_table(
        ["shard", "stage", "count", "mean ms", "p50 ms", "p95 ms", "max ms"], rows
    )
    return f"per-shard stage attribution ({len(per)} shards)\n{table}"


def summarize_trace(spans: list[dict]) -> str:
    """The per-stage latency breakdown table for one loaded trace.

    Stages are keyed by (category, name): the per-request ``submit`` →
    ``scatter`` chain leads the table in causal order, then the
    subsystem-track stages (bucket flushes, backend runs, sweep
    evaluations, ...) grouped by category.
    """
    from repro.utils.tables import format_table

    stages = _stage_histograms(spans)

    chain = REQUEST_STAGES + ("request",)

    def _order(key: tuple[str, str]) -> tuple:
        cat, name = key
        if cat == "request" and name in chain:
            return (0, "", chain.index(name), name)
        return (1, cat, 0, name)

    rows = []
    for cat, name in sorted(stages, key=_order):
        h = stages[(cat, name)]
        rows.append(
            [cat, name, h.count, h.mean, h.percentile(50), h.percentile(95), h.max]
        )
    if not rows:
        return "(no spans in trace)"
    table = format_table(
        ["cat", "stage", "count", "mean ms", "p50 ms", "p95 ms", "max ms"], rows
    )
    return f"{len(spans)} spans over {len(stages)} stages\n{table}"


def check_request_spans(spans: list[dict], slack_s: float = 1e-6) -> int:
    """Assert every traced request shows its full, correctly nested chain.

    Returns the number of requests checked; raises :class:`ValueError`
    describing the first few violations otherwise.  ``slack_s`` absorbs
    clock rounding at span boundaries (Chrome export quantizes to µs).
    """
    # Request sequence numbers are only unique within one broker, so a
    # sharded-fabric trace needs the shard tag in the grouping key —
    # otherwise shard 0's request 1 and shard 1's request 1 interleave
    # into one bogus chain.
    by_request: dict[tuple, dict[str, list[dict]]] = {}
    for span in spans:
        rid = span.get("request")
        if rid is None:
            continue
        shard = (span.get("attrs") or {}).get("shard")
        key = (shard, rid)
        by_request.setdefault(key, {}).setdefault(span["name"], []).append(span)

    problems: list[str] = []
    checked = 0
    ordered = sorted(by_request.items(), key=lambda kv: (str(kv[0][0]), str(kv[0][1])))
    for (shard, rid), named in ordered:
        roots = named.get("request")
        if not roots:
            # A shed or timed-out request never completes its chain.
            continue
        checked += 1
        root = roots[0]
        label = f"request {rid}" if shard is None else f"shard {shard} request {rid}"
        missing = [stage for stage in REQUEST_STAGES if stage not in named]
        if missing:
            problems.append(f"{label}: missing stages {missing}")
            continue
        last_t0 = root["t0"] - slack_s
        for stage in REQUEST_STAGES:
            span = named[stage][0]
            if span["t0"] < root["t0"] - slack_s or span["t1"] > root["t1"] + slack_s:
                problems.append(
                    f"{label}: stage {stage} "
                    f"[{span['t0']:.6f}, {span['t1']:.6f}] escapes request "
                    f"[{root['t0']:.6f}, {root['t1']:.6f}]"
                )
            if span["t0"] < last_t0 - slack_s:
                problems.append(
                    f"{label}: stage {stage} starts before its predecessor"
                )
            last_t0 = span["t0"]
        backend = named["backend"][0]
        flush = named["flush"][0]
        if (
            backend["t0"] < flush["t0"] - slack_s
            or backend["t1"] > flush["t1"] + slack_s
        ):
            problems.append(f"{label}: backend stage escapes its flush")
    if problems:
        raise ValueError(
            f"{len(problems)} request-nesting violation(s): "
            + "; ".join(problems[:5])
        )
    if checked == 0:
        raise ValueError("trace contains no completed request chains")
    return checked
