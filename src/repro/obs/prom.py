"""Prometheus text exposition for :class:`~repro.serve.metrics.ServeMetrics`.

:func:`render_prometheus` renders the serving layer's counters and
histogram summaries in the Prometheus text format (version 0.0.4): each
counter becomes ``<prefix>_<name>_total``, each histogram becomes a
``summary`` family (``{quantile="..."}`` samples plus ``_sum`` and
``_count``) with ``_min``/``_max`` gauges alongside, and the accounting
invariant surfaces as the ``<prefix>_unaccounted`` gauge an operator can
alarm on.  Metric names are stable — dashboards may depend on them.

:func:`parse_prometheus_text` is the matching line-format checker: it
validates comment syntax, metric-name and label grammar, and sample
values, returning the parsed samples so tests can assert exposition
round-trips.  It accepts any well-formed exposition, not just ours.
"""

from __future__ import annotations

import re

from repro.obs.sketch import QuantileSketch

#: Sample-family types the checker accepts in ``# TYPE`` comments.
METRIC_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")

#: Quantiles rendered per summary family.  Sketch-backed families carry
#: a true p999 as well: the sketch's relative-error guarantee makes the
#: extra tail quantile meaningful, where a reservoir's would be noise.
_QUANTILES = (0.5, 0.95, 0.99)
_SKETCH_QUANTILES = (0.5, 0.95, 0.99, 0.999)


def _quantiles_for(hist) -> tuple[float, ...]:
    return _SKETCH_QUANTILES if isinstance(hist, QuantileSketch) else _QUANTILES

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')

#: Help strings for the counter families (keyed by ServeMetrics counter name).
_COUNTER_HELP = {
    "submitted": "Requests accepted into a bucket (includes later sheds).",
    "completed": "Requests resolved with a result.",
    "failed": "Requests resolved with an error (timeouts included).",
    "timed_out": "Requests whose latency budget expired while queued.",
    "shed": "Requests rejected at the queue-depth cap.",
    "retried": "Requests re-run solo after failing inside a batch.",
    "rescued": "Solo retries that produced a healthy factor.",
    "shadow_checked": "Matrices mirrored through the LAPACK shadow.",
    "shadow_mismatch": "Mirrored matrices that disagreed with LAPACK.",
    "flushes": "Buckets flushed.",
    "flushes_full": "Flushes triggered by a full bucket.",
    "flushes_deadline": "Flushes triggered by the latency deadline.",
    "flushes_drain": "Flushes triggered by broker shutdown drain.",
    # Graph-scheduler families (repro_graph_*, see repro.serve.graph).
    "graphs": "Solve graphs submitted to the scheduler.",
    "graphs_ok": "Graphs whose every node completed.",
    "graphs_failed": "Graphs with at least one failed or skipped node.",
    "nodes": "Graph nodes submitted (across all graphs).",
    "nodes_completed": "Graph nodes resolved with a result.",
    "nodes_failed": "Graph nodes whose own solve failed.",
    "nodes_dep_failed": "Graph nodes skipped because an ancestor failed.",
    "nodes_shed": "Graph nodes rejected by broker overload.",
    "waves": "Ready waves released into the broker.",
}


def _fmt(value: float) -> str:
    """A float the Prometheus scraper accepts (no exotic Python reprs)."""
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _label_str(labels: dict | None, extra: str = "") -> str:
    """``{k="v",...}`` for a sample line; empty string for no labels."""
    parts = []
    for key, value in (labels or {}).items():
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
        escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
        parts.append(f'{key}="{escaped}"')
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(metrics, prefix: str = "repro_serve", labels=None) -> str:
    """The text exposition of one :class:`ServeMetrics` (duck-typed).

    ``metrics`` needs ``counters``, ``histograms`` (name → histogram with
    ``count``/``total``/``min``/``max``/``percentile``), and
    ``unaccounted`` — exactly :class:`~repro.serve.metrics.ServeMetrics`.
    ``labels`` (optional) stamps a fixed label set onto every sample —
    how one shard's metrics render inside a larger page.  Without
    ``labels``, per-shard shed attribution (``metrics.shed_by_shard``) is
    emitted as additional ``shard="k"``-labeled samples of the shed
    family; fabric pages use :func:`render_prometheus_sharded` instead.
    """
    if not _NAME_RE.match(prefix):
        raise ValueError(f"invalid metric prefix {prefix!r}")
    label_s = _label_str(labels)
    lines: list[str] = []
    for name, value in metrics.counters.items():
        full = f"{prefix}_{name}_total"
        help_text = _COUNTER_HELP.get(name, f"Lifetime count of {name}.")
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full}{label_s} {_fmt(value)}")
        if name == "shed" and labels is None:
            for shard, count in sorted(
                getattr(metrics, "shed_by_shard", {}).items()
            ):
                lines.append(f'{full}{{shard="{shard}"}} {_fmt(count)}')

    full = f"{prefix}_unaccounted"
    lines.append(f"# HELP {full} Submitted requests not yet resolved or shed.")
    lines.append(f"# TYPE {full} gauge")
    lines.append(f"{full}{label_s} {_fmt(metrics.unaccounted)}")

    for name, hist in metrics.histograms.items():
        full = f"{prefix}_{name}"
        lines.append(f"# HELP {full} Distribution of {name.replace('_', ' ')}.")
        lines.append(f"# TYPE {full} summary")
        for q in _quantiles_for(hist):
            qs = _label_str(labels, extra=f'quantile="{q}"')
            lines.append(f"{full}{qs} {_fmt(hist.percentile(q * 100))}")
        lines.append(f"{full}_sum{label_s} {_fmt(hist.total)}")
        lines.append(f"{full}_count{label_s} {_fmt(hist.count)}")
        for suffix, value in (("min", hist.min), ("max", hist.max)):
            sub = f"{full}_{suffix}"
            lines.append(f"# HELP {sub} Exact {suffix} of {name.replace('_', ' ')}.")
            lines.append(f"# TYPE {sub} gauge")
            lines.append(f"{sub}{label_s} {_fmt(value)}")
    return "\n".join(lines) + "\n"


def render_graph_prometheus(
    metrics, prefix: str = "repro_graph", labels=None
) -> str:
    """Text exposition of one scheduler's graph metrics.

    ``metrics`` is a :class:`~repro.serve.graph.GraphMetrics`, which
    duck-types the :class:`~repro.serve.metrics.ServeMetrics` surface, so
    this is :func:`render_prometheus` under the disjoint ``repro_graph``
    prefix — a page that concatenates the broker's ``repro_serve_*``
    families with these stays valid under the one-TYPE-per-family rule,
    exactly like :func:`render_controller_prometheus`.
    """
    return render_prometheus(metrics, prefix=prefix, labels=labels)


def render_prometheus_sharded(
    merged, per_shard: dict, prefix: str = "repro_serve"
) -> str:
    """One exposition page for a sharded broker fabric.

    Every family appears **once** (the format forbids duplicate ``# TYPE``
    lines, and :func:`parse_prometheus_text` enforces that), carrying the
    fabric-level merged sample unlabeled plus one ``shard="k"``-labeled
    sample per shard.  ``merged`` is the fabric's merged
    :class:`~repro.serve.metrics.ServeMetrics`; ``per_shard`` maps shard
    id → that shard's own metrics (see
    :meth:`~repro.serve.shard.ShardedBroker.per_shard_metrics`).
    """
    if not _NAME_RE.match(prefix):
        raise ValueError(f"invalid metric prefix {prefix!r}")
    shards = sorted(per_shard.items())
    lines: list[str] = []

    def _samples(full: str, pick, extra: str = "") -> None:
        lines.append(f"{full}{_label_str(None, extra)} {_fmt(pick(merged))}")
        for shard_id, metrics in shards:
            ls = _label_str({"shard": shard_id}, extra)
            lines.append(f"{full}{ls} {_fmt(pick(metrics))}")

    for name in merged.counters:
        full = f"{prefix}_{name}_total"
        help_text = _COUNTER_HELP.get(name, f"Lifetime count of {name}.")
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} counter")
        _samples(full, lambda m, name=name: m.counters.get(name, 0))

    full = f"{prefix}_unaccounted"
    lines.append(f"# HELP {full} Submitted requests not yet resolved or shed.")
    lines.append(f"# TYPE {full} gauge")
    _samples(full, lambda m: m.unaccounted)

    for name in merged.histograms:
        full = f"{prefix}_{name}"
        lines.append(f"# HELP {full} Distribution of {name.replace('_', ' ')}.")
        lines.append(f"# TYPE {full} summary")

        def _hist(m, name=name):
            # Per-tier families exist only on shards that saw that tier;
            # an absent family reads as an empty distribution.
            found = m.histograms.get(name)
            if found is None:
                return type(merged.histograms[name])()
            return found

        for q in _quantiles_for(merged.histograms[name]):
            _samples(
                full,
                lambda m, q=q: _hist(m).percentile(q * 100),
                extra=f'quantile="{q}"',
            )
        _samples(f"{full}_sum", lambda m: _hist(m).total)
        _samples(f"{full}_count", lambda m: _hist(m).count)
        for suffix in ("min", "max"):
            sub = f"{full}_{suffix}"
            lines.append(f"# HELP {sub} Exact {suffix} of {name.replace('_', ' ')}.")
            lines.append(f"# TYPE {sub} gauge")
            _samples(sub, lambda m, suffix=suffix: getattr(_hist(m), suffix))
    return "\n".join(lines) + "\n"


#: Per-tier counter events rendered by :func:`render_tier_prometheus`.
_TIER_EVENTS = (
    ("submitted", "Requests submitted under this tier."),
    ("completed", "Requests of this tier resolved with a result."),
    ("failed", "Requests of this tier resolved with an error."),
    ("shed", "Requests of this tier shed by admission or backpressure."),
)

#: Sketch families with per-tier variants on a tiered ServeMetrics.
_TIER_FAMILIES = ("coalesce_latency_ms", "flush_service_ms")


def render_tier_prometheus(metrics, prefix: str = "repro_tier", labels=None) -> str:
    """Text exposition of the admission layer's tier/tenant attribution.

    Renders one family per event with ``tier="..."``-labeled samples
    (``repro_tier_submitted_total{tier="gold"}``), per-tenant counters
    under ``tenant="..."`` labels, per-tier latency summaries, and a
    ``repro_tier_fairness_jain`` gauge — Jain's index over per-tenant
    completions, the same statistic the ``replay-check --tiers`` gate
    holds.  The ``repro_tier`` prefix is disjoint from ``repro_serve``/
    ``repro_graph``/``repro_control``, so concatenated pages stay valid
    under the one-TYPE-per-family rule.  Empty (``""``) when ``metrics``
    carries no tier attribution — no admission layer was attached.
    """
    if not _NAME_RE.match(prefix):
        raise ValueError(f"invalid metric prefix {prefix!r}")
    tiers = list(getattr(metrics, "tier_names", ()) or ())
    if not tiers:
        return ""
    base = dict(labels or {})
    lines: list[str] = []
    for event, help_text in _TIER_EVENTS:
        full = f"{prefix}_{event}_total"
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} counter")
        for tier in tiers:
            ls = _label_str({**base, "tier": tier})
            lines.append(f"{full}{ls} {_fmt(metrics.tier_counter(tier, event))}")
    for attr, event in (
        ("submitted_by_tenant", "submitted"),
        ("completed_by_tenant", "completed"),
        ("shed_by_tenant", "shed"),
    ):
        by_tenant = getattr(metrics, attr, {}) or {}
        full = f"{prefix}_tenant_{event}_total"
        lines.append(f"# HELP {full} Per-tenant {event} requests.")
        lines.append(f"# TYPE {full} counter")
        for tenant in sorted(by_tenant):
            ls = _label_str({**base, "tenant": tenant})
            lines.append(f"{full}{ls} {_fmt(by_tenant[tenant])}")
    completions = [
        v for _, v in sorted((getattr(metrics, "completed_by_tenant", {}) or {}).items())
    ]
    square_sum = sum(float(v) * float(v) for v in completions)
    total = sum(float(v) for v in completions)
    fairness = (
        (total * total) / (len(completions) * square_sum) if square_sum else 1.0
    )
    full = f"{prefix}_fairness_jain"
    lines.append(
        f"# HELP {full} Jain's fairness index over per-tenant completions."
    )
    lines.append(f"# TYPE {full} gauge")
    lines.append(f"{full}{_label_str(base)} {_fmt(fairness)}")
    for family in _TIER_FAMILIES:
        rows = [
            (tier, metrics.histograms.get(f"tier_{tier}_{family}"))
            for tier in tiers
        ]
        rows = [(tier, hist) for tier, hist in rows if hist is not None]
        if not rows:
            continue
        full = f"{prefix}_{family}"
        lines.append(
            f"# HELP {full} Per-tier distribution of {family.replace('_', ' ')}."
        )
        lines.append(f"# TYPE {full} summary")
        for tier, hist in rows:
            for q in _quantiles_for(hist):
                ls = _label_str({**base, "tier": tier}, extra=f'quantile="{q}"')
                lines.append(f"{full}{ls} {_fmt(hist.percentile(q * 100))}")
            ls = _label_str({**base, "tier": tier})
            lines.append(f"{full}_sum{ls} {_fmt(hist.total)}")
            lines.append(f"{full}_count{ls} {_fmt(hist.count)}")
    return "\n".join(lines) + "\n"


#: Arena (zero-copy data plane) families: metrics.arena key → (suffix,
#: type, help).  Disjoint ``repro_arena`` prefix, same concatenation
#: rule as the tier/controller pages.
_ARENA_FAMILIES = (
    (
        "slots_staged",
        "slots_staged_total",
        "counter",
        "Requests staged into shared-memory arena slots at enqueue time.",
    ),
    (
        "slots_released",
        "slots_released_total",
        "counter",
        "Arena slots returned to their pool (scatter and failure paths).",
    ),
    (
        "stage_fallbacks",
        "stage_fallbacks_total",
        "counter",
        "Requests the arena could not stage (disabled or unavailable).",
    ),
    (
        "bytes_staged",
        "bytes_staged_total",
        "counter",
        "Payload bytes written into arena slots (the coalescing write).",
    ),
    (
        "bytes_copied_fallback",
        "bytes_copied_fallback_total",
        "counter",
        "Flush-payload bytes moved by copy/pickle instead of the arena.",
    ),
    (
        "generation_bumps",
        "generation_bumps_total",
        "counter",
        "Slot generation bumps from worker-death re-staging.",
    ),
    (
        "hwm_bytes",
        "hwm_bytes",
        "gauge",
        "High-water mark of allocated arena segment bytes.",
    ),
)


def render_arena_prometheus(metrics, prefix: str = "repro_arena", labels=None) -> str:
    """Text exposition of the zero-copy data plane's accounting.

    ``metrics`` is a :class:`~repro.serve.metrics.ServeMetrics` (duck
    typed: anything with an ``arena`` dict).  Renders the
    ``repro_arena_*`` counter/gauge families plus the
    ``repro_arena_slots_leaked`` gauge — the conservation invariant
    (``staged - released``) an operator alarms on, exactly what the
    fault-injection gates hold at zero.  Empty (``""``) when no arena
    event was ever recorded — the data plane was off and the run never
    paid a copy, so the page carries no family at all.
    """
    if not _NAME_RE.match(prefix):
        raise ValueError(f"invalid metric prefix {prefix!r}")
    arena = dict(getattr(metrics, "arena", None) or {})
    if not any(arena.values()):
        return ""
    label_s = _label_str(labels)
    lines: list[str] = []
    for key, suffix, kind, help_text in _ARENA_FAMILIES:
        full = f"{prefix}_{suffix}"
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} {kind}")
        lines.append(f"{full}{label_s} {_fmt(arena.get(key, 0))}")
    leaked = arena.get("slots_staged", 0) - arena.get("slots_released", 0)
    full = f"{prefix}_slots_leaked"
    lines.append(f"# HELP {full} Slots staged but never released (alarm on != 0).")
    lines.append(f"# TYPE {full} gauge")
    lines.append(f"{full}{label_s} {_fmt(leaked)}")
    return "\n".join(lines) + "\n"


#: Controller gauge families: report key → (suffix, help text).  The
#: ``repro_control`` prefix is disjoint from ``repro_serve``, so a demo
#: page that concatenates both expositions stays valid under the
#: one-TYPE-per-family rule :func:`parse_prometheus_text` enforces.
_CONTROL_GAUGES = (
    ("decisions", "decisions_total", "Controller decision cycles taken."),
    ("changes", "changes_total", "Decisions that adjusted a knob."),
    ("target_batch", "target_batch", "Current flush-threshold knob."),
    ("max_delay_ms", "max_delay_ms", "Current latency-deadline knob (ms)."),
    ("score", "score", "Strategy score of the last observation window."),
)


def render_controller_prometheus(
    status: dict, prefix: str = "repro_control", labels=None
) -> str:
    """Text exposition of one controller's gauges.

    ``status`` is :meth:`PolicyController.status` (duck-typed: any dict
    with the gauge keys; missing keys are skipped).  The strategy name
    rides as a label on every sample, so dashboards can tell an ``aimd``
    run from a ``hill`` run without a separate series.
    """
    if not _NAME_RE.match(prefix):
        raise ValueError(f"invalid metric prefix {prefix!r}")
    all_labels = dict(labels or {})
    if status.get("strategy"):
        all_labels["strategy"] = status["strategy"]
    label_s = _label_str(all_labels)
    lines: list[str] = []
    for key, suffix, help_text in _CONTROL_GAUGES:
        if status.get(key) is None:
            continue
        full = f"{prefix}_{suffix}"
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full}{label_s} {_fmt(status[key])}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_value(text: str, lineno: int) -> float:
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"line {lineno}: invalid sample value {text!r}") from None


def _parse_labels(text: str, lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    if not text.strip():
        return labels
    for part in text.split(","):
        m = _LABEL_RE.match(part.strip())
        if not m:
            raise ValueError(f"line {lineno}: malformed label {part.strip()!r}")
        labels[m.group("name")] = m.group("value")
    return labels


def parse_prometheus_text(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Validate a text exposition; returns ``{name: [(labels, value), ...]}``.

    Raises :class:`ValueError` naming the offending line for any syntax
    the format forbids: bad metric/label names, non-numeric values,
    malformed or duplicated ``# TYPE`` comments.
    """
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    types: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Arbitrary comments are legal; HELP/TYPE must be well formed.
                if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                    raise ValueError(f"line {lineno}: truncated {parts[1]} comment")
                continue
            kind, name = parts[1], parts[2]
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: invalid metric name {name!r}")
            if kind == "TYPE":
                if len(parts) != 4 or parts[3] not in METRIC_TYPES:
                    raise ValueError(
                        f"line {lineno}: TYPE must be one of {METRIC_TYPES}"
                    )
                if name in types:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
                types[name] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample line {line!r}")
        name = m.group("name")
        labels = _parse_labels(m.group("labels") or "", lineno)
        value = _parse_value(m.group("value"), lineno)
        samples.setdefault(name, []).append((labels, value))
    return samples
