"""repro.obs — cross-cutting tracing and telemetry.

The paper's contribution is *explaining where time goes*; this package
gives the runtime the same treatment.  A span-based tracer
(:mod:`repro.obs.tracer`) threads request stages through the serving
layer, autotuning sweeps, and the event simulator; sinks
(:mod:`repro.obs.sinks`) export them as a JSONL structured log or a
Chrome/Perfetto trace; :mod:`repro.obs.prom` renders
:class:`~repro.serve.metrics.ServeMetrics` in the Prometheus text format;
:mod:`repro.obs.summarize` turns a trace back into a per-stage latency
table.  Tracing is off (and near-free) by default — enable it with
:func:`set_tracer`, ``serve-demo --trace-out``, or ``$REPRO_TRACE``.

The SLO engine lives here too: :mod:`repro.obs.sketch` is the mergeable
relative-error quantile sketch behind every latency percentile, and
:mod:`repro.obs.slo` evaluates burn-rate objectives over lossless
sliding windows and keeps the black-box flight recorder.  See
``docs/observability.md`` and ``docs/slo.md``.
"""

from repro.obs.prom import (
    parse_prometheus_text,
    render_arena_prometheus,
    render_controller_prometheus,
    render_graph_prometheus,
    render_prometheus,
    render_prometheus_sharded,
    render_tier_prometheus,
)
from repro.obs.sinks import (
    ChromeTraceSink,
    InMemorySink,
    JsonlSink,
    SpanSink,
    span_to_dict,
)
from repro.obs.sketch import QuantileSketch
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    FLIGHT_FORMAT,
    SLO_ENV,
    FlightRecorder,
    SloMonitor,
    SloObjective,
    SloPolicy,
    SloStatus,
    evaluate_objectives,
    is_flight_record,
    load_flight_record,
    parse_objectives,
    slo_from_env,
    summarize_flight_record,
)
from repro.obs.summarize import (
    REQUEST_STAGES,
    check_request_spans,
    load_trace,
    shard_summary,
    stage_summary,
    summarize_shards,
    summarize_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_ENV,
    NullTracer,
    Span,
    TaggedTracer,
    Tracer,
    current_span,
    get_tracer,
    init_from_env,
    set_tracer,
    tracer_from_env,
)

__all__ = [
    "ChromeTraceSink",
    "DEFAULT_OBJECTIVES",
    "FLIGHT_FORMAT",
    "FlightRecorder",
    "InMemorySink",
    "JsonlSink",
    "NULL_TRACER",
    "NullTracer",
    "QuantileSketch",
    "REQUEST_STAGES",
    "SLO_ENV",
    "SloMonitor",
    "SloObjective",
    "SloPolicy",
    "SloStatus",
    "Span",
    "SpanSink",
    "TRACE_ENV",
    "Tracer",
    "TaggedTracer",
    "check_request_spans",
    "current_span",
    "evaluate_objectives",
    "get_tracer",
    "init_from_env",
    "is_flight_record",
    "load_flight_record",
    "load_trace",
    "parse_objectives",
    "parse_prometheus_text",
    "render_arena_prometheus",
    "render_controller_prometheus",
    "render_graph_prometheus",
    "render_prometheus",
    "render_prometheus_sharded",
    "render_tier_prometheus",
    "set_tracer",
    "shard_summary",
    "slo_from_env",
    "span_to_dict",
    "stage_summary",
    "summarize_flight_record",
    "summarize_shards",
    "summarize_trace",
    "tracer_from_env",
]

# Honour $REPRO_TRACE for any entry point that imports the package.
init_from_env()
