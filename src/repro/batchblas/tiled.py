"""Tile Cholesky factorization built from batched BLAS (Figure 6).

"Also, all operations involved in the Cholesky factorization can be
tiled, i.e., expressed as a set of operations on blocks of size
nb x nb (Figure 6)."  This module implements that left-looking *tile
algorithm* at the library level: the matrix is partitioned into tiles and
each step issues batched POTRF/TRSM/SYRK/GEMM calls across the whole
batch — the way LAPACK-style batch libraries compose kernels for matrix
sizes beyond the single-kernel regime.

For each tile column ``kk`` (left-looking):

1. ``SYRK``:  A[kk,kk] -= sum_j A[kk,j] A[kk,j]^T
2. ``POTRF``: factor the diagonal tile (via the generated small-matrix
   kernel — the paper's contribution used as the base case)
3. ``GEMM``:  A[mm,kk] -= sum_j A[mm,j] A[kk,j]^T  for mm > kk
4. ``TRSM``:  A[mm,kk] := A[mm,kk] L[kk,kk]^{-T}
"""

from __future__ import annotations

import numpy as np

from repro.batchblas.api import batched_gemm, batched_syrk, batched_trsm
from repro.core.config import KernelConfig
from repro.core.factorize import batch_cholesky


def tile_cholesky(
    a: np.ndarray,
    tile: int = 8,
    chunk_size: int | None = 32,
    base_config: KernelConfig | None = None,
) -> np.ndarray:
    """Left-looking tile Cholesky of a dense batch, via batched BLAS.

    ``a`` is ``(batch, n, n)`` with ``n`` divisible by ``tile``.  Returns
    the batch with lower triangles holding ``L`` (strictly upper parts
    untouched, as everywhere in this library).

    The diagonal-tile factorizations use the generated interleaved
    kernels; off-diagonal updates use the batched GEMM/SYRK/TRSM
    routines, so the whole factorization exercises the package's public
    batch-BLAS surface.
    """
    a = np.asarray(a)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValueError(f"expected a (batch, n, n) array, got {a.shape}")
    n = a.shape[1]
    if tile <= 0 or n % tile:
        raise ValueError(f"tile size {tile} must divide n={n}")
    t = n // tile
    if base_config is None:
        base_config = KernelConfig(n=tile, nb=min(4, tile), looking="top")
    elif base_config.n != tile:
        raise ValueError(f"base_config.n={base_config.n} != tile={tile}")

    out = np.ascontiguousarray(a, dtype=np.float32).copy()

    def blk(i: int, j: int) -> np.ndarray:
        return out[:, i * tile : (i + 1) * tile, j * tile : (j + 1) * tile]

    for kk in range(t):
        # 1. bring the diagonal tile up to date
        diag = blk(kk, kk).copy()
        for j in range(kk):
            diag = batched_syrk(blk(kk, j), diag, alpha=-1.0, beta=1.0,
                                chunk_size=chunk_size)
        # 2. factor it with the generated small-matrix kernel
        blk(kk, kk)[...] = batch_cholesky(diag, base_config)
        # 3. update the panel below
        for mm in range(kk + 1, t):
            panel = blk(mm, kk).copy()
            for j in range(kk):
                panel = batched_gemm(
                    blk(mm, j), blk(kk, j), panel,
                    alpha=-1.0, beta=1.0, transb=True, chunk_size=chunk_size,
                )
            # 4. triangular solve against the factored diagonal
            blk(mm, kk)[...] = batched_trsm(
                blk(kk, kk), panel, side="right", chunk_size=chunk_size
            )
    return out
