"""User-facing batched BLAS routines.

Each routine packs its dense operands into the interleaved layout
(chunked by default, like the factorization driver), runs the generated
kernel vectorised over all chunks, and unpacks the result.  Semantics
match :mod:`repro.batchblas.reference` exactly.
"""

from __future__ import annotations

import numpy as np

from repro.batchblas.kernels import gemm_kernel, syrk_kernel, trsm_kernel
from repro.layouts.vectors import pack_vectors, unpack_vectors, vector_lane_view

#: Default interleave group; ``None`` selects the simple (whole-batch)
#: interleave like the non-chunked factorization kernels.
DEFAULT_CHUNK = 32


def _as_dense(name: str, x: np.ndarray) -> np.ndarray:
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"{name} must be (batch, rows, cols), got {x.shape}")
    return np.ascontiguousarray(x, dtype=np.float32)


def _views(dense: np.ndarray, chunk: int | None):
    batch, rows, cols = dense.shape
    buf = pack_vectors(dense, chunk)
    view = vector_lane_view(buf, batch, rows, cols, chunk)
    return buf, view


def batched_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
    transa: bool = False,
    transb: bool = False,
    chunk_size: int | None = DEFAULT_CHUNK,
) -> np.ndarray:
    """``C := alpha * op(A) @ op(B) + beta * C`` for every batch entry."""
    a = _as_dense("A", a)
    b = _as_dense("B", b)
    c = _as_dense("C", c)
    if not (a.shape[0] == b.shape[0] == c.shape[0]):
        raise ValueError("batch dimensions differ")
    m, n = c.shape[1], c.shape[2]
    k = a.shape[1] if transa else a.shape[2]
    opa_shape = (k, m) if transa else (m, k)
    opb_shape = (n, k) if transb else (k, n)
    if a.shape[1:] != opa_shape:
        raise ValueError(f"A has shape {a.shape[1:]}, expected {opa_shape}")
    if b.shape[1:] != opb_shape:
        raise ValueError(f"B has shape {b.shape[1:]}, expected {opb_shape}")

    kernel = gemm_kernel(m, n, k, transa, transb)
    _, da = _views(a, chunk_size)
    _, db = _views(b, chunk_size)
    buf_c, dc = _views(c, chunk_size)
    kernel(da, db, dc, np.float32(alpha), np.float32(beta), np)
    return unpack_vectors(buf_c, c.shape[0], m, n, chunk_size)


def batched_syrk(
    a: np.ndarray,
    c: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
    chunk_size: int | None = DEFAULT_CHUNK,
) -> np.ndarray:
    """``C := alpha * A @ A^T + beta * C`` on the lower triangle."""
    a = _as_dense("A", a)
    c = _as_dense("C", c)
    if a.shape[0] != c.shape[0]:
        raise ValueError("batch dimensions differ")
    m, k = a.shape[1], a.shape[2]
    if c.shape[1:] != (m, m):
        raise ValueError(f"C must be (batch, {m}, {m}), got {c.shape}")
    kernel = syrk_kernel(m, k)
    _, da = _views(a, chunk_size)
    buf_c, dc = _views(c, chunk_size)
    kernel(da, dc, np.float32(alpha), np.float32(beta), np)
    return unpack_vectors(buf_c, c.shape[0], m, m, chunk_size)


def batched_trsm(
    l: np.ndarray,
    b: np.ndarray,
    alpha: float = 1.0,
    side: str = "left",
    chunk_size: int | None = DEFAULT_CHUNK,
) -> np.ndarray:
    """Batched triangular solve against lower factors.

    ``side='left'`` solves ``L X = alpha B``; ``side='right'`` solves
    ``X L^T = alpha B`` (the Cholesky panel operation).  Only the lower
    triangles of ``l`` are referenced.
    """
    l = _as_dense("L", l)
    b = _as_dense("B", b)
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    if l.shape[0] != b.shape[0]:
        raise ValueError("batch dimensions differ")
    if l.shape[1] != l.shape[2]:
        raise ValueError(f"L must be square, got {l.shape}")
    k = l.shape[1]
    if side == "left" and b.shape[1] != k:
        raise ValueError(f"B rows {b.shape[1]} != L dimension {k}")
    if side == "right" and b.shape[2] != k:
        raise ValueError(f"B cols {b.shape[2]} != L dimension {k}")

    other = b.shape[2] if side == "left" else b.shape[1]
    kernel = trsm_kernel(k, other, side)
    # Padding lanes must stay dividable: extend L with identity matrices
    # (pack_vectors pads with zeros, which would put 0/0 NaNs in the
    # discarded lanes and trip FP warnings).
    batch = l.shape[0]
    group = chunk_size if chunk_size is not None else 32
    padded = -(-batch // group) * group
    if padded != batch:
        l_padded = np.zeros((padded, k, k), dtype=l.dtype)
        l_padded[:batch] = l
        l_padded[batch:] = np.eye(k, dtype=l.dtype)
        l = l_padded
        b_padded = np.zeros((padded, b.shape[1], b.shape[2]), dtype=b.dtype)
        b_padded[:batch] = b
        b = b_padded
    _, dl = _views(l, chunk_size)
    buf_b, db = _views(b, chunk_size)
    kernel(dl, db, np.float32(alpha), np.float32(1.0), np)
    return unpack_vectors(buf_b, padded, b.shape[1], b.shape[2], chunk_size)[:batch]
