"""Batched BLAS on interleaved layouts.

The paper situates itself among the batched BLAS efforts of cuBLAS, MKL
and MAGMA (Section I.B) and builds its factorization from four BLAS-named
tile operations (POTRF/TRSM/SYRK/GEMM, Section II.A).  This package
provides those operations as *standalone batched routines* over
interleaved buffers — the library a downstream user would call for their
own small-matrix pipelines:

* :func:`~repro.batchblas.api.batched_gemm` — ``C := alpha op(A) op(B) + beta C``
* :func:`~repro.batchblas.api.batched_syrk` — ``C := alpha A A^T + beta C`` (lower)
* :func:`~repro.batchblas.api.batched_trsm` — triangular solves against a
  lower factor (left ``L X = alpha B`` or right ``X L^T = alpha B``)

Each routine has a generated, fully unrolled interleaved kernel (same
pipeline as the factorization kernels) and a vectorised NumPy reference
(:mod:`repro.batchblas.reference`) used as its oracle.

On top of them, :mod:`repro.batchblas.tiled` implements the paper's
Figure 6 — the *tile Cholesky factorization*: a left-looking blocked
factorization expressed entirely as batched BLAS calls on ``nb``-sized
tiles, the way LAPACK-style libraries scale batch kernels to larger
matrices.
"""

from repro.batchblas.reference import (
    reference_gemm,
    reference_syrk,
    reference_trsm,
)
from repro.batchblas.api import batched_gemm, batched_syrk, batched_trsm
from repro.batchblas.tiled import tile_cholesky

__all__ = [
    "reference_gemm",
    "reference_syrk",
    "reference_trsm",
    "batched_gemm",
    "batched_syrk",
    "batched_trsm",
    "tile_cholesky",
]
