"""Vectorised NumPy references for the batched BLAS routines.

These define the exact semantics (BLAS conventions, column-major
logical matrices stored as ``(batch, rows, cols)`` dense arrays) that the
generated kernels must match.
"""

from __future__ import annotations

import numpy as np


def _check_batch3(name: str, x: np.ndarray) -> np.ndarray:
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"{name} must be (batch, rows, cols), got {x.shape}")
    return x


def reference_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
    transa: bool = False,
    transb: bool = False,
) -> np.ndarray:
    """``C := alpha * op(A) @ op(B) + beta * C`` per batch entry."""
    a = _check_batch3("A", a)
    b = _check_batch3("B", b)
    c = _check_batch3("C", c)
    if a.shape[0] != b.shape[0] or a.shape[0] != c.shape[0]:
        raise ValueError("batch dimensions differ")
    opa = a.transpose(0, 2, 1) if transa else a
    opb = b.transpose(0, 2, 1) if transb else b
    if opa.shape[2] != opb.shape[1]:
        raise ValueError(
            f"inner dimensions differ: op(A) {opa.shape} vs op(B) {opb.shape}"
        )
    if c.shape[1:] != (opa.shape[1], opb.shape[2]):
        raise ValueError(f"C has shape {c.shape[1:]}, expected "
                         f"{(opa.shape[1], opb.shape[2])}")
    return alpha * (opa @ opb) + beta * c


def reference_syrk(
    a: np.ndarray,
    c: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> np.ndarray:
    """``C := alpha * A @ A^T + beta * C`` on the lower triangle.

    The strictly upper part of ``C`` is returned unchanged (BLAS
    convention for ``uplo='L'``).
    """
    a = _check_batch3("A", a)
    c = _check_batch3("C", c)
    if a.shape[0] != c.shape[0]:
        raise ValueError("batch dimensions differ")
    m = a.shape[1]
    if c.shape[1:] != (m, m):
        raise ValueError(f"C must be (batch, {m}, {m}), got {c.shape}")
    full = alpha * (a @ a.transpose(0, 2, 1)) + beta * c
    lower = np.tril(np.ones((m, m), dtype=bool))
    out = np.array(c, copy=True)
    out[:, lower] = full[:, lower]
    return out


def reference_trsm(
    l: np.ndarray,
    b: np.ndarray,
    alpha: float = 1.0,
    side: str = "left",
) -> np.ndarray:
    """Triangular solve against a lower factor, per batch entry.

    ``side='left'``  solves ``L X = alpha B``  (X overwrites B's shape);
    ``side='right'`` solves ``X L^T = alpha B`` — the Cholesky panel
    update, the operation ``strsm_tile`` implements.
    Only the lower triangle of ``l`` is referenced.
    """
    l = _check_batch3("L", l)
    b = _check_batch3("B", b)
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    if l.shape[0] != b.shape[0]:
        raise ValueError("batch dimensions differ")
    if l.shape[1] != l.shape[2]:
        raise ValueError(f"L must be square, got {l.shape}")
    k = l.shape[1]
    tri = np.tril(l).astype(np.float64)
    rhs = alpha * b.astype(np.float64)
    if side == "left":
        if b.shape[1] != k:
            raise ValueError(f"B rows {b.shape[1]} != L dimension {k}")
        x = np.empty_like(rhs)
        for i in range(k):
            x[:, i, :] = rhs[:, i, :]
            if i:
                x[:, i, :] -= np.einsum("bj,bjc->bc", tri[:, i, :i], x[:, :i, :])
            x[:, i, :] /= tri[:, i, i, None]
    else:
        if b.shape[2] != k:
            raise ValueError(f"B cols {b.shape[2]} != L dimension {k}")
        x = np.empty_like(rhs)
        for j in range(k):
            x[:, :, j] = rhs[:, :, j]
            if j:
                x[:, :, j] -= np.einsum("bc,brc->br", tri[:, j, :j], x[:, :, :j])
            x[:, :, j] /= tri[:, j, j, None]
    return x.astype(np.result_type(l.dtype, b.dtype))
