"""Generated interleaved kernels for the batched BLAS routines.

Same pipeline as the factorization kernels: pyexpander templates expand to
fully unrolled straight-line code over interleaved buffer views, one
thread (NumPy lane) per matrix.  Buffers are indexed by the column-major
element id ``e = c * rows + r``; ``alpha``/``beta`` stay runtime
arguments so one compiled kernel serves every scaling.

Being fully unrolled, these kernels target the paper's regime (matrices
up to a few dozen rows/columns); a guard rejects shapes whose unrolled
code would be unreasonable.
"""

from __future__ import annotations

from typing import Callable

from repro.codegen.expander import expand

#: Reject kernels beyond this many generated statements.
MAX_STATEMENTS = 40_000

_GEMM_TEMPLATE = """\
$for(m in range(0, M))\
$for(n in range(0, N))\
_t = dA[$(ea(m, 0))] * dB[$(eb(0, n))]
$for(k in range(1, K))\
_t = _t + dA[$(ea(m, k))] * dB[$(eb(k, n))]
$endfor\
dC[$(ec(m, n))] = _alpha * _t + _beta * dC[$(ec(m, n))]
$endfor\
$endfor\
"""

_SYRK_TEMPLATE = """\
$for(m in range(0, M))\
$for(n in range(0, m + 1))\
_t = dA[$(ea(m, 0))] * dA[$(ea(n, 0))]
$for(k in range(1, K))\
_t = _t + dA[$(ea(m, k))] * dA[$(ea(n, k))]
$endfor\
dC[$(ec(m, n))] = _alpha * _t + _beta * dC[$(ec(m, n))]
$endfor\
$endfor\
"""

_TRSM_LEFT_TEMPLATE = """\
$for(c in range(0, C))\
$for(i in range(0, K))\
rX_$(i) = _alpha * dB[$(eb(i, c))]
$for(j in range(0, i))\
rX_$(i) = rX_$(i) - dL[$(el(i, j))] * rX_$(j)
$endfor\
rX_$(i) = rX_$(i) / dL[$(el(i, i))]
$endfor\
$for(i in range(0, K))\
dB[$(eb(i, c))] = rX_$(i)
$endfor\
$endfor\
"""

_TRSM_RIGHT_TEMPLATE = """\
$for(r in range(0, R))\
$for(j in range(0, K))\
rX_$(j) = _alpha * dB[$(eb(r, j))]
$for(c in range(0, j))\
rX_$(j) = rX_$(j) - dL[$(el(j, c))] * rX_$(c)
$endfor\
rX_$(j) = rX_$(j) / dL[$(el(j, j))]
$endfor\
$for(j in range(0, K))\
dB[$(eb(r, j))] = rX_$(j)
$endfor\
$endfor\
"""


def _element(rows: int):
    """Column-major element id within an interleaved (rows x cols) block."""

    def e(r: int, c: int) -> int:
        return c * rows + r

    return e


def _op_element(rows: int, trans: bool):
    """Element id of op(X)[i, j] given X's physical row count."""
    base = _element(rows)
    if trans:
        return lambda i, j: base(j, i)
    return base


def _compile(source: str, name: str, arg_names: tuple[str, ...]) -> Callable:
    header = f"def _blas_kernel({', '.join(arg_names)}, _alpha, _beta, _np):\n"
    lines = [line for line in source.splitlines() if line]
    if len(lines) > MAX_STATEMENTS:
        raise ValueError(
            f"{name} kernel would unroll to {len(lines)} statements "
            f"(limit {MAX_STATEMENTS}); shape too large for the batch regime"
        )
    body = header + "\n".join("    " + line for line in lines) + "\n"
    namespace: dict = {}
    exec(compile(body, f"<{name} kernel>", "exec"), namespace)  # noqa: S102
    return namespace["_blas_kernel"]


_CACHE: dict[tuple, Callable] = {}


def gemm_kernel(m: int, n: int, k: int, transa: bool, transb: bool) -> Callable:
    """Compiled ``C := alpha op(A) op(B) + beta C`` kernel for one shape."""
    _check_dims(m=m, n=n, k=k)
    key = ("gemm", m, n, k, transa, transb)
    if key not in _CACHE:
        rows_a = k if transa else m
        rows_b = n if transb else k
        source = expand(
            _GEMM_TEMPLATE,
            {
                "M": m,
                "N": n,
                "K": k,
                "ea": _op_element(rows_a, transa),
                "eb": _op_element(rows_b, transb),
                "ec": _element(m),
            },
        )
        raw = _compile(source, "gemm", ("dA", "dB", "dC"))
        _CACHE[key] = raw
    return _CACHE[key]


def syrk_kernel(m: int, k: int) -> Callable:
    """Compiled lower ``C := alpha A A^T + beta C`` kernel for one shape."""
    _check_dims(m=m, k=k)
    key = ("syrk", m, k)
    if key not in _CACHE:
        source = expand(
            _SYRK_TEMPLATE,
            {"M": m, "K": k, "ea": _element(m), "ec": _element(m)},
        )
        _CACHE[key] = _compile(source, "syrk", ("dA", "dC"))
    return _CACHE[key]


def trsm_kernel(k: int, other: int, side: str) -> Callable:
    """Compiled triangular-solve kernel.

    ``side='left'``: solve ``L X = alpha B`` with ``B`` of shape
    ``(k, other)``; ``side='right'``: solve ``X L^T = alpha B`` with ``B``
    of shape ``(other, k)``.
    """
    _check_dims(k=k, other=other)
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    key = ("trsm", k, other, side)
    if key not in _CACHE:
        if side == "left":
            source = expand(
                _TRSM_LEFT_TEMPLATE,
                {"K": k, "C": other, "eb": _element(k), "el": _element(k)},
            )
        else:
            source = expand(
                _TRSM_RIGHT_TEMPLATE,
                {"K": k, "R": other, "eb": _element(other), "el": _element(k)},
            )
        _CACHE[key] = _compile(source, "trsm", ("dL", "dB"))
    return _CACHE[key]


def clear_blas_kernel_cache() -> None:
    _CACHE.clear()


def _check_dims(**dims: int) -> None:
    for name, value in dims.items():
        if not isinstance(value, int) or value <= 0:
            raise ValueError(f"{name} must be a positive integer, got {value!r}")
