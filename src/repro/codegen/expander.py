"""A from-scratch pyexpander-compatible template engine.

The paper's kernels (Figures 9-12) are written as *pyexpander* templates.
This module implements the subset of pyexpander used there, so the kernel
templates in :mod:`repro.codegen.microkernels` and friends read almost
exactly like the paper's listings:

* ``$(expr)`` — evaluate a Python expression and splice in ``str(value)``.
* ``$for(target in expr)`` ... ``$endfor`` — expansion-time loop.
* ``$if(expr)`` / ``$elif(expr)`` / ``$else`` / ``$endif`` — conditionals.
* ``$py(stmt)`` — execute a statement in the template environment.
* a backslash at the end of a line suppresses the newline (pyexpander's
  line-continuation rule, used heavily in the paper's listings).
* ``$$`` — a literal dollar sign.

Expansion happens against a caller-supplied environment dictionary (the
paper passes ``NB``, ``N`` etc. on the pyexpander command line).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class ExpanderError(ValueError):
    """Raised for malformed templates or failing template expressions."""


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


@dataclass
class _Text:
    text: str


@dataclass
class _Subst:
    expr: str
    pos: int


@dataclass
class _Exec:
    stmt: str
    pos: int


@dataclass
class _For:
    header: str  # e.g. "k in range(0, NB)"
    body: list
    pos: int


@dataclass
class _If:
    #: list of (condition-or-None, body); None condition is the $else branch
    branches: list = field(default_factory=list)
    pos: int = 0


def _find_balanced(src: str, start: int) -> int:
    """Index just past the ``)`` matching the ``(`` at ``src[start]``.

    Understands nested parentheses and both quote styles so expressions like
    ``$("x(%d)" % (k,))`` parse correctly.
    """
    if src[start] != "(":
        raise ExpanderError(f"expected '(' at position {start}")
    depth = 0
    i = start
    n = len(src)
    while i < n:
        c = src[i]
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if src[i] == "\\":
                    i += 2
                    continue
                if src[i] == quote:
                    break
                i += 1
            if i >= n:
                raise ExpanderError(f"unterminated string starting near position {start}")
        elif c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    raise ExpanderError(f"unbalanced parentheses starting at position {start}")


_KEYWORDS = ("for", "endfor", "if", "elif", "else", "endif", "py")


def _parse(src: str) -> list:
    """Parse template source into a node list (with nested blocks)."""
    nodes: list = []
    stack: list[tuple[str, Any]] = []  # ("for", _For) / ("if", _If)
    current = nodes
    i = 0
    n = len(src)
    text_start = i

    def flush(upto: int) -> None:
        if upto > text_start:
            current.append(_Text(src[text_start:upto]))

    while i < n:
        c = src[i]
        if c != "$":
            i += 1
            continue
        # Decide which construct starts here.
        if src.startswith("$$", i):
            flush(i)
            current.append(_Text("$"))
            i += 2
            text_start = i
            continue
        matched = None
        for kw in _KEYWORDS:
            if src.startswith("$" + kw, i):
                after = i + 1 + len(kw)
                if kw in ("endfor", "else", "endif"):
                    matched = (kw, None, after)
                    break
                if after < n and src[after] == "(":
                    end = _find_balanced(src, after)
                    matched = (kw, src[after + 1 : end - 1], end)
                    break
        if matched is None and i + 1 < n and src[i + 1] == "(":
            end = _find_balanced(src, i + 1)
            flush(i)
            current.append(_Subst(src[i + 2 : end - 1], i))
            i = end
            text_start = i
            continue
        if matched is None:
            # A bare '$' with nothing we recognise: treat literally, as
            # pyexpander does for unknown sequences in simple mode.
            i += 1
            continue

        kw, arg, after = matched
        flush(i)
        i = after
        text_start = i
        if kw == "py":
            current.append(_Exec(arg, i))
        elif kw == "for":
            node = _For(header=arg, body=[], pos=i)
            current.append(node)
            stack.append(("for", node, current))
            current = node.body
        elif kw == "endfor":
            if not stack or stack[-1][0] != "for":
                raise ExpanderError(f"$endfor without matching $for near position {i}")
            _, _, current = stack.pop()
        elif kw == "if":
            node = _If(pos=i)
            node.branches.append((arg, []))
            current.append(node)
            stack.append(("if", node, current))
            current = node.branches[-1][1]
        elif kw == "elif":
            if not stack or stack[-1][0] != "if":
                raise ExpanderError(f"$elif without matching $if near position {i}")
            node = stack[-1][1]
            if node.branches[-1][0] is None:
                raise ExpanderError(f"$elif after $else near position {i}")
            node.branches.append((arg, []))
            current = node.branches[-1][1]
        elif kw == "else":
            if not stack or stack[-1][0] != "if":
                raise ExpanderError(f"$else without matching $if near position {i}")
            node = stack[-1][1]
            if node.branches[-1][0] is None:
                raise ExpanderError(f"duplicate $else near position {i}")
            node.branches.append((None, []))
            current = node.branches[-1][1]
        elif kw == "endif":
            if not stack or stack[-1][0] != "if":
                raise ExpanderError(f"$endif without matching $if near position {i}")
            _, _, current = stack.pop()

    if stack:
        kind = stack[-1][0]
        raise ExpanderError(f"unterminated ${kind} block")
    flush(n)
    return nodes


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _render(nodes: list, env: dict, out: list[str]) -> None:
    for node in nodes:
        if isinstance(node, _Text):
            out.append(node.text)
        elif isinstance(node, _Subst):
            try:
                value = eval(node.expr, {"__builtins__": __builtins__}, env)  # noqa: S307
            except Exception as exc:
                raise ExpanderError(
                    f"error evaluating $({node.expr!r}) near position {node.pos}: {exc}"
                ) from exc
            out.append(str(value))
        elif isinstance(node, _Exec):
            try:
                exec(node.stmt, {"__builtins__": __builtins__}, env)  # noqa: S102
            except Exception as exc:
                raise ExpanderError(
                    f"error executing $py({node.stmt!r}) near position {node.pos}: {exc}"
                ) from exc
        elif isinstance(node, _For):
            try:
                target, _, iter_expr = node.header.partition(" in ")
                if not iter_expr:
                    raise ExpanderError(f"malformed $for header {node.header!r}")
                iterable = eval(iter_expr, {"__builtins__": __builtins__}, env)  # noqa: S307
            except ExpanderError:
                raise
            except Exception as exc:
                raise ExpanderError(
                    f"error evaluating $for({node.header!r}): {exc}"
                ) from exc
            targets = [t.strip() for t in target.split(",")]
            for item in iterable:
                if len(targets) == 1:
                    env[targets[0]] = item
                else:
                    values = tuple(item)
                    if len(values) != len(targets):
                        raise ExpanderError(
                            f"$for targets {targets} do not match item {item!r}"
                        )
                    env.update(zip(targets, values))
                _render(node.body, env, out)
        elif isinstance(node, _If):
            for cond, body in node.branches:
                if cond is None:
                    _render(body, env, out)
                    break
                try:
                    truth = eval(cond, {"__builtins__": __builtins__}, env)  # noqa: S307
                except Exception as exc:
                    raise ExpanderError(f"error evaluating $if({cond!r}): {exc}") from exc
                if truth:
                    _render(body, env, out)
                    break
        else:  # pragma: no cover - parser never emits other node types
            raise ExpanderError(f"unknown template node {node!r}")


def _apply_line_continuations(text: str) -> str:
    """Remove backslash-newline pairs (pyexpander's continuation rule)."""
    return text.replace("\\\n", "")


def expand(template: str, env: dict | None = None) -> str:
    """Expand a pyexpander-style template against ``env``.

    ``env`` is mutated by ``$for`` loop variables and ``$py`` statements,
    mirroring pyexpander's single shared namespace.
    """
    nodes = _parse(template)
    out: list[str] = []
    _render(nodes, dict(env or {}), out)
    return _apply_line_continuations("".join(out))
