"""Compute micro-op templates (Figure 9 of the paper).

Each micro-op is a pyexpander template that expands to a fully unrolled
block of statements over "register" variables named ``<reg>_<m>_<n>``.
One CUDA thread's scalar register becomes a NumPy vector over the batch
lanes, so the expanded statements are valid Python given that those names
are bound to arrays.

The sources mirror the paper's listings operation for operation:

* ``spotrf_tile`` takes the square root of each diagonal element, computes
  its reciprocal once (``inv = 1.0f / rA_kk`` — the paper does this in the
  source regardless of ``--use_fast_math``; the compiler flag only changes
  how the *division itself* is compiled), scales the column, and applies the
  rank-1 update to the rest of the tile.
* ``strsm_tile`` solves ``X * L^T = A`` in place against a factored diagonal
  tile, with one division per element exactly as in the paper.
* ``ssyrk_tile`` applies ``A2 -= A1 * A1^T`` to the lower triangle.
* ``sgemm_tile`` applies ``A3 -= A1 * A2^T``.

All templates accept rectangular shapes so the same code paths generate the
corner-case tiles used when ``n % nb != 0`` (Section II.C).

Every expanded statement is also described by an :class:`OpMixCounter`
entry so the GPU performance model can weight square roots and divisions
separately from multiply-adds (the ``--use_fast_math`` effect).
"""

from __future__ import annotations

from repro.codegen.expander import expand
from repro.utils.opmix import OpMixCounter

__all__ = [
    "OpMixCounter",
    "spotrf_tile_source",
    "spotrf_tile_ops",
    "strsm_tile_source",
    "strsm_tile_ops",
    "ssyrk_tile_source",
    "ssyrk_tile_ops",
    "sgemm_tile_source",
    "sgemm_tile_ops",
]

_SPOTRF_TEMPLATE = """\
$for(k in range(0, KB))\
$(reg)_$(k)_$(k) = _sqrt($(reg)_$(k)_$(k))
_inv = _one / $(reg)_$(k)_$(k)
$for(m in range(k + 1, KB))\
$(reg)_$(m)_$(k) = $(reg)_$(m)_$(k) * _inv
$endfor\
$for(n in range(k + 1, KB))\
$for(m in range(n, KB))\
$(reg)_$(m)_$(n) = $(reg)_$(m)_$(n) - $(reg)_$(m)_$(k) * $(reg)_$(n)_$(k)
$endfor\
$endfor\
$endfor\
"""

_STRSM_TEMPLATE = """\
$for(m in range(0, MB))\
$for(k in range(0, KB))\
$(reg2)_$(m)_$(k) = $(reg2)_$(m)_$(k) / $(reg1)_$(k)_$(k)
$for(n in range(k + 1, KB))\
$(reg2)_$(m)_$(n) = $(reg2)_$(m)_$(n) - $(reg2)_$(m)_$(k) * $(reg1)_$(n)_$(k)
$endfor\
$endfor\
$endfor\
"""

_SSYRK_TEMPLATE = """\
$for(m in range(0, MB))\
$for(n in range(0, m + 1))\
$for(k in range(0, KB))\
$(reg2)_$(m)_$(n) = $(reg2)_$(m)_$(n) - $(reg1)_$(m)_$(k) * $(reg1)_$(n)_$(k)
$endfor\
$endfor\
$endfor\
"""

_SGEMM_TEMPLATE = """\
$for(m in range(0, MB))\
$for(n in range(0, NB2))\
$for(k in range(0, KB))\
$(reg3)_$(m)_$(n) = $(reg3)_$(m)_$(n) - $(reg1)_$(m)_$(k) * $(reg2)_$(n)_$(k)
$endfor\
$endfor\
$endfor\
"""


def spotrf_tile_source(reg: str, kb: int) -> str:
    """Unrolled Cholesky factorization of one ``kb``-by-``kb`` tile."""
    _check_dim("kb", kb)
    return expand(_SPOTRF_TEMPLATE, {"reg": reg, "KB": kb})


def spotrf_tile_ops(kb: int) -> OpMixCounter:
    """Operation mix of :func:`spotrf_tile_source`."""
    _check_dim("kb", kb)
    fma = sum((kb - n) for k in range(kb) for n in range(k + 1, kb))
    mul = kb * (kb - 1) // 2  # column scalings by the reciprocal
    return OpMixCounter(fma=fma, mul=mul, div=kb, sqrt=kb)


def strsm_tile_source(reg1: str, reg2: str, mb: int, kb: int) -> str:
    """Unrolled triangular solve of an ``mb``-by-``kb`` tile."""
    _check_dim("mb", mb)
    _check_dim("kb", kb)
    return expand(_STRSM_TEMPLATE, {"reg1": reg1, "reg2": reg2, "MB": mb, "KB": kb})


def strsm_tile_ops(mb: int, kb: int) -> OpMixCounter:
    _check_dim("mb", mb)
    _check_dim("kb", kb)
    return OpMixCounter(fma=mb * kb * (kb - 1) // 2, div=mb * kb)


def ssyrk_tile_source(reg1: str, reg2: str, mb: int, kb: int) -> str:
    """Unrolled symmetric rank-``kb`` update of an ``mb``-by-``mb`` tile."""
    _check_dim("mb", mb)
    _check_dim("kb", kb)
    return expand(_SSYRK_TEMPLATE, {"reg1": reg1, "reg2": reg2, "MB": mb, "KB": kb})


def ssyrk_tile_ops(mb: int, kb: int) -> OpMixCounter:
    _check_dim("mb", mb)
    _check_dim("kb", kb)
    return OpMixCounter(fma=mb * (mb + 1) // 2 * kb)


def sgemm_tile_source(reg1: str, reg2: str, reg3: str, mb: int, nb2: int, kb: int) -> str:
    """Unrolled ``A3 -= A1 * A2^T`` on an ``mb``-by-``nb2`` tile."""
    _check_dim("mb", mb)
    _check_dim("nb2", nb2)
    _check_dim("kb", kb)
    return expand(
        _SGEMM_TEMPLATE,
        {"reg1": reg1, "reg2": reg2, "reg3": reg3, "MB": mb, "NB2": nb2, "KB": kb},
    )


def sgemm_tile_ops(mb: int, nb2: int, kb: int) -> OpMixCounter:
    _check_dim("mb", mb)
    _check_dim("nb2", nb2)
    _check_dim("kb", kb)
    return OpMixCounter(fma=mb * nb2 * kb)


def _check_dim(name: str, value: int) -> None:
    if not isinstance(value, int) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
