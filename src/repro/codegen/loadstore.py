"""Memory micro-op templates (Figure 10 of the paper).

The executor presents the kernel with ``dA``: a buffer indexable by the
element identifier ``e = j*n + i`` (column-major within the matrix), where
``dA[e]`` yields the vector of lane values for that element — this is the
interleaved layout seen from inside one chunk.  The paper's pointer
arithmetic ``dAp = dA + _m*NB*32 + _n*NB*N*32`` becomes the element-id base
``base = _m*NB + _n*NB*N``; the 32-lane factor is absorbed by the
vectorised indexing.

``base`` may be a compile-time integer (fully unrolled kernels, Figure 12)
or a runtime expression string such as ``"_b1"`` (partially unrolled
kernels, Figure 11, where the outer tile loops survive to run time).

Loads copy (a register is private to the thread); stores write back through
the buffer view.
"""

from __future__ import annotations

from repro.codegen.expander import expand

_LOAD_FULL_TEMPLATE = """\
$for(n in range(0, NBC))\
$for(m in range(0, MB))\
$(reg)_$(m)_$(n) = dA[$(idx(m, n))].copy()
$endfor\
$endfor\
"""

_STORE_FULL_TEMPLATE = """\
$for(n in range(0, NBC))\
$for(m in range(0, MB))\
dA[$(idx(m, n))] = $(reg)_$(m)_$(n)
$endfor\
$endfor\
"""

_LOAD_LOWER_TEMPLATE = """\
$for(n in range(0, KB))\
$for(m in range(n, KB))\
$(reg)_$(m)_$(n) = dA[$(idx(m, n))].copy()
$endfor\
$endfor\
"""

_STORE_LOWER_TEMPLATE = """\
$for(n in range(0, KB))\
$for(m in range(n, KB))\
dA[$(idx(m, n))] = $(reg)_$(m)_$(n)
$endfor\
$endfor\
"""


def _index_maker(n: int, base, transposed: bool = False):
    """Build the ``idx(m, n)`` helper injected into the templates.

    With an integer base the offset folds to a constant; with a string base
    (a runtime variable in partially unrolled kernels) the constant part is
    added symbolically.

    ``transposed=True`` swaps the in-tile row/column roles — the upper-
    triangular mode, where logical element ``L(i, j)`` lives at physical
    position ``(j, i)`` so the stored upper triangle holds ``U = L^T``
    (the paper: "Upper triangular matrices can be supported in the same
    manner").  The caller supplies the transposed tile base.
    """
    if isinstance(base, int):
        def idx(m: int, col: int) -> str:
            offset = col + m * n if transposed else m + col * n
            return str(base + offset)
    elif isinstance(base, str):
        def idx(m: int, col: int) -> str:
            offset = col + m * n if transposed else m + col * n
            return f"{base} + {offset}" if offset else base
    else:
        raise TypeError(f"base must be int or str, got {type(base).__name__}")
    return idx


def load_full_source(
    reg: str, mb: int, nbc: int, n: int, base, transposed: bool = False
) -> str:
    """Unrolled load of a full ``mb``-by-``nbc`` tile into registers."""
    _check(mb, nbc, n)
    return expand(
        _LOAD_FULL_TEMPLATE,
        {"reg": reg, "MB": mb, "NBC": nbc, "idx": _index_maker(n, base, transposed)},
    )


def store_full_source(
    reg: str, mb: int, nbc: int, n: int, base, transposed: bool = False
) -> str:
    """Unrolled store of a full ``mb``-by-``nbc`` tile from registers."""
    _check(mb, nbc, n)
    return expand(
        _STORE_FULL_TEMPLATE,
        {"reg": reg, "MB": mb, "NBC": nbc, "idx": _index_maker(n, base, transposed)},
    )


def load_lower_source(
    reg: str, kb: int, n: int, base, transposed: bool = False
) -> str:
    """Unrolled load of a diagonal triangular ``kb`` tile.

    In lower mode this reads the lower triangle; in transposed (upper)
    mode the same logical elements come from the stored upper triangle.
    """
    _check(kb, kb, n)
    return expand(
        _LOAD_LOWER_TEMPLATE,
        {"reg": reg, "KB": kb, "idx": _index_maker(n, base, transposed)},
    )


def store_lower_source(
    reg: str, kb: int, n: int, base, transposed: bool = False
) -> str:
    """Unrolled store of a diagonal triangular ``kb`` tile."""
    _check(kb, kb, n)
    return expand(
        _STORE_LOWER_TEMPLATE,
        {"reg": reg, "KB": kb, "idx": _index_maker(n, base, transposed)},
    )


def full_tile_elements(mb: int, nbc: int) -> int:
    """Elements moved by a full-tile load/store."""
    _check(mb, nbc, 1)
    return mb * nbc


def lower_tile_elements(kb: int) -> int:
    """Elements moved by a lower-tile load/store (diagonal included)."""
    _check(kb, kb, 1)
    return kb * (kb + 1) // 2


def _check(mb: int, nbc: int, n: int) -> None:
    for name, value in (("mb", mb), ("nbc", nbc), ("n", n)):
        if not isinstance(value, int) or value <= 0:
            raise ValueError(f"{name} must be a positive integer, got {value!r}")
