"""Kernel compilation and caching.

The paper compiles one CUDA kernel per point of the compile-time parameter
space; we ``exec`` the generated Python source once per distinct source and
memoise the resulting callable.  Chunk size, fast-math and the cache
preference do not alter the generated statements (chunk size is a run-time
parameter in the paper too), so kernels are shared across those knobs via
:meth:`repro.core.config.KernelConfig.cache_key`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.codegen.kernel import GeneratedKernel, generate_kernel_source
from repro.core.config import KernelConfig

#: cache_key -> (generated kernel, compiled callable)
_CACHE: dict[tuple, tuple[GeneratedKernel, Callable]] = {}


def compile_kernel(kernel: GeneratedKernel) -> Callable:
    """Compile generated kernel source into a callable ``f(dA)``.

    The returned callable binds NumPy internally, so callers only pass the
    element-indexable buffer view.
    """
    namespace: dict = {}
    code = compile(kernel.source, f"<kernel {kernel.config.describe()}>", "exec")
    exec(code, namespace)  # noqa: S102 - executing our own generated source
    raw = namespace["_kernel"]

    def run(dA):
        return raw(dA, np)

    run.generated = kernel  # type: ignore[attr-defined]
    return run


def compiled_kernel(config: KernelConfig) -> Callable:
    """Generate (or fetch from cache) the compiled kernel for ``config``."""
    key = config.cache_key()
    hit = _CACHE.get(key)
    if hit is None:
        kernel = generate_kernel_source(config)
        hit = (kernel, compile_kernel(kernel))
        _CACHE[key] = hit
    return hit[1]


def clear_kernel_cache() -> None:
    """Drop all memoised kernels (used by tests and long sweeps)."""
    _CACHE.clear()
