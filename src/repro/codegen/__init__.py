"""Kernel generation pipeline (Section II.C of the paper).

The paper generates its CUDA kernels with the *pyexpander* preprocessor:
templates containing ``$for(...)`` loops and ``$(...)`` substitutions expand
into fully unrolled straight-line code built from four compute micro-ops
(``spotrf_tile``, ``strsm_tile``, ``ssyrk_tile``, ``sgemm_tile``) and four
memory micro-ops (``load_full``, ``store_full``, ``load_lower``,
``store_lower``).

This package reimplements that pipeline end to end:

* :mod:`repro.codegen.expander` — a from-scratch pyexpander-compatible
  template engine.
* :mod:`repro.codegen.microkernels` — the Figure-9 compute micro-op
  templates, expanded to unrolled Python statement blocks over "register"
  variables (each CUDA thread's scalar register becomes a NumPy vector over
  the batch lanes).
* :mod:`repro.codegen.loadstore` — the Figure-10 memory micro-ops.
* :mod:`repro.codegen.kernel` — whole-kernel assembly, partially unrolled
  (Figure 11) or completely unrolled (Figure 12), for all three looking
  variants, including the corner-case tiles when ``n % nb != 0``.
* :mod:`repro.codegen.compile` — source-to-callable compilation with a cache.
"""

from repro.codegen.expander import expand, ExpanderError
from repro.codegen.microkernels import (
    spotrf_tile_source,
    strsm_tile_source,
    ssyrk_tile_source,
    sgemm_tile_source,
)
from repro.codegen.loadstore import (
    load_full_source,
    store_full_source,
    load_lower_source,
    store_lower_source,
)
from repro.codegen.kernel import generate_kernel_source
from repro.codegen.compile import compile_kernel, compiled_kernel, clear_kernel_cache

__all__ = [
    "expand",
    "ExpanderError",
    "spotrf_tile_source",
    "strsm_tile_source",
    "ssyrk_tile_source",
    "sgemm_tile_source",
    "load_full_source",
    "store_full_source",
    "load_lower_source",
    "store_lower_source",
    "generate_kernel_source",
    "compile_kernel",
    "compiled_kernel",
    "clear_kernel_cache",
]
