"""Generated interleaved batch solve kernels (forward + backward subst.).

The paper factors only ("we focus solely on the factorization step"), but
its prior work [9] and its motivating ALS application need the full solve
``A x = b`` against the computed factors.  This module extends the same
kernel-generation pipeline to the triangular solves: fully unrolled
straight-line code over interleaved buffers, one thread per matrix, with
the identical coalescing story.

The generated function has signature ``_solve_kernel(dA, dB, _np)``:

* ``dA`` — the factored matrix buffer view (element id ``j*n + i``); only
  the lower triangle is referenced,
* ``dB`` — the right-hand-side buffer view (element id ``r*n + i`` for
  right-hand side ``r``), overwritten with the solution.

Elements of ``L`` are consumed directly from ``dA`` (each use is one
load); the solution vector lives in registers between the two sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.expander import expand
from repro.utils.opmix import OpMixCounter

_SOLVE_TEMPLATE = """\
$for(r in range(0, NRHS))\
$for(i in range(0, N))\
rB_$(i)_$(r) = dB[$(r * N + i)].copy()
$endfor\
$for(i in range(0, N))\
$for(j in range(0, i))\
rB_$(i)_$(r) = rB_$(i)_$(r) - dA[$(j * N + i)] * rB_$(j)_$(r)
$endfor\
rB_$(i)_$(r) = rB_$(i)_$(r) / dA[$(i * N + i)]
$endfor\
$for(i in reversed(range(0, N)))\
$for(j in range(i + 1, N))\
rB_$(i)_$(r) = rB_$(i)_$(r) - dA[$(i * N + j)] * rB_$(j)_$(r)
$endfor\
rB_$(i)_$(r) = rB_$(i)_$(r) / dA[$(i * N + i)]
$endfor\
$for(i in range(0, N))\
dB[$(r * N + i)] = rB_$(i)_$(r)
$endfor\
$endfor\
"""

_PROLOGUE = "def _solve_kernel(dA, dB, _np):\n"
_INDENT = "    "


@dataclass(frozen=True)
class GeneratedSolveKernel:
    """Source plus static metadata of one generated solve kernel."""

    n: int
    nrhs: int
    source: str
    static_statements: int
    ops: OpMixCounter
    #: elements loaded / stored per thread (L twice, b once; x once out)
    load_elements: int
    store_elements: int


def solve_kernel_ops(n: int, nrhs: int) -> OpMixCounter:
    """Exact scalar-operation mix of one thread's solve."""
    _check(n, nrhs)
    # forward: i gets i FMAs + 1 div; backward: i gets (n-1-i) FMAs + 1 div
    fma_per_rhs = n * (n - 1)  # both sweeps together
    return OpMixCounter(fma=fma_per_rhs * nrhs, div=2 * n * nrhs)


def generate_solve_source(n: int, nrhs: int = 1) -> GeneratedSolveKernel:
    """Generate the fully unrolled solve kernel for one problem shape.

    Note that the backward sweep reads ``L^T``: element ``(j, i)`` of the
    lower factor at element id ``i*n + j`` — still one coalesced warp read
    per element under the interleaved layouts.
    """
    _check(n, nrhs)
    body = expand(_SOLVE_TEMPLATE, {"N": n, "NRHS": nrhs})
    lines = [line for line in body.splitlines() if line]
    source = _PROLOGUE + "\n".join(_INDENT + line for line in lines) + "\n"
    ops = solve_kernel_ops(n, nrhs)
    # L read once per FMA plus the diagonal twice; b read once.
    load_elements = (n * (n - 1) + 2 * n) * nrhs + n * nrhs
    store_elements = n * nrhs
    return GeneratedSolveKernel(
        n=n,
        nrhs=nrhs,
        source=source,
        static_statements=len(lines),
        ops=ops,
        load_elements=load_elements,
        store_elements=store_elements,
    )


def _check(n: int, nrhs: int) -> None:
    if not isinstance(n, int) or n <= 0:
        raise ValueError(f"n must be a positive integer, got {n!r}")
    if not isinstance(nrhs, int) or nrhs <= 0:
        raise ValueError(f"nrhs must be a positive integer, got {nrhs!r}")
