"""Whole-kernel assembly (Figures 11 and 12 of the paper).

:class:`KernelBuilder` walks one of the three looking-variant schedules and
produces, from a single emission logic:

* the **partially unrolled** kernel source (Figure 11): outer tile loops
  survive to run time, tile micro-ops are fully unrolled inside them, and
  corner-case tiles (``n % nb != 0``) get their own specialised blocks —
  the paper's "another set of kernels for handling the corner cases";
* the **completely unrolled** kernel source (Figure 12): a single block of
  straight-line code;
* the **dynamic trace** — the flat :class:`~repro.core.schedule.TileOp`
  sequence consumed by the GPU performance model.  The trace is identical
  for both unrolling modes (unrolling changes the static code, not the
  operation sequence).

The generated function has signature ``_kernel(dA, _np)`` where ``dA`` is
indexable by the element id ``e = j*n + i`` and ``dA[e]`` yields the vector
of lane values for that element — one chunk (or the whole padded batch) of
an interleaved layout.  Each CUDA thread's scalar register becomes a NumPy
vector over those lanes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen import loadstore, microkernels
from repro.core.config import KernelConfig, Looking, Unrolling, Uplo
from repro.core.schedule import TileOp

_INDENT = "    "


def _prologue(precision: str) -> list[str]:
    dtype = "float32" if precision == "single" else "float64"
    return [
        "def _kernel(dA, _np):",
        f"{_INDENT}_sqrt = _np.sqrt",
        f"{_INDENT}_one = _np.{dtype}(1.0)",
    ]


@dataclass(frozen=True)
class GeneratedKernel:
    """Source plus static metadata of one generated kernel."""

    config: KernelConfig
    source: str
    #: number of emitted statements (static code size, the icache driver)
    static_statements: int


class KernelBuilder:
    """Emits kernel source and/or dynamic traces for one configuration."""

    def __init__(self, config: KernelConfig) -> None:
        self.config = config
        self.n = config.n
        self.nb = config.effective_nb
        self.Tf = self.n // self.nb
        self.R = self.n % self.nb
        self.T = self.Tf + (1 if self.R else 0)
        #: upper mode: same schedules, transposed element addressing
        self.transposed = config.uplo is Uplo.UPPER
        # pass state
        self.symbolic = False
        self.emit_code = False
        self.record = False
        self.lines: list[str] = []
        self.indent = 1
        self.ops: list[TileOp] = []

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def build_source(self) -> GeneratedKernel:
        """Generate the kernel source for this configuration."""
        self.lines = []
        self.indent = 1
        self.emit_code = True
        self.record = False
        self.symbolic = self.config.unroll is Unrolling.PARTIAL
        self._run_schedule()
        body = "\n".join(_prologue(self.config.precision.value) + self.lines) + "\n"
        return GeneratedKernel(
            config=self.config,
            source=body,
            static_statements=len(self.lines),
        )

    def build_trace(self) -> list[TileOp]:
        """Replay the schedule numerically and return the flat tile ops."""
        self.ops = []
        self.emit_code = False
        self.record = True
        self.symbolic = False
        self._run_schedule()
        return self.ops

    # ------------------------------------------------------------------
    # Emission primitives
    # ------------------------------------------------------------------

    def _emit(self, line: str) -> None:
        if self.emit_code:
            self.lines.append(_INDENT * self.indent + line)

    def _emit_block(self, source: str) -> None:
        if self.emit_code:
            prefix = _INDENT * self.indent
            for line in source.splitlines():
                if line:
                    self.lines.append(prefix + line)

    def _loop(self, var: str, lo, hi, body) -> None:
        """Tile loop: runtime ``for`` when symbolic, numeric replay otherwise.

        ``lo``/``hi`` are ints or expression strings (in terms of enclosing
        symbolic loop variables); ``body`` receives the loop variable — its
        name in symbolic mode, its value otherwise.
        """
        if self.symbolic:
            mark = len(self.lines)
            self._emit(f"for {var} in range({lo}, {hi}):")
            self.indent += 1
            body(var)
            if len(self.lines) == mark + 1:
                self._emit("pass")
            self.indent -= 1
        else:
            for value in range(int(lo), int(hi)):
                body(value)

    def _forall_below(self, var: str, t, body) -> None:
        """Iterate tile rows strictly below ``t`` with corner specialisation.

        ``body(mm, mb)`` receives the row-tile index and its (static) row
        dimension.  In symbolic mode the full tiles become one runtime loop
        and the corner tile (if any) a trailing specialised block.
        """
        if self.symbolic and not isinstance(t, int):
            self._loop(var, f"{t} + 1", self.Tf, lambda mm: body(mm, self.nb))
            if self.R:
                body(self.Tf, self.R)
        elif self.symbolic:
            # Numeric anchor inside a symbolic pass (a corner step): expand
            # the remaining full tiles straight-line.
            for mm in range(t + 1, self.Tf):
                body(mm, self.nb)
            if self.R and t < self.Tf:
                body(self.Tf, self.R)
        else:
            for mm in range(t + 1, self.T):
                body(mm, self._dim(mm))

    def _dim(self, t: int) -> int:
        return self.nb if t < self.Tf else self.R

    def _base(self, mt, nt):
        """Element-id base of tile ``(mt, nt)``: ``mt*nb + nt*nb*n``.

        In upper (transposed) mode the physical tile sits at the mirrored
        coordinates ``(nt, mt)``.
        """
        if self.transposed:
            mt, nt = nt, mt
        row_scale = self.nb
        col_scale = self.nb * self.n
        if isinstance(mt, int) and isinstance(nt, int):
            return mt * row_scale + nt * col_scale
        terms = []
        if isinstance(mt, int):
            if mt * row_scale:
                terms.append(str(mt * row_scale))
        else:
            terms.append(f"{mt}*{row_scale}")
        if isinstance(nt, int):
            if nt * col_scale:
                terms.append(str(nt * col_scale))
        else:
            terms.append(f"{nt}*{col_scale}")
        return " + ".join(terms) if terms else "0"

    # ------------------------------------------------------------------
    # Tile micro-ops (code + trace)
    # ------------------------------------------------------------------

    def load_full(self, reg: str, mt, nt, mb: int, nbc: int) -> None:
        if self.emit_code:
            self._emit_block(
                loadstore.load_full_source(
                    reg, mb, nbc, self.n, self._base(mt, nt), self.transposed
                )
            )
        if self.record:
            self.ops.append(
                TileOp("load_full", (mt, nt), shape=(mb, nbc), elems=mb * nbc)
            )

    def store_full(self, reg: str, mt, nt, mb: int, nbc: int) -> None:
        if self.emit_code:
            self._emit_block(
                loadstore.store_full_source(
                    reg, mb, nbc, self.n, self._base(mt, nt), self.transposed
                )
            )
        if self.record:
            self.ops.append(
                TileOp("store_full", (mt, nt), shape=(mb, nbc), elems=mb * nbc)
            )

    def load_lower(self, reg: str, t, kb: int) -> None:
        if self.emit_code:
            self._emit_block(
                loadstore.load_lower_source(reg, kb, self.n, self._base(t, t), self.transposed)
            )
        if self.record:
            self.ops.append(
                TileOp(
                    "load_lower",
                    (t, t),
                    shape=(kb,),
                    elems=loadstore.lower_tile_elements(kb),
                )
            )

    def store_lower(self, reg: str, t, kb: int) -> None:
        if self.emit_code:
            self._emit_block(
                loadstore.store_lower_source(reg, kb, self.n, self._base(t, t), self.transposed)
            )
        if self.record:
            self.ops.append(
                TileOp(
                    "store_lower",
                    (t, t),
                    shape=(kb,),
                    elems=loadstore.lower_tile_elements(kb),
                )
            )

    def potrf(self, reg: str, t, kb: int) -> None:
        if self.emit_code:
            self._emit_block(microkernels.spotrf_tile_source(reg, kb))
        if self.record:
            self.ops.append(
                TileOp("potrf", (t, t), shape=(kb,), ops=microkernels.spotrf_tile_ops(kb))
            )

    def trsm(self, reg1: str, reg2: str, diag, targ, mb: int, kb: int) -> None:
        if self.emit_code:
            self._emit_block(microkernels.strsm_tile_source(reg1, reg2, mb, kb))
        if self.record:
            self.ops.append(
                TileOp(
                    "trsm",
                    targ,
                    operands=(diag,),
                    shape=(mb, kb),
                    ops=microkernels.strsm_tile_ops(mb, kb),
                )
            )

    def syrk(self, reg1: str, reg2: str, panel, diag, mb: int, kb: int) -> None:
        if self.emit_code:
            self._emit_block(microkernels.ssyrk_tile_source(reg1, reg2, mb, kb))
        if self.record:
            self.ops.append(
                TileOp(
                    "syrk",
                    diag,
                    operands=(panel,),
                    shape=(mb, kb),
                    ops=microkernels.ssyrk_tile_ops(mb, kb),
                )
            )

    def gemm(
        self, reg1: str, reg2: str, reg3: str, op_a, op_b, targ, mb: int, nb2: int, kb: int
    ) -> None:
        if self.emit_code:
            self._emit_block(
                microkernels.sgemm_tile_source(reg1, reg2, reg3, mb, nb2, kb)
            )
        if self.record:
            self.ops.append(
                TileOp(
                    "gemm",
                    targ,
                    operands=(op_a, op_b),
                    shape=(mb, nb2, kb),
                    ops=microkernels.sgemm_tile_ops(mb, nb2, kb),
                )
            )

    # ------------------------------------------------------------------
    # Looking-variant schedules
    # ------------------------------------------------------------------

    def _run_schedule(self) -> None:
        looking = self.config.looking
        if looking is Looking.TOP:
            step = self._step_top
        elif looking is Looking.LEFT:
            step = self._step_left
        elif looking is Looking.RIGHT:
            step = self._step_right
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown looking variant {looking!r}")

        if self.symbolic:
            self._loop("kk", 0, self.Tf, lambda kk: step(kk, self.nb))
            if self.R:
                step(self.Tf, self.R)
        else:
            for kk in range(self.T):
                step(kk, self._dim(kk))

    def _step_top(self, kk, kb: int) -> None:
        """One step of the top-looking factorization (Figure 11).

        First bring the row stripe left of the diagonal up to date and
        solve it; then update and factor the diagonal tile.  Only the
        stripe and the diagonal are written — the laziest variant.
        """
        nb = self.nb

        def stripe(nn):
            self.load_full("rA3", kk, nn, kb, nb)

            def inner(mm):
                self.load_full("rA1", kk, mm, kb, nb)
                self.load_full("rA2", nn, mm, nb, nb)
                self.gemm("rA1", "rA2", "rA3", (kk, mm), (nn, mm), (kk, nn), kb, nb, nb)

            self._loop("mm", 0, nn, inner)
            self.load_lower("rA1", nn, nb)
            self.trsm("rA1", "rA3", (nn, nn), (kk, nn), kb, nb)
            self.store_full("rA3", kk, nn, kb, nb)

        self._loop("nn", 0, kk, stripe)

        self.load_lower("rA1", kk, kb)

        def diag_update(nn):
            self.load_full("rA2", kk, nn, kb, nb)
            self.syrk("rA2", "rA1", (kk, nn), (kk, kk), kb, nb)

        self._loop("nn", 0, kk, diag_update)
        self.potrf("rA1", kk, kb)
        self.store_lower("rA1", kk, kb)

    def _step_left(self, kk, kb: int) -> None:
        """One step of the left-looking factorization (Figure 4).

        LAPACK-style two phases: (1) apply all pending updates to the panel
        column and store it back; (2) factor the panel.  The panel is
        therefore written twice per step, which is what places left-looking
        between right- and top-looking in write volume (Section III).
        """
        nb = self.nb

        # Phase 1: pending updates to the diagonal tile...
        self.load_lower("rA1", kk, kb)

        def diag_update(j):
            self.load_full("rA2", kk, j, kb, nb)
            self.syrk("rA2", "rA1", (kk, j), (kk, kk), kb, nb)

        self._loop("j", 0, kk, diag_update)
        self.store_lower("rA1", kk, kb)

        # ... and to the sub-diagonal panel tiles.
        def panel_update(mm, mb):
            self.load_full("rA3", mm, kk, mb, kb)

            def inner(j):
                self.load_full("rA1", mm, j, mb, nb)
                self.load_full("rA2", kk, j, kb, nb)
                self.gemm("rA1", "rA2", "rA3", (mm, j), (kk, j), (mm, kk), mb, kb, nb)

            self._loop("j", 0, kk, inner)
            self.store_full("rA3", mm, kk, mb, kb)

        self._forall_below("mm", kk, panel_update)

        # Phase 2: factor the panel.
        self.load_lower("rA1", kk, kb)
        self.potrf("rA1", kk, kb)
        self.store_lower("rA1", kk, kb)

        def panel_solve(mm, mb):
            self.load_full("rA2", mm, kk, mb, kb)
            self.trsm("rA1", "rA2", (kk, kk), (mm, kk), mb, kb)
            self.store_full("rA2", mm, kk, mb, kb)

        self._forall_below("mm", kk, panel_solve)

    def _step_right(self, kk, kb: int) -> None:
        """One step of the right-looking factorization (Figure 3).

        Factor the diagonal, solve the panel below it, then immediately
        read-modify-write the whole trailing submatrix — the aggressive
        variant with the largest write volume.
        """

        self.load_lower("rA1", kk, kb)
        self.potrf("rA1", kk, kb)
        self.store_lower("rA1", kk, kb)

        def panel_solve(mm, mb):
            self.load_full("rA2", mm, kk, mb, kb)
            self.trsm("rA1", "rA2", (kk, kk), (mm, kk), mb, kb)
            self.store_full("rA2", mm, kk, mb, kb)

        self._forall_below("mm", kk, panel_solve)

        def trailing_column(nn, nbd):
            self.load_full("rA1", nn, kk, nbd, kb)
            self.load_lower("rA2", nn, nbd)
            self.syrk("rA1", "rA2", (nn, kk), (nn, nn), nbd, kb)
            self.store_lower("rA2", nn, nbd)

            def trailing_tile(mm, mb):
                self.load_full("rA2", mm, kk, mb, kb)
                self.load_full("rA3", mm, nn, mb, nbd)
                self.gemm("rA2", "rA1", "rA3", (mm, kk), (nn, kk), (mm, nn), mb, nbd, kb)
                self.store_full("rA3", mm, nn, mb, nbd)

            self._forall_below("mm2", nn, trailing_tile)

        self._forall_below("nn", kk, trailing_column)


def generate_kernel_source(config: KernelConfig) -> GeneratedKernel:
    """Generate the kernel source for one configuration."""
    return KernelBuilder(config).build_source()
