"""repro — reproduction of *Autotuning Batch Cholesky Factorization in CUDA
with Interleaved Layout of Matrices* (Gates, Kurzak, Luszczek, Pei,
Dongarra; IPDPS workshops 2017).

The package implements the paper's batch Cholesky factorization for very
small single-precision matrices with interleaved data layouts, the
pyexpander-style kernel generator it is built on, an exhaustive autotuner
over the five kernel parameters, the random-forest analysis of the tuning
dataset, and — in place of the P100 the paper measured — a trace-driven
analytic GPU performance model that reproduces the paper's findings from
the same mechanisms (coalescing, DRAM row locality, register residency,
occupancy, instruction-cache pressure).

Quick start::

    import numpy as np
    from repro import batch_cholesky, random_spd_batch

    a = random_spd_batch(1024, 16)          # (batch, n, n) SPD matrices
    l = batch_cholesky(a, nb=4, looking="top", chunked=True, chunk_size=32)
    lt = np.tril(l[0])
    assert np.allclose(lt @ lt.T, a[0], atol=1e-3)
"""

from repro.core.config import KernelConfig, Looking, Precision, Unrolling, Uplo
from repro.core.factorize import batch_cholesky, factorize_buffer
from repro.core.solve import batch_solve, batch_spd_solve
from repro.core.solve_kernels import batch_solve_kernel
from repro.layouts import (
    BatchSpec,
    CanonicalLayout,
    ChunkedInterleavedLayout,
    InterleavedLayout,
    get_layout,
)
from repro.gpusim import P100, GPUArchitecture, estimate_performance
from repro.baselines import estimate_magma_performance
from repro.autotune import (
    ParameterSpace,
    SweepDataset,
    TunedDispatcher,
    default_space,
    quick_space,
    run_sweep,
)
from repro.batchblas import batched_gemm, batched_syrk, batched_trsm, tile_cholesky
from repro.ml import RandomForestRegressor
from repro.serve import (
    ServeClient,
    ServeMetrics,
    ServePolicy,
    ShardedBroker,
    SolveBroker,
    make_broker,
)
from repro.utils import random_spd_batch

__version__ = "1.0.0"

__all__ = [
    "KernelConfig",
    "Looking",
    "Unrolling",
    "Uplo",
    "Precision",
    "batch_cholesky",
    "factorize_buffer",
    "batch_solve",
    "batch_spd_solve",
    "batch_solve_kernel",
    "batched_gemm",
    "batched_syrk",
    "batched_trsm",
    "tile_cholesky",
    "TunedDispatcher",
    "BatchSpec",
    "CanonicalLayout",
    "ChunkedInterleavedLayout",
    "InterleavedLayout",
    "get_layout",
    "P100",
    "GPUArchitecture",
    "estimate_performance",
    "estimate_magma_performance",
    "ParameterSpace",
    "SweepDataset",
    "default_space",
    "quick_space",
    "run_sweep",
    "RandomForestRegressor",
    "ServeClient",
    "ServeMetrics",
    "ServePolicy",
    "ShardedBroker",
    "SolveBroker",
    "make_broker",
    "random_spd_batch",
    "__version__",
]
