"""Synchronous facade and demo driver for the serving layer.

:class:`ServeClient` runs a :class:`~repro.serve.broker.SolveBroker` on a
private event-loop thread so plain synchronous code — tests, examples,
notebooks — can use the adaptive batcher without touching asyncio.  Calls
made concurrently from many threads coalesce into the same buckets, which
is exactly the multi-client traffic shape the broker exists for.

The module also carries the synthetic-traffic machinery the CLI demo and
``examples/serving_traffic.py`` share: build an arrival trace
(:func:`synthetic_trace`), replay it through a broker at real-time speed
(:func:`replay_trace`), and render the resulting metrics
(:func:`run_demo`).  Replay is trace-shape agnostic: it takes synthetic
:class:`TraceEvent` lists, recorded
:class:`~repro.serve.trace.RecordedEvent` lists, or a whole loaded
:class:`~repro.serve.trace.RecordedTrace`, and can itself record the
arrivals it drives (``run_demo(record_trace=...)``, ``serve-demo
--record-trace``) so any demo run becomes a replayable workload.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import threading
from dataclasses import dataclass, replace

import numpy as np

from repro.autotune.dispatch import TunedDispatcher
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    SloMonitor,
    SloPolicy,
    slo_from_env,
)
from repro.obs.tracer import get_tracer
from repro.serve.admission import jain_index, make_admission
from repro.serve.control.controller import (
    DEFAULT_INTERVAL_S,
    PolicyController,
    controller_from_env,
)
from repro.serve.control.journal import DecisionJournal, verify_journal
from repro.serve.executor import BatchExecutor
from repro.serve.graph import GraphMetrics, GraphScheduler, SolveGraph
from repro.serve.metrics import ServeMetrics
from repro.serve.policy import ServePolicy, ServiceClosed
from repro.serve.shard import ShardedBroker, make_broker
from repro.serve.trace import (
    TraceRecorder,
    event_inputs,
    graph_groups,
    normalize_events,
)


class ServeClient:
    """Blocking ``factor``/``solve`` calls against a broker on its own loop.

    The broker shape follows the policy (:func:`~repro.serve.shard.make_broker`):
    one :class:`~repro.serve.broker.SolveBroker` by default, a
    :class:`~repro.serve.shard.ShardedBroker` fabric when the policy (or
    ``$REPRO_SERVE_SHARDS``) asks for more than one shard.
    """

    def __init__(
        self,
        policy: ServePolicy | None = None,
        dispatcher: TunedDispatcher | None = None,
        executor: BatchExecutor | None = None,
        recorder: TraceRecorder | None = None,
        tiers=None,
    ) -> None:
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._serve_forever, name="repro-serve", daemon=True
        )
        started = threading.Event()
        self._started = started
        self._thread.start()
        started.wait()
        self.broker = make_broker(
            policy=policy, dispatcher=dispatcher, executor=executor,
            recorder=recorder, tiers=tiers,
        )
        self._call(self.broker.start()).result()

    def _serve_forever(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        self._loop.run_forever()

    def _call(self, coro) -> concurrent.futures.Future:
        if self._closed and self._loop.is_closed():
            coro.close()
            raise ServiceClosed("client is closed")
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    # ------------------------------------------------------------------
    # Blocking API
    # ------------------------------------------------------------------

    def factor(self, a: np.ndarray, **kwargs) -> np.ndarray:
        """Factor one SPD matrix; blocks until its batch flushes."""
        return self._call(self.broker.factor(a, **kwargs)).result()

    def solve(self, a: np.ndarray, b: np.ndarray, **kwargs) -> np.ndarray:
        """Solve ``A x = b``; blocks until its batch flushes."""
        return self._call(self.broker.solve(a, b, **kwargs)).result()

    def submit(
        self,
        kind: str,
        a: np.ndarray,
        b: np.ndarray | None = None,
        tier: str | None = None,
        tenant: str | None = None,
    ) -> concurrent.futures.Future:
        """Fire-and-collect: returns a concurrent future for fan-out clients."""
        return self._call(self.broker.submit(kind, a, b, tier=tier, tenant=tenant))

    @property
    def metrics(self) -> ServeMetrics:
        return self.broker.metrics

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._call(self.broker.close()).result()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Synthetic traffic
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TraceEvent:
    """One arrival in a synthetic trace."""

    at: float  # seconds since trace start
    kind: str  # "factor" | "solve"
    n: int
    seed: int
    nonspd: bool = False
    #: SLA tagging (:mod:`repro.serve.admission`); ``None`` leaves the
    #: admission layer's defaults in charge.
    tier: str | None = None
    tenant: str | None = None


def synthetic_trace(
    requests: int = 400,
    ns: tuple[int, ...] = (8, 16, 32),
    rate_hz: float = 20000.0,
    solve_fraction: float = 0.4,
    nonspd_fraction: float = 0.0,
    seed: int = 0,
    tiers: bool = False,
) -> list[TraceEvent]:
    """A Poisson arrival trace of mixed-size factor/solve requests.

    With ``tiers`` every event is SLA-tagged in the canonical demo mix —
    a gold trickle from one ``vip`` tenant, a silver midsection spread
    over three teams, and a best-effort majority concentrated on one
    ``hot`` tenant — drawn *after* the base trace's random draws, so the
    untiered trace for a given seed is unchanged.
    """
    if requests <= 0:
        raise ValueError(f"requests must be positive, got {requests}")
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive, got {rate_hz}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_hz, size=requests)
    at = np.cumsum(gaps) - gaps[0]
    kinds = rng.random(requests) < solve_fraction
    sizes = rng.choice(ns, size=requests)
    nonspd = rng.random(requests) < nonspd_fraction
    tier_of = [None] * requests
    tenant_of = [None] * requests
    if tiers:
        draws = rng.random(requests)
        spread = rng.integers(0, 3, size=requests)
        hot = rng.random(requests) < 0.7
        for i in range(requests):
            if draws[i] < 0.10:
                tier_of[i], tenant_of[i] = "gold", "vip"
            elif draws[i] < 0.40:
                tier_of[i], tenant_of[i] = "silver", f"team{int(spread[i])}"
            else:
                tier_of[i] = "best_effort"
                tenant_of[i] = "hot" if hot[i] else f"spare{int(spread[i])}"
    return [
        TraceEvent(
            at=float(at[i]),
            kind="solve" if kinds[i] else "factor",
            n=int(sizes[i]),
            seed=seed * 100003 + i,
            nonspd=bool(nonspd[i]),
            tier=tier_of[i],
            tenant=tenant_of[i],
        )
        for i in range(requests)
    ]


@dataclass
class ReplaySummary:
    """Outcome of one trace replay.

    ``outcomes`` aligns with the trace's event order: each entry is the
    request's result array or the exception its future resolved to —
    the raw material of the determinism checks.
    """

    requests: int
    completed: int
    failed: int
    shed: int
    elapsed_s: float
    metrics: ServeMetrics
    backend: str = "inline"
    outcomes: list = None  # type: ignore[assignment]
    #: Fabric shape of the replay: shard count (1 for a plain broker),
    #: placement policy, and each shard's own ServeMetrics (``None``
    #: outside a sharded run).
    shards: int = 1
    placement: str | None = None
    per_shard: dict | None = None
    #: Online-control shape of the replay: strategy name (``None`` for a
    #: static run) and the controller's full decision journal.
    controller: str | None = None
    journal: DecisionJournal | None = None
    #: Dependency-aware shape of the replay: the scheduler's
    #: :class:`~repro.serve.graph.GraphMetrics` when the trace's graph
    #: annotations were honoured (``None`` for flat replay), and the
    #: per-graph :class:`~repro.serve.graph.GraphResult` list.
    graph_metrics: GraphMetrics | None = None
    graph_results: list | None = None
    #: SLO shape of the replay: the monitor's lifetime summary
    #: (:meth:`~repro.obs.slo.SloMonitor.status_dict`) when one was
    #: attached, and the :class:`~repro.obs.slo.FlightRecorder` that
    #: rode along (``None`` otherwise).
    slo: dict | None = None
    flight: object | None = None
    #: Admission shape of the replay: the tier policy in force
    #: (:meth:`~repro.serve.admission.AdmissionController.to_dict`) and
    #: the fabric's hedge accounting (``None`` for untiered / unsharded
    #: runs).  Per-tier/tenant outcomes live on ``metrics.tier_summary()``.
    admission: dict | None = None
    hedges: dict | None = None
    #: Data-plane shape of the replay: the merged arena summary
    #: (:meth:`~repro.serve.metrics.ServeMetrics.arena_summary` — slot
    #: conservation, staged vs fallback-copied bytes, pool high-water
    #: mark) when any flush moved bytes, ``None`` otherwise.  Present on
    #: *every* backend: pickle-path runs carry their copied bytes here,
    #: which is the denominator the replay report's arena gate divides by.
    arena: dict | None = None

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0


def _make_controller(broker, controller, interval_s: float | None, slo_monitor=None):
    """Resolve the replay's controller: explicit arg beats the env knob."""
    if controller is None:
        return controller_from_env(broker, slo_monitor=slo_monitor)
    if isinstance(controller, str):
        name = controller.strip().lower()
        if not name or name in ("0", "off", "none", "false"):
            return None
        controller = name
    return PolicyController(
        broker,
        strategy=controller,
        interval_s=interval_s if interval_s is not None else DEFAULT_INTERVAL_S,
        slo_monitor=slo_monitor,
    )


def _make_slo(slo, metrics_fn, flight):
    """Resolve the replay's SLO monitor: explicit arg beats the env knob.

    ``slo`` may be ``None`` (consult ``$REPRO_SERVE_SLO``), a spec string
    (``"coalesce_p99_ms<5"``; ``"1"``/``"on"`` means the default
    objectives, ``"0"``/``"off"`` disables), an
    :class:`~repro.obs.slo.SloPolicy`, or a ready-made monitor.
    """
    if slo is None:
        return slo_from_env(metrics_fn, flight=flight)
    if isinstance(slo, SloMonitor):
        return slo
    if isinstance(slo, str):
        spec = slo.strip()
        if not spec or spec.lower() in ("0", "off", "none", "false"):
            return None
        if spec.lower() in ("1", "on", "true"):
            spec = DEFAULT_OBJECTIVES
        slo = SloPolicy.parse(spec)
    return SloMonitor(slo, metrics_fn, flight=flight)


def replay_trace(
    trace,
    policy: ServePolicy | None = None,
    dispatcher: TunedDispatcher | None = None,
    executor: BatchExecutor | None = None,
    warmup: bool = True,
    recorder: TraceRecorder | None = None,
    controller=None,
    controller_interval_s: float | None = None,
    graph=False,
    slo=None,
    flight=None,
    kill_shard: int | None = None,
    kill_at_s: float | None = None,
    tiers=None,
) -> ReplaySummary:
    """Replay an arrival trace through a fresh broker at real-time speed.

    ``trace`` may be a synthetic :class:`TraceEvent` list, a recorded
    :class:`~repro.serve.trace.RecordedEvent` list, or a loaded
    :class:`~repro.serve.trace.RecordedTrace`.  With ``warmup`` (the
    default) every matrix size in the trace has its kernel compiled
    before the clock starts, so the latency histograms measure the
    batching policy rather than cold-start codegen.  A ``recorder`` is
    hooked into the broker and sees every replayed arrival as it lands.

    ``controller`` puts the run under online control
    (:mod:`repro.serve.control`): a strategy name (``"aimd"``/
    ``"hill"``), a strategy *instance* (for custom decision rules), or
    ``None`` to consult ``$REPRO_SERVE_CONTROLLER`` like the other serve
    front ends.  The resulting decision journal rides back on
    :attr:`ReplaySummary.journal`.

    ``graph`` honours the trace's v2 graph annotations
    (:mod:`repro.serve.graph`): events sharing a ``graph`` id are
    submitted as one DAG through a :class:`GraphScheduler` — each graph
    enters at its first event's arrival time, then its dependency waves
    pace themselves — while unannotated events replay as before.
    ``True`` (or ``"wave"``) releases ready waves concurrently;
    ``"sequential"`` awaits each node one at a time, the comparison
    baseline ``benchmarks/bench_graph.py`` measures against.

    ``slo`` puts the run under burn-rate monitoring
    (:mod:`repro.obs.slo`): an objective spec string, an
    :class:`~repro.obs.slo.SloPolicy`, or ``None`` to consult
    ``$REPRO_SERVE_SLO``.  The monitor polls beside the broker, feeds
    its fast burn rates into the controller (when one runs), and its
    lifetime summary rides back on :attr:`ReplaySummary.slo`.  A
    ``flight`` recorder receives the monitor's evaluations and breach
    notes; register it as a tracer sink too (the CLI does) and it also
    captures spans for postmortem dumps.

    ``kill_shard`` injects a fault: the named shard of a sharded broker
    is killed ``kill_at_s`` seconds after the replay clock starts — the
    breach-forcing lever the flight-recorder smoke test uses.

    ``tiers`` puts the run under SLA admission control
    (:mod:`repro.serve.admission`): a :class:`TierPolicy` spec string, a
    policy/controller object, or ``None`` to consult
    ``$REPRO_SERVE_TIERS``.  Each event's ``tier``/``tenant`` tags (v3
    traces, tiered synthetic traces) ride its submission; untagged
    events get the policy's default tier.
    """
    modes = {False: None, True: "wave", "wave": "wave", "sequential": "sequential"}
    if graph not in modes:
        raise ValueError(
            f"graph must be False, True, 'wave', or 'sequential', got {graph!r}"
        )
    mode = modes[graph]
    events = normalize_events(trace)

    # Payloads are generated up front: a real client holds its matrix
    # before it calls, and generating 400 SPD matrices inside the timed
    # replay would throttle the arrival process it is trying to model.
    inputs = [event_inputs(event) for event in events]

    async def _replay() -> ReplaySummary:
        async with make_broker(
            policy=policy,
            dispatcher=dispatcher,
            executor=executor,
            recorder=recorder,
            tiers=tiers,
        ) as broker:
            if warmup:
                broker.warmup(e.n for e in events)
            monitor = _make_slo(slo, lambda: broker.metrics, flight)
            if monitor is not None:
                await monitor.start()
            ctl = _make_controller(
                broker, controller, controller_interval_s, slo_monitor=monitor
            )
            if ctl is not None:
                await ctl.start()
            loop = asyncio.get_running_loop()
            scheduler = GraphScheduler(broker) if mode is not None else None
            start = loop.time()
            kill_task = None
            if kill_shard is not None:
                if not isinstance(broker, ShardedBroker):
                    raise ValueError(
                        "kill_shard needs a sharded broker (policy.shards > 1)"
                    )

                async def _kill():
                    await asyncio.sleep(max(0.0, kill_at_s or 0.0))
                    broker.kill_shard(kill_shard)

                kill_task = loop.create_task(_kill())

            async def _one(event, a, b):
                await asyncio.sleep(max(0.0, event.at - (loop.time() - start)))
                return await broker.submit(
                    event.op,
                    a,
                    b,
                    tier=getattr(event, "tier", None),
                    tenant=getattr(event, "tenant", None),
                )

            graph_results = None
            if scheduler is None:
                results = await asyncio.gather(
                    *(_one(e, a, b) for e, (a, b) in zip(events, inputs)),
                    return_exceptions=True,
                )
            else:
                results, graph_results = await _replay_graphs(
                    events, inputs, scheduler, _one, loop, start, mode
                )
            elapsed = loop.time() - start
            if kill_task is not None:
                if kill_task.done():
                    kill_task.result()  # surface a bad shard id etc.
                else:
                    kill_task.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await kill_task
            if ctl is not None:
                await ctl.close()
            if monitor is not None:
                await monitor.close()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.record(
                    "replay",
                    start,
                    loop.time(),
                    cat="demo",
                    track="replay",
                    requests=len(events),
                )
            completed = sum(1 for r in results if isinstance(r, np.ndarray))
            metrics = broker.metrics
            backend_name = broker.backend_name
            sharded = isinstance(broker, ShardedBroker)
            shard_count = broker.shard_count if sharded else 1
            placement = broker.placement if sharded else None
            per_shard = broker.per_shard_metrics() if sharded else None
            admission_ctl = broker.admission
            admission_dict = (
                admission_ctl.to_dict() if admission_ctl is not None else None
            )
            hedges = dict(broker.hedges) if sharded else None
            arena_summary = (
                metrics.arena_summary() if any(metrics.arena.values()) else None
            )
        return ReplaySummary(
            requests=len(events),
            completed=completed,
            failed=metrics.counters["failed"],
            shed=metrics.counters["shed"],
            elapsed_s=elapsed,
            metrics=metrics,
            backend=backend_name,
            outcomes=list(results),
            shards=shard_count,
            placement=placement,
            per_shard=per_shard,
            controller=ctl.strategy.name if ctl is not None else None,
            journal=ctl.journal if ctl is not None else None,
            graph_metrics=scheduler.metrics if scheduler is not None else None,
            graph_results=graph_results,
            slo=monitor.status_dict() if monitor is not None else None,
            flight=flight,
            admission=admission_dict,
            hedges=hedges,
            arena=arena_summary,
        )

    return asyncio.run(_replay())


async def _replay_graphs(events, inputs, scheduler, _one, loop, start, mode):
    """Drive a graph-annotated replay: DAGs via the scheduler, rest flat.

    Returns ``(results, graph_results)`` where ``results`` aligns with
    the trace's event order exactly like the flat path — graph nodes are
    named by their global event index so each outcome (array, solve
    error, or :class:`~repro.serve.policy.DependencyFailed`) lands back
    in its event's slot.
    """
    groups = graph_groups(events)
    flat = [i for i, e in enumerate(events) if e.graph is None]

    async def _one_graph(gid, indices):
        solve_graph = SolveGraph(name=f"g{gid}")
        for i in indices:
            event = events[i]
            a, b = inputs[i]
            solve_graph.add(
                event.op,
                a,
                b,
                name=str(i),
                after=tuple(str(indices[d]) for d in event.deps),
            )
        first_at = events[indices[0]].at
        await asyncio.sleep(max(0.0, first_at - (loop.time() - start)))
        res = await scheduler.submit(solve_graph, sequential=(mode == "sequential"))
        return indices, res

    flat_results, graph_outs = await asyncio.gather(
        asyncio.gather(
            *(_one(events[i], *inputs[i]) for i in flat), return_exceptions=True
        ),
        asyncio.gather(*(_one_graph(gid, idxs) for gid, idxs in groups.items())),
    )
    results = [None] * len(events)
    for i, r in zip(flat, flat_results):
        results[i] = r
    graph_results = []
    for indices, res in graph_outs:
        graph_results.append(res)
        for i in indices:
            name = str(i)
            results[i] = (
                res.results[name] if name in res.results else res.failures.get(name)
            )
    return results, graph_results


def run_demo(
    requests: int = 400,
    ns: tuple[int, ...] = (8, 16, 32),
    rate_hz: float = 20000.0,
    policy: ServePolicy | None = None,
    dispatcher: TunedDispatcher | None = None,
    solve_fraction: float = 0.4,
    nonspd_fraction: float = 0.01,
    seed: int = 0,
    backend: str | None = None,
    record_trace: str | None = None,
    shards: int | None = None,
    placement: str | None = None,
    controller: str | None = None,
    controller_interval_ms: float | None = None,
    journal_out: str | None = None,
    slo=None,
    flight=None,
    kill_shard: int | None = None,
    kill_at_ms: float | None = None,
    tiers=None,
) -> tuple[str, ReplaySummary]:
    """Replay one synthetic trace and render the full metrics report.

    ``record_trace`` writes the arrivals the broker actually saw to a
    :mod:`repro.serve.trace` JSONL file, making the demo run itself a
    replayable workload.  ``shards``/``placement`` reshape the broker
    into a :class:`~repro.serve.shard.ShardedBroker` fabric.
    ``controller`` puts the demo under online control and reports the
    decision summary; ``journal_out`` saves the full decision journal as
    JSONL.  ``slo``/``flight``/``kill_shard``/``kill_at_ms`` thread
    through to :func:`replay_trace`: burn-rate monitoring, the flight
    recorder, and fault injection.  ``tiers`` (or ``$REPRO_SERVE_TIERS``)
    attaches SLA admission control *and* switches the synthetic traffic
    to the tiered tenant mix, so the per-tier report section has
    something to say.
    """
    policy = policy or ServePolicy(target_batch=64, max_delay_s=0.004)
    if backend is not None:
        policy = replace(policy, backend=backend)
    if shards is not None:
        policy = replace(policy, shards=shards)
    if placement is not None:
        policy = replace(policy, placement=placement)
    # Resolve admission up front: it decides whether the synthetic trace
    # carries tier/tenant tags, and the same controller then serves the
    # replay (one set of quota buckets, one fair-queue clock).
    admission = make_admission(tiers)
    trace = synthetic_trace(
        requests=requests,
        ns=ns,
        rate_hz=rate_hz,
        solve_fraction=solve_fraction,
        nonspd_fraction=nonspd_fraction,
        seed=seed,
        tiers=admission is not None,
    )
    recorder = None
    if record_trace:
        recorder = TraceRecorder(
            seed=seed,
            meta={
                "source": "serve-demo",
                "requests": requests,
                "ns": list(ns),
                "rate_hz": rate_hz,
                "solve_fraction": solve_fraction,
                "nonspd_fraction": nonspd_fraction,
                "seed": seed,
            },
        )
    summary = replay_trace(
        trace,
        policy=policy,
        dispatcher=dispatcher,
        recorder=recorder,
        controller=controller,
        controller_interval_s=(
            controller_interval_ms / 1e3 if controller_interval_ms else None
        ),
        slo=slo,
        flight=flight,
        kill_shard=kill_shard,
        kill_at_s=kill_at_ms / 1e3 if kill_at_ms is not None else None,
        tiers=admission,
    )
    if recorder is not None:
        recorder.save(record_trace)
    if journal_out and summary.journal is not None:
        summary.journal.save(journal_out)
    lines = [
        f"trace   : {requests} requests over {trace[-1].at * 1e3:.1f} ms "
        f"(~{rate_hz:.0f}/s), n in {tuple(ns)}, "
        f"{solve_fraction:.0%} solves, {nonspd_fraction:.1%} non-SPD",
        f"policy  : target_batch={policy.target_batch} "
        f"max_delay={policy.max_delay_s * 1e3:.1f}ms "
        f"queue_cap={policy.max_queue_depth} "
        f"snap_to_chunk={policy.snap_to_chunk}",
        f"backend : {summary.backend}",
        f"served  : {summary.completed} ok, {summary.failed} failed, "
        f"{summary.shed} shed in {summary.elapsed_s * 1e3:.1f} ms "
        f"({summary.throughput_rps:.0f} req/s)",
    ]
    if summary.arena is not None:
        ar = summary.arena
        lines.append(
            f"arena   : {ar['slots_staged']} slots staged "
            f"({ar['bytes_staged']} B zero-copy), "
            f"{ar['slots_released']} released, leaked {ar['leaked']}, "
            f"{ar['bytes_copied_fallback']} B copied via fallback, "
            f"hwm {ar['hwm_bytes']} B"
        )
    if summary.journal is not None:
        knobs = summary.journal.final_knobs()
        lines.append(
            f"control : strategy={summary.controller} "
            f"decisions={len(summary.journal)} "
            f"changes={summary.journal.changes} "
            f"final target_batch={knobs.target_batch} "
            f"max_delay={knobs.max_delay_ms:.2f}ms "
            f"deterministic={verify_journal(summary.journal)}"
        )
    if summary.slo is not None:
        s = summary.slo
        states = ", ".join(
            f"{st['objective']}={st['state']}" for st in s["statuses"]
        ) or "no evaluations"
        lines.append(
            f"slo     : {s['evaluations']} evaluations, "
            f"{s['breaches']} breaches; {states}"
        )
    if summary.admission is not None:
        tiers_summary = summary.metrics.tier_summary()
        fairness = jain_index(tiers_summary.get("completed_by_tenant", {}).values())
        lines.append(
            f"tiers   : default={summary.admission['default_tier']}, "
            f"tenant fairness (Jain) {fairness:.3f}"
        )
        for tier_name, row in tiers_summary.get("by_tier", {}).items():
            extra = ""
            if "coalesce_p99_ms" in row:
                extra = f", coalesce p99 {row['coalesce_p99_ms']:.2f}ms"
            lines.append(
                f"  {tier_name}: {row['submitted']} submitted, "
                f"{row['completed']} ok, {row['failed']} failed, "
                f"{row['shed']} shed{extra}"
            )
        if summary.hedges is not None and summary.hedges["attempted"]:
            h = summary.hedges
            lines.append(
                f"  hedges: {h['attempted']} raced, "
                f"{h['won_hedge']} won by the hedge copy"
            )
    if summary.per_shard is not None:
        lines.append(
            f"fabric  : {summary.shards} shards, placement={summary.placement}"
        )
        for shard_id in sorted(summary.per_shard):
            c = summary.per_shard[shard_id].counters
            lines.append(
                f"  shard {shard_id}: {c['submitted']} submitted, "
                f"{c['completed']} ok, {c['failed']} failed, "
                f"{c['shed']} shed, {c['flushes']} flushes"
            )
    lines += ["", summary.metrics.report()]
    return "\n".join(lines), summary
